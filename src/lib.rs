//! Umbrella crate for the SliceLine reproduction: re-exports the public
//! APIs of all workspace crates so examples and integration tests have a
//! single import root.

pub use slicefinder_baseline as slicefinder;
pub use sliceline;
pub use sliceline_cli as cli;
pub use sliceline_datagen as datagen;
pub use sliceline_dist as dist;
pub use sliceline_frame as frame;
pub use sliceline_linalg as linalg;
pub use sliceline_ml as ml;
