//! End-to-end regression debugging on the Salaries dataset: the full
//! paper pipeline — encode, train `lm`, compute squared-loss errors, run
//! SliceLine, and decode human-readable slices.
//!
//! The salary model systematically underpays a planted subgroup (female
//! associate professors in discipline A); a plain linear model misses the
//! interaction and SliceLine surfaces it.
//!
//! ```sh
//! cargo run --release --example salary_regression
//! ```

use sliceline_repro::datagen::salaries;
use sliceline_repro::frame::{DatasetEncoder, FeatureKind};
use sliceline_repro::linalg::DenseMatrix;
use sliceline_repro::ml::{errors::rmse, squared_loss, LinearRegression};
use sliceline_repro::sliceline::{SliceLine, SliceLineConfig};

fn main() {
    // 1. Load the data frame (397 professors).
    let df = salaries();
    println!(
        "loaded Salaries: {} rows x {} columns",
        df.nrows(),
        df.ncols()
    );

    // 2. Encode with the paper's preprocessing: recode categoricals, 10
    //    equi-width bins for continuous features, salary as the label.
    let encoder = DatasetEncoder {
        recode_threshold: 0,
        ..DatasetEncoder::with_label("salary")
    };
    let encoded = encoder.encode(&df).expect("static schema");
    let y = encoded.labels.clone().expect("salary label present");
    println!(
        "encoded X0: {} features, {} one-hot columns",
        encoded.x0.cols(),
        encoded.x0.onehot_cols()
    );

    // 3. Train linear regression on the integer codes (a deliberately
    //    simple model; SliceLine debugs whatever model you give it).
    let x_dense = DenseMatrix::from_rows(
        &(0..encoded.x0.rows())
            .map(|r| encoded.x0.row(r).iter().map(|&c| c as f64).collect())
            .collect::<Vec<_>>(),
    )
    .expect("rectangular");
    let model = LinearRegression::fit(&x_dense, &y, 1e-6).expect("well-posed");
    let yhat = model.predict(&x_dense).expect("same width");
    println!("model RMSE: {:.0}", rmse(&y, &yhat).expect("aligned"));

    // 4. Squared-loss error vector (scaled to keep scores readable —
    //    SliceLine is scale-invariant in e, this is cosmetic only).
    let e = squared_loss(&y, &yhat).expect("aligned");

    // 5. Find the top-4 worst slices.
    let config = SliceLineConfig::builder()
        .k(4)
        .min_support(8)
        .alpha(0.95)
        .build()
        .expect("valid");
    let result = SliceLine::new(config)
        .find_slices(&encoded.x0, &e)
        .expect("valid input");

    println!("\ntop slices where the salary model fails:");
    for (rank, s) in result.top_k.iter().enumerate() {
        println!(
            "  #{} {}\n      score={:.3} size={} avg_sq_err={:.3e}",
            rank + 1,
            s.describe(&encoded.features),
            s.score,
            s.size as u64,
            s.avg_error
        );
    }

    // 6. Show the bin provenance of one decoded predicate, proving the
    //    metadata round-trip.
    if let Some(top) = result.top_k.first() {
        for &(j, code) in &top.predicates {
            let f = encoded.features.feature(j);
            match &f.kind {
                FeatureKind::Binned { min, width, .. } => println!(
                    "\n(predicate '{}' is bin {} of an equi-width binning starting at {:.1}, width {:.1})",
                    f.describe(code),
                    code,
                    min,
                    width
                ),
                FeatureKind::Categorical { .. } => {
                    println!("\n(predicate '{}' is a recoded category)", f.describe(code))
                }
                _ => {}
            }
        }
    }
}
