//! Distributed slice evaluation on the census-shaped dataset: the same
//! exact top-K under MT-Ops, MT-PFor, and the simulated Dist-PFor cluster
//! (paper §4.4/§5.4).
//!
//! ```sh
//! cargo run --release --example distributed_debugging
//! ```

use sliceline_repro::datagen::{census_like, GenConfig};
use sliceline_repro::dist::{ClusterConfig, DistSliceLine, Strategy};
use sliceline_repro::sliceline::{MinSupport, SliceLineConfig};
use std::time::Duration;

fn main() {
    let data = census_like(&GenConfig {
        seed: 7,
        scale: 0.15,
    });
    println!(
        "CensusSim: {} rows, {} features, {} one-hot columns\n",
        data.n(),
        data.m(),
        data.l()
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let make_config = || {
        let mut c = SliceLineConfig::builder()
            .k(4)
            .alpha(0.95)
            // L2 keeps the example snappy; the figure7 harness sweeps the
            // full configuration space.
            .max_level(2)
            .block_size(4)
            .threads(threads)
            .build()
            .expect("valid");
        c.min_support = MinSupport::Fraction(0.01);
        c
    };
    let strategies: Vec<(&str, Strategy)> = vec![
        (
            "MT-Ops    (barrier per op)",
            Strategy::MtOps {
                threads,
                block_size: 4,
            },
        ),
        (
            "MT-PFor   (parallel over slices)",
            Strategy::MtParfor {
                threads,
                block_size: 4,
            },
        ),
        (
            "Dist-PFor (simulated 8-node cluster)",
            Strategy::DistParfor(ClusterConfig {
                nodes: 8,
                threads_per_node: (threads / 4).max(1),
                broadcast_latency: Duration::from_millis(1),
                broadcast_per_nnz: Duration::from_nanos(20),
                aggregate_latency: Duration::from_micros(500),
                bitmap_kernel: false,
            }),
        ),
    ];
    let mut reference: Option<Vec<_>> = None;
    for (name, strategy) in strategies {
        let runner = DistSliceLine::new(make_config(), strategy);
        let result = runner
            .find_slices(&data.x0, &data.errors)
            .expect("valid input");
        println!(
            "{name}: {:>8.3}s  top-1 {:?} (score {:.3})",
            result.stats.total_elapsed.as_secs_f64(),
            result.top_k[0].predicates,
            result.top_k[0].score
        );
        match &reference {
            None => reference = Some(result.top_k),
            Some(expect) => assert_eq!(
                &result.top_k, expect,
                "all strategies must return the identical exact top-K"
            ),
        }
    }
    println!("\nall strategies returned the identical exact top-K slices.");
}
