//! All four slice-finding approaches on the same biased dataset:
//! exact SliceLine, the SliceFinder heuristic lattice search, the
//! decision-tree slicer (non-overlapping), and the clustering slicer
//! (descriptive). This is the comparison the paper's introduction sketches
//! when motivating exact, overlapping slice enumeration.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use sliceline_repro::datagen::{adult_like, GenConfig};
use sliceline_repro::slicefinder::{
    ClusterSlicer, ClusterSlicerConfig, DecisionTreeSlicer, SliceFinder, SliceFinderConfig,
    TreeConfig,
};
use sliceline_repro::sliceline::{MinSupport, SliceLine, SliceLineConfig};
use std::time::Instant;

fn main() {
    let data = adult_like(&GenConfig {
        seed: 99,
        scale: 0.25,
    });
    println!(
        "AdultSim: {} rows; strongest planted slice {:?} at {:.0}% error\n",
        data.n(),
        data.planted[0].predicates,
        data.planted[0].elevated * 100.0
    );

    // 1. SliceLine — exact top-K of the score-based formulation.
    let mut config = SliceLineConfig::builder()
        .k(3)
        .alpha(0.95)
        .max_level(3)
        .build()
        .expect("valid");
    config.min_support = MinSupport::Fraction(0.01);
    let t = Instant::now();
    let sl = SliceLine::new(config)
        .find_slices(&data.x0, &data.errors)
        .expect("valid input");
    println!("SliceLine (exact, {:?}):", t.elapsed());
    for s in &sl.top_k {
        println!(
            "  {:?} score={:.3} size={} err={:.0}%",
            s.predicates,
            s.score,
            s.size as u64,
            s.avg_error * 100.0
        );
    }

    // 2. SliceFinder heuristic.
    let t = Instant::now();
    let sf = SliceFinder::new(SliceFinderConfig {
        k: 3,
        min_size: data.n() / 100,
        max_level: 3,
        threads: 2,
        ..Default::default()
    })
    .find_slices(&data.x0, &data.errors);
    println!("\nSliceFinder heuristic ({:?}):", t.elapsed());
    for s in &sf.recommended {
        println!(
            "  {:?} size={} err={:.0}% effect={:.2}",
            s.predicates,
            s.size,
            s.mean_error * 100.0,
            s.effect_size
        );
    }

    // 3. Decision tree — non-overlapping leaves, negations allowed.
    let t = Instant::now();
    let leaves = DecisionTreeSlicer::new(TreeConfig {
        max_depth: 3,
        min_leaf: data.n() / 100,
        k: 3,
    })
    .worst_leaves(&data.x0, &data.errors);
    println!("\nDecision-tree slicer ({:?}):", t.elapsed());
    for l in &leaves {
        let path: Vec<String> = l
            .path
            .iter()
            .map(|&(j, c, eq)| format!("f{j}{}{c}", if eq { "=" } else { "≠" }))
            .collect();
        println!(
            "  [{}] size={} err={:.0}%",
            path.join(" AND "),
            l.size,
            l.mean_error * 100.0
        );
    }

    // 4. Clustering — descriptive centroids, not predicates.
    let t = Instant::now();
    let clusters = ClusterSlicer::new(ClusterSlicerConfig {
        clusters: 8,
        iterations: 8,
        k: 2,
        seed: 5,
    })
    .worst_clusters(&data.x0, &data.errors);
    println!("\nClustering slicer ({:?}):", t.elapsed());
    for c in &clusters {
        println!(
            "  centroid {:?}... size={} err={:.0}%",
            &c.centroid[..6.min(c.centroid.len())],
            c.size,
            c.mean_error * 100.0
        );
    }

    println!(
        "\ntakeaway: only SliceLine guarantees the true top-K conjunctions; \
         the heuristic may stop at coarser slices, the tree cannot express \
         overlapping slices (and needs negations), and clusters are not \
         predicates at all."
    );
    assert!(
        sl.top_k
            .iter()
            .any(|s| s.predicates == data.planted[0].predicates),
        "SliceLine must recover the strongest planted slice"
    );
}
