//! Quickstart: find the worst data slices of a toy model in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sliceline_repro::frame::{FeatureSet, IntMatrix};
use sliceline_repro::linalg::ParallelConfig;
use sliceline_repro::sliceline::{SliceLine, SliceLineConfig};

fn main() {
    // A tiny integer-encoded dataset: 3 features (domains 2, 3, 4),
    // 240 rows. Imagine codes came from recoding/binning real columns.
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for i in 0..240u32 {
        let device = 1 + (i % 2); // phone / desktop
        let region = 1 + ((i / 2) % 3); // three regions
        let age_bin = 1 + ((i / 6) % 4); // four age bins
        rows.push(vec![device, region, age_bin]);
        // The model is bad for phone users in region 2.
        let bad = device == 1 && region == 2;
        errors.push(if bad { 0.9 } else { 0.08 });
    }
    let x0 = IntMatrix::from_rows(&rows).expect("rows are rectangular, 1-based");

    let config = SliceLineConfig::builder()
        .k(3) // top-3 slices
        .min_support(10) // ignore slices smaller than 10 rows
        .alpha(0.95) // error weight (paper default)
        .parallel(ParallelConfig::default())
        .build()
        .expect("valid configuration");

    let result = SliceLine::new(config)
        .find_slices(&x0, &errors)
        .expect("aligned, non-negative errors");

    let features = FeatureSet::opaque_from_domains(&[2, 3, 4]);
    println!("top-{} problematic slices:", result.top_k.len());
    for (rank, slice) in result.top_k.iter().enumerate() {
        println!(
            "  #{} {:<30} score={:.3} size={} avg_error={:.3}",
            rank + 1,
            slice.describe(&features),
            slice.score,
            slice.size as u64,
            slice.avg_error,
        );
    }
    println!("\nenumeration statistics:\n{}", result.stats.render_table());
    assert_eq!(result.top_k[0].predicates, vec![(0, 1), (1, 2)]);
    println!("=> the planted slice (device=1 AND region=2) was recovered exactly.");
}
