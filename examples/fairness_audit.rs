//! Fairness auditing with SliceLine — the paper's §7 future-work
//! direction implemented: instead of accuracy errors, slice on
//! *false-positive* indicators so the top-K slices are the subgroups the
//! model most disproportionately flags.
//!
//! ```sh
//! cargo run --release --example fairness_audit
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliceline_repro::frame::{FeatureSet, IntMatrix};
use sliceline_repro::ml::fairness::{false_positive_errors, restrict_rows};
use sliceline_repro::sliceline::{SliceLine, SliceLineConfig};

fn main() {
    // Simulate a loan-approval classifier: 4 features (age bin, region,
    // employment type, credit band). The classifier wrongly rejects
    // (false positive for "risk") applicants with employment=3 in
    // region=2 far more often.
    let mut rng = StdRng::seed_from_u64(99);
    let n = 20_000;
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n); // true risk label
    let mut yhat = Vec::with_capacity(n); // predicted risk
    for _ in 0..n {
        let age = 1 + rng.gen_range(0..6u32);
        let region = 1 + rng.gen_range(0..4u32);
        let employment = 1 + rng.gen_range(0..5u32);
        let credit = 1 + rng.gen_range(0..8u32);
        rows.push(vec![age, region, employment, credit]);
        let truly_risky = rng.gen::<f64>() < 0.2;
        y.push(if truly_risky { 1.0 } else { 0.0 });
        // Model: decent overall, biased against (employment=3, region=2).
        let biased = employment == 3 && region == 2;
        let fp_rate = if biased { 0.45 } else { 0.06 };
        let fn_rate = 0.15;
        let pred = if truly_risky {
            if rng.gen::<f64>() < fn_rate {
                0.0
            } else {
                1.0
            }
        } else if rng.gen::<f64>() < fp_rate {
            1.0
        } else {
            0.0
        };
        yhat.push(pred);
    }
    let x0 = IntMatrix::from_rows(&rows).expect("rectangular 1-based codes");

    // Restrict to the true negatives so a slice's average error IS its
    // false-positive rate, then slice on FP indicators.
    let negatives = restrict_rows(&y, |v| v == 0.0);
    let x_neg = x0.select_rows(&negatives).expect("indices in range");
    let fp_all = false_positive_errors(&y, &yhat).expect("binary labels");
    let fp_neg: Vec<f64> = negatives.iter().map(|&i| fp_all[i]).collect();
    let overall_fpr = fp_neg.iter().sum::<f64>() / fp_neg.len() as f64;
    println!(
        "auditing {} true-negative applicants; overall FPR {:.1}%",
        fp_neg.len(),
        overall_fpr * 100.0
    );

    let config = SliceLineConfig::builder()
        .k(3)
        .min_support(100)
        .alpha(0.95)
        .build()
        .expect("valid");
    let result = SliceLine::new(config)
        .find_slices(&x_neg, &fp_neg)
        .expect("valid input");

    let features = FeatureSet::opaque_from_domains(&[6, 4, 5, 8]);
    println!("\nsubgroups with the highest false-positive rates:");
    for (rank, s) in result.top_k.iter().enumerate() {
        println!(
            "  #{} {:<24} FPR={:.1}% ({}x overall) size={}",
            rank + 1,
            s.describe(&features),
            s.avg_error * 100.0,
            (s.avg_error / overall_fpr).round() as u64,
            s.size as u64,
        );
    }
    let top = &result.top_k[0];
    assert_eq!(
        top.predicates,
        vec![(1, 2), (2, 3)],
        "the biased subgroup (region=2, employment=3) must rank first"
    );
    println!("\n=> the biased subgroup was identified exactly (region=2 AND employment=3).");
}
