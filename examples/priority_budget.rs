//! Anytime slice finding with the best-first priority enumerator
//! (the paper's §7 future-work direction, implemented in
//! `sliceline::priority`): the same exact top-K as Algorithm 1 when run to
//! completion, or a best-effort answer under a strict evaluation budget.
//!
//! ```sh
//! cargo run --release --example priority_budget
//! ```

use sliceline_repro::datagen::{adult_like, GenConfig};
use sliceline_repro::sliceline::priority::PrioritySliceLine;
use sliceline_repro::sliceline::{MinSupport, SliceLine, SliceLineConfig};
use std::time::Instant;

fn main() {
    let data = adult_like(&GenConfig {
        seed: 31,
        scale: 0.3,
    });
    let make_config = || {
        let mut c = SliceLineConfig::builder()
            .k(4)
            .alpha(0.95)
            .max_level(3)
            .threads(2)
            .build()
            .expect("valid");
        c.min_support = MinSupport::Fraction(0.01);
        c
    };

    // Reference: the level-wise Algorithm 1.
    let t = Instant::now();
    let levelwise = SliceLine::new(make_config())
        .find_slices(&data.x0, &data.errors)
        .expect("valid input");
    println!(
        "level-wise:        {:>9.3?}  evaluated {:>6}  top-1 sc={:.3}",
        t.elapsed(),
        levelwise.stats.total_evaluated(),
        levelwise.top_k[0].score
    );

    // Exact best-first: identical answer, usually fewer evaluations.
    let t = Instant::now();
    let exact = PrioritySliceLine::new(make_config())
        .find_slices(&data.x0, &data.errors)
        .expect("valid input");
    println!(
        "best-first exact:  {:>9.3?}  evaluated {:>6}  top-1 sc={:.3}  exact={}",
        t.elapsed(),
        exact.evaluated,
        exact.result.top_k[0].score,
        exact.exact
    );
    assert!((exact.result.top_k[0].score - levelwise.top_k[0].score).abs() < 1e-9);

    // Anytime: stop after a fraction of the evaluations.
    for frac in [0.5, 0.2, 0.05] {
        let budget = ((exact.evaluated as f64) * frac) as usize;
        let t = Instant::now();
        let anytime = PrioritySliceLine::with_budget(make_config(), budget)
            .find_slices(&data.x0, &data.errors)
            .expect("valid input");
        let top = anytime.result.top_k.first();
        println!(
            "budget {:>4.0}%:      {:>9.3?}  evaluated {:>6}  top-1 sc={}  exact={}",
            frac * 100.0,
            t.elapsed(),
            anytime.evaluated,
            top.map(|s| format!("{:.3}", s.score))
                .unwrap_or_else(|| "-".into()),
            anytime.exact
        );
        if let Some(s) = top {
            assert!(s.score <= exact.result.top_k[0].score + 1e-9);
        }
    }
    println!(
        "\nbest-first explores high-upper-bound slices first, so even tight \
         budgets tend to have already found the true winner; exactness is \
         certified only when the queue drains (exact=true)."
    );
}
