//! Bias audit on the Adult-shaped dataset: exact SliceLine vs the
//! heuristic SliceFinder baseline on the same classification errors.
//!
//! The generator plants biased subgroups (e.g. `sex=2 AND education=12`
//! erring at 65% against a 12% baseline); SliceLine recovers them exactly
//! and we compare against what the SliceFinder heuristic recommends.
//!
//! ```sh
//! cargo run --release --example adult_bias_audit
//! ```

use sliceline_repro::datagen::{adult_like, GenConfig};
use sliceline_repro::slicefinder::{SliceFinder, SliceFinderConfig};
use sliceline_repro::sliceline::{MinSupport, SliceLine, SliceLineConfig};

fn main() {
    let data = adult_like(&GenConfig {
        seed: 20_260_705,
        scale: 0.5,
    });
    println!(
        "AdultSim: {} rows, {} features, {} one-hot columns; planted slices:",
        data.n(),
        data.m(),
        data.l()
    );
    for p in &data.planted {
        println!("  {:?} erring at {:.0}%", p.predicates, p.elevated * 100.0);
    }
    let overall = data.errors.iter().sum::<f64>() / data.n() as f64;
    println!("overall error rate: {:.1}%\n", overall * 100.0);

    // --- SliceLine: exact top-K. ---
    let mut config = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .max_level(3)
        .build()
        .expect("valid");
    config.min_support = MinSupport::Fraction(0.01);
    let sl = SliceLine::new(config)
        .find_slices(&data.x0, &data.errors)
        .expect("valid input");
    println!(
        "SliceLine exact top-{} (total {:?}):",
        sl.top_k.len(),
        sl.stats.total_elapsed
    );
    for (rank, s) in sl.top_k.iter().enumerate() {
        let planted = data.planted.iter().any(|p| p.predicates == s.predicates);
        println!(
            "  #{} {:?} score={:.3} size={} err={:.0}%{}",
            rank + 1,
            s.predicates,
            s.score,
            s.size as u64,
            s.avg_error * 100.0,
            if planted {
                "  <- planted ground truth"
            } else {
                ""
            }
        );
    }

    // --- SliceFinder baseline: heuristic recommendations. ---
    let sf = SliceFinder::new(SliceFinderConfig {
        k: 4,
        min_size: data.n() / 100,
        max_level: 3,
        threads: 2,
        ..Default::default()
    })
    .find_slices(&data.x0, &data.errors);
    println!("\nSliceFinder heuristic recommendations (level-wise, stops at K):");
    for (rank, s) in sf.recommended.iter().enumerate() {
        println!(
            "  #{} {:?} size={} mean_err={:.0}% effect={:.2} p={:.1e}",
            rank + 1,
            s.predicates,
            s.size,
            s.mean_error * 100.0,
            s.effect_size,
            s.p_value
        );
    }
    println!(
        "\nnote: SliceFinder terminates level-wise once K slices pass its \
         tests — single-predicate projections of the planted bias tend to \
         be recommended before the exact conjunctions SliceLine ranks on \
         top. That gap motivates SliceLine's exact enumeration."
    );
    // Sanity: the strongest planted slice must be in SliceLine's top-K.
    let strongest = &data.planted[0];
    assert!(
        sl.top_k
            .iter()
            .any(|s| s.predicates == strongest.predicates),
        "SliceLine must recover the strongest planted slice"
    );
}
