//! CLI round-trip: `generate` a synthetic dataset, then `find` slices in
//! it through the full CSV pipeline — the workflow a downstream user runs.

use sliceline_repro::cli::{run_find, run_generate, FindArgs, GenerateArgs, OutputFormat};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sliceline_cli_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_then_find_recovers_planted_bias() {
    // Generate a small Adult-shaped CSV with its simulated error column.
    let csv = run_generate(&GenerateArgs {
        dataset: "adult".to_string(),
        scale: 0.1,
        seed: 5,
        output: "-".to_string(),
    })
    .unwrap();
    let path = temp_path("adult_roundtrip.csv");
    std::fs::write(&path, &csv).unwrap();
    // Find slices using the error column directly.
    let out = run_find(&FindArgs {
        input: path.to_string_lossy().into_owned(),
        errors: Some("error".to_string()),
        k: 4,
        sigma: 0.01,
        max_level: 3,
        threads: 2,
        // Keep integer codes recoded 1:1 (binning a 44-category column
        // into 10 bins would change the planted predicate codes).
        bins: 64,
        ..Default::default()
    })
    .unwrap();
    // The strongest planted Adult slice is (f3=12, f9=2); the CSV headers
    // are f0..f13 so the report must name both predicates.
    assert!(
        out.contains("f3 = 12") && out.contains("f9 = 2"),
        "report:\n{out}"
    );
    assert!(out.contains("exact top-"));
}

#[test]
fn find_json_output_parses_shape() {
    let csv = run_generate(&GenerateArgs {
        dataset: "adult".to_string(),
        scale: 0.05,
        seed: 6,
        output: "-".to_string(),
    })
    .unwrap();
    let path = temp_path("adult_json.csv");
    std::fs::write(&path, &csv).unwrap();
    let out = run_find(&FindArgs {
        input: path.to_string_lossy().into_owned(),
        errors: Some("error".to_string()),
        k: 2,
        sigma: 0.01,
        max_level: 2,
        threads: 1,
        format: OutputFormat::Json,
        ..Default::default()
    })
    .unwrap();
    assert!(out.starts_with('{'));
    assert!(out.contains("\"top_k\":["));
    assert!(out.contains("\"levels\":["));
    // Balanced braces/brackets as a cheap well-formedness check.
    assert_eq!(out.matches('{').count(), out.matches('}').count());
    assert_eq!(out.matches('[').count(), out.matches(']').count());
}

#[test]
fn salaries_full_model_pipeline() {
    let csv = run_generate(&GenerateArgs {
        dataset: "salaries".to_string(),
        ..Default::default()
    })
    .unwrap();
    let path = temp_path("salaries.csv");
    std::fs::write(&path, &csv).unwrap();
    let out = run_find(&FindArgs {
        input: path.to_string_lossy().into_owned(),
        label: Some("salary".to_string()),
        k: 3,
        sigma: 8.0,
        threads: 1,
        ..Default::default()
    })
    .unwrap();
    // Predicates decode through the real column names.
    let names = ["rank", "discipline", "yrs.since.phd", "yrs.service", "sex"];
    assert!(
        names.iter().any(|n| out.contains(n)),
        "report mentions no column name:\n{out}"
    );
}
