//! Cross-crate integration tests: full pipelines from data generation /
//! encoding through model training to slice finding.

use sliceline_repro::datagen::{
    adult_like, census_like, covtype_like, criteo_like, kdd98_like, salaries, GenConfig,
};
use sliceline_repro::dist::{ClusterConfig, DistSliceLine, Strategy};
use sliceline_repro::frame::DatasetEncoder;
use sliceline_repro::linalg::DenseMatrix;
use sliceline_repro::ml::{squared_loss, LinearRegression};
use sliceline_repro::slicefinder::{SliceFinder, SliceFinderConfig};
use sliceline_repro::sliceline::{MinSupport, SliceLine, SliceLineConfig};
use std::time::Duration;

fn tiny(seed: u64) -> GenConfig {
    GenConfig { seed, scale: 0.05 }
}

fn config(max_level: usize) -> SliceLineConfig {
    let mut c = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .max_level(max_level)
        .threads(2)
        .build()
        .unwrap();
    c.min_support = MinSupport::Fraction(0.01);
    c
}

#[test]
fn adult_pipeline_recovers_strongest_planted_slice() {
    let d = adult_like(&GenConfig {
        seed: 1,
        scale: 0.3,
    });
    let r = SliceLine::new(config(3))
        .find_slices(&d.x0, &d.errors)
        .unwrap();
    assert!(!r.top_k.is_empty());
    let strongest = &d.planted[0];
    assert!(
        r.top_k.iter().any(|s| s.predicates == strongest.predicates),
        "planted {:?} missing from top-K {:?}",
        strongest.predicates,
        r.top_k.iter().map(|s| &s.predicates).collect::<Vec<_>>()
    );
    // Every reported slice satisfies the problem constraints.
    for s in &r.top_k {
        assert!(s.score > 0.0);
        assert!(s.size >= r.stats.sigma as f64);
    }
}

#[test]
fn every_generator_runs_end_to_end() {
    for d in [
        adult_like(&tiny(2)),
        kdd98_like(&tiny(2)),
        census_like(&tiny(2)),
        covtype_like(&tiny(2)),
        criteo_like(&tiny(2)),
    ] {
        let r = SliceLine::new(config(2))
            .find_slices(&d.x0, &d.errors)
            .unwrap_or_else(|e| panic!("{} failed: {e}", d.name));
        assert_eq!(r.stats.n, d.n(), "{}", d.name);
        assert_eq!(r.stats.m, d.m(), "{}", d.name);
        assert_eq!(r.stats.l, d.l(), "{}", d.name);
        // Scores sorted descending and within constraints.
        for w in r.top_k.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}

#[test]
fn salaries_lm_pipeline_produces_interpretable_slices() {
    let df = salaries();
    let encoder = DatasetEncoder {
        recode_threshold: 0,
        ..DatasetEncoder::with_label("salary")
    };
    let enc = encoder.encode(&df).unwrap();
    let y = enc.labels.clone().unwrap();
    let x_dense = DenseMatrix::from_rows(
        &(0..enc.x0.rows())
            .map(|r| enc.x0.row(r).iter().map(|&c| c as f64).collect())
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let model = LinearRegression::fit(&x_dense, &y, 1e-6).unwrap();
    let yhat = model.predict(&x_dense).unwrap();
    let e = squared_loss(&y, &yhat).unwrap();
    let r = SliceLine::new(
        SliceLineConfig::builder()
            .k(4)
            .min_support(8)
            .alpha(0.95)
            .threads(1)
            .build()
            .unwrap(),
    )
    .find_slices(&enc.x0, &e)
    .unwrap();
    assert!(!r.top_k.is_empty(), "salary model must have weak slices");
    // Decoding through the feature metadata never panics and mentions a
    // real column name.
    let desc = r.top_k[0].describe(&enc.features);
    let names = ["rank", "discipline", "yrs.since.phd", "yrs.service", "sex"];
    assert!(
        names.iter().any(|n| desc.contains(n)),
        "description '{desc}' references no known column"
    );
}

#[test]
fn replicated_rows_preserve_topk_under_relative_sigma() {
    let d = census_like(&tiny(3));
    let base = SliceLine::new(config(2))
        .find_slices(&d.x0, &d.errors)
        .unwrap();
    let x2 = d.x0.replicate_rows(2);
    let e2: Vec<f64> = d.errors.iter().chain(d.errors.iter()).copied().collect();
    let rep = SliceLine::new(config(2)).find_slices(&x2, &e2).unwrap();
    // Same slices, same scores (scores are scale-invariant), doubled sizes.
    assert_eq!(base.top_k.len(), rep.top_k.len());
    for (a, b) in base.top_k.iter().zip(rep.top_k.iter()) {
        assert_eq!(a.predicates, b.predicates);
        assert!((a.score - b.score).abs() < 1e-9);
        assert_eq!(b.size, a.size * 2.0);
    }
}

#[test]
fn criteo_ultra_sparse_enumeration_matches_table2_shape() {
    let d = criteo_like(&GenConfig {
        seed: 4,
        scale: 0.1,
    });
    let r = SliceLine::new(config(3))
        .find_slices(&d.x0, &d.errors)
        .unwrap();
    // Level-1 candidates = l (all one-hot columns); survivors far fewer.
    assert_eq!(r.stats.levels[0].candidates, d.l());
    assert!(
        r.stats.basic_slices * 4 < d.l(),
        "{} of {} basic slices survived — not ultra-sparse",
        r.stats.basic_slices,
        d.l()
    );
}

#[test]
fn distributed_strategies_agree_on_generated_data() {
    let d = census_like(&tiny(5));
    let local = SliceLine::new(config(2))
        .find_slices(&d.x0, &d.errors)
        .unwrap();
    for strategy in [
        Strategy::MtOps {
            threads: 2,
            block_size: 8,
        },
        Strategy::MtParfor {
            threads: 3,
            block_size: 8,
        },
        Strategy::DistParfor(ClusterConfig {
            nodes: 3,
            threads_per_node: 1,
            broadcast_latency: Duration::ZERO,
            broadcast_per_nnz: Duration::ZERO,
            aggregate_latency: Duration::ZERO,
            bitmap_kernel: false,
        }),
    ] {
        let r = DistSliceLine::new(config(2), strategy)
            .find_slices(&d.x0, &d.errors)
            .unwrap();
        assert_eq!(r.top_k.len(), local.top_k.len(), "{strategy:?}");
        for (a, b) in r.top_k.iter().zip(local.top_k.iter()) {
            assert_eq!(a.predicates, b.predicates, "{strategy:?}");
            assert!((a.score - b.score).abs() < 1e-9, "{strategy:?}");
        }
    }
}

#[test]
fn slicefinder_baseline_flags_planted_bias_components() {
    let d = adult_like(&GenConfig {
        seed: 6,
        scale: 0.3,
    });
    let sf = SliceFinder::new(SliceFinderConfig {
        k: 6,
        min_size: d.n() / 100,
        max_level: 2,
        threads: 2,
        ..Default::default()
    })
    .find_slices(&d.x0, &d.errors);
    assert!(
        !sf.recommended.is_empty(),
        "heuristic should flag something on strongly biased data"
    );
    // At least one recommendation overlaps a planted slice's predicates.
    let overlaps = sf.recommended.iter().any(|rec| {
        d.planted.iter().any(|p| {
            rec.predicates
                .iter()
                .any(|pred| p.predicates.contains(pred))
        })
    });
    assert!(overlaps, "recommendations: {:?}", sf.recommended);
}

#[test]
fn results_export_to_json_and_csv() {
    use sliceline_repro::sliceline::export::{result_to_json, top_k_to_csv, top_k_to_json};
    let d = adult_like(&tiny(8));
    let r = SliceLine::new(config(2))
        .find_slices(&d.x0, &d.errors)
        .unwrap();
    let json = result_to_json(&r);
    assert!(json.contains(&format!("\"n\":{}", d.n())));
    assert!(json.contains("\"top_k\":["));
    // Every slice appears in both renderings.
    let topk_json = top_k_to_json(&r);
    let csv = top_k_to_csv(&r);
    assert_eq!(topk_json.matches("\"score\"").count(), r.top_k.len());
    assert_eq!(csv.lines().count(), r.top_k.len() + 1);
}

#[test]
fn fairness_errors_drive_slicing_end_to_end() {
    use sliceline_repro::ml::fairness::{false_positive_errors, restrict_rows};
    let d = adult_like(&tiny(9));
    // Treat the simulated 0/1 errors as predictions vs an all-zero truth:
    // rows the "model" got wrong on negatives are false positives.
    let y = vec![0.0; d.n()];
    let yhat = d.errors.clone(); // already 0/1
    let negatives = restrict_rows(&y, |v| v == 0.0);
    assert_eq!(negatives.len(), d.n());
    let fp = false_positive_errors(&y, &yhat).unwrap();
    let r = SliceLine::new(config(2)).find_slices(&d.x0, &fp).unwrap();
    // The FP vector equals the error vector here, so results must match
    // the accuracy-based run exactly.
    let base = SliceLine::new(config(2))
        .find_slices(&d.x0, &d.errors)
        .unwrap();
    assert_eq!(r.top_k, base.top_k);
}

#[test]
fn train_test_split_debugging_workflow() {
    use sliceline_repro::frame::train_test_split;
    let d = adult_like(&GenConfig {
        seed: 10,
        scale: 0.2,
    });
    let split = train_test_split(d.n(), 0.3, 42);
    let x_test = d.x0.select_rows(&split.test).unwrap();
    let e_test: Vec<f64> = split.test.iter().map(|&i| d.errors[i]).collect();
    let r = SliceLine::new(config(2))
        .find_slices(&x_test, &e_test)
        .unwrap();
    // The strongest planted bias survives subsampling to 30% of rows.
    assert!(
        r.top_k
            .iter()
            .any(|s| s.predicates == d.planted[0].predicates),
        "top-K on the test split: {:?}",
        r.top_k.iter().map(|s| &s.predicates).collect::<Vec<_>>()
    );
}

#[test]
fn stats_table_renders_for_real_run() {
    let d = adult_like(&tiny(7));
    let r = SliceLine::new(config(3))
        .find_slices(&d.x0, &d.errors)
        .unwrap();
    let table = r.stats.render_table();
    assert!(table.contains("level"));
    assert!(table.lines().count() > r.stats.levels.len());
}
