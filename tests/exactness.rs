//! The headline property: SliceLine's pruned enumeration is **exact**.
//!
//! Property tests compare SliceLine's top-K — under every kernel, thread
//! count, pruning ablation, and the pure-LA reference backend — against a
//! brute-force oracle on randomized small datasets. Scores must agree to
//! floating-point tolerance; slice identities must agree up to score ties.

use proptest::prelude::*;
use sliceline_repro::frame::IntMatrix;
use sliceline_repro::slicefinder::NaiveEnumerator;
use sliceline_repro::sliceline::lagraph::find_slices_reference;
use sliceline_repro::sliceline::{EvalKernel, PruningConfig, SliceLine, SliceLineConfig};

const TOL: f64 = 1e-9;

/// A random small dataset: up to 4 features with domains ≤ 4, up to 48
/// rows, errors from a small non-negative set (ties are likely — good).
fn dataset_strategy() -> impl Strategy<Value = (IntMatrix, Vec<f64>)> {
    (1usize..=4, 8usize..=48)
        .prop_flat_map(|(m, n)| {
            let domains = proptest::collection::vec(2u32..=4, m);
            domains.prop_flat_map(move |doms| {
                let row = doms.iter().map(|&d| 1u32..=d).collect::<Vec<_>>();
                let rows = proptest::collection::vec(
                    row.into_iter().fold(Just(Vec::new()).boxed(), |acc, r| {
                        (acc, r)
                            .prop_map(|(mut v, x)| {
                                v.push(x);
                                v
                            })
                            .boxed()
                    }),
                    n,
                );
                let errors = proptest::collection::vec(
                    prop_oneof![Just(0.0f64), Just(0.25), Just(0.5), Just(1.0), Just(2.0)],
                    n,
                );
                (rows, errors)
            })
        })
        .prop_map(|(rows, errors)| {
            // Ensure the full domain appears so IntMatrix::from_data infers
            // the intended domains; the first rows are overwritten with a
            // diagonal sweep of max codes. (Domain inference via colMaxs is
            // exactly what Algorithm 1 does.)
            (IntMatrix::from_rows(&rows).unwrap(), errors)
        })
}

fn params_strategy() -> impl Strategy<Value = (usize, usize, f64)> {
    (
        1usize..=6,
        1usize..=4,
        prop_oneof![Just(0.5), Just(0.9), Just(0.95), Just(1.0)],
    )
}

fn sliceline_config(k: usize, sigma: usize, alpha: f64) -> SliceLineConfig {
    SliceLineConfig::builder()
        .k(k)
        .min_support(sigma)
        .alpha(alpha)
        .threads(1)
        .build()
        .unwrap()
}

/// Checks that `result` equals the oracle's top-K up to score ties:
/// score sequences match, and every returned slice exists in the oracle's
/// (larger) enumeration with identical statistics.
fn assert_matches_oracle(
    x0: &IntMatrix,
    errors: &[f64],
    k: usize,
    sigma: usize,
    alpha: f64,
    top_k: &[sliceline_repro::sliceline::SliceInfo],
) {
    let oracle_full = NaiveEnumerator::new(10_000, sigma, alpha, x0.cols()).top_k(x0, errors);
    let expected: Vec<&_> = oracle_full.iter().take(k).collect();
    assert_eq!(
        top_k.len(),
        expected.len(),
        "top-K size mismatch (oracle found {} total)",
        oracle_full.len()
    );
    for (got, want) in top_k.iter().zip(expected.iter()) {
        assert!(
            (got.score - want.score).abs() < TOL,
            "score mismatch: got {} want {}",
            got.score,
            want.score
        );
    }
    // Identity check: each returned slice appears in the full oracle
    // enumeration with the same size/error.
    for got in top_k {
        let found = oracle_full
            .iter()
            .find(|o| o.predicates == got.predicates)
            .unwrap_or_else(|| panic!("slice {:?} not in oracle enumeration", got.predicates));
        assert_eq!(found.size as f64, got.size);
        assert!((found.error - got.error).abs() < TOL);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sliceline_matches_bruteforce_oracle(
        (x0, errors) in dataset_strategy(),
        (k, sigma, alpha) in params_strategy(),
    ) {
        let r = SliceLine::new(sliceline_config(k, sigma, alpha))
            .find_slices(&x0, &errors)
            .unwrap();
        assert_matches_oracle(&x0, &errors, k, sigma, alpha, &r.top_k);
    }

    #[test]
    fn pruning_ablations_preserve_exactness(
        (x0, errors) in dataset_strategy(),
        (k, sigma, alpha) in params_strategy(),
    ) {
        let base = SliceLine::new(sliceline_config(k, sigma, alpha))
            .find_slices(&x0, &errors)
            .unwrap();
        for pruning in [
            PruningConfig::no_parent_handling(),
            PruningConfig::no_score_pruning(),
            PruningConfig::no_size_pruning(),
            PruningConfig::none(),
        ] {
            let mut c = sliceline_config(k, sigma, alpha);
            c.pruning = pruning;
            let r = SliceLine::new(c).find_slices(&x0, &errors).unwrap();
            prop_assert_eq!(r.top_k.len(), base.top_k.len());
            for (a, b) in r.top_k.iter().zip(base.top_k.iter()) {
                prop_assert!((a.score - b.score).abs() < TOL);
            }
        }
    }

    #[test]
    fn kernels_and_reference_backend_agree(
        (x0, errors) in dataset_strategy(),
        (k, sigma, alpha) in params_strategy(),
    ) {
        let base = SliceLine::new(sliceline_config(k, sigma, alpha))
            .find_slices(&x0, &errors)
            .unwrap();
        // Fused kernel.
        let mut c = sliceline_config(k, sigma, alpha);
        c.eval = EvalKernel::Fused;
        let fused = SliceLine::new(c).find_slices(&x0, &errors).unwrap();
        prop_assert_eq!(&fused.top_k, &base.top_k);
        // Odd block size + threads.
        let mut c = sliceline_config(k, sigma, alpha);
        c.eval = EvalKernel::Blocked { block_size: 3 };
        c.parallel = sliceline_repro::linalg::ParallelConfig::new(3);
        let blocked = SliceLine::new(c).find_slices(&x0, &errors).unwrap();
        prop_assert_eq!(&blocked.top_k, &base.top_k);
        // Pure-LA reference backend.
        let reference =
            find_slices_reference(&x0, &errors, &sliceline_config(k, sigma, alpha)).unwrap();
        prop_assert_eq!(reference.top_k.len(), base.top_k.len());
        for (a, b) in reference.top_k.iter().zip(base.top_k.iter()) {
            prop_assert!((a.score - b.score).abs() < TOL);
        }
    }

    #[test]
    fn best_first_priority_enumeration_is_exact(
        (x0, errors) in dataset_strategy(),
        (k, sigma, alpha) in params_strategy(),
    ) {
        use sliceline_repro::sliceline::priority::PrioritySliceLine;
        let levelwise = SliceLine::new(sliceline_config(k, sigma, alpha))
            .find_slices(&x0, &errors)
            .unwrap();
        let best_first = PrioritySliceLine::new(sliceline_config(k, sigma, alpha))
            .find_slices(&x0, &errors)
            .unwrap();
        prop_assert!(best_first.exact);
        prop_assert_eq!(best_first.result.top_k.len(), levelwise.top_k.len());
        for (a, b) in best_first.result.top_k.iter().zip(levelwise.top_k.iter()) {
            prop_assert!(
                (a.score - b.score).abs() < TOL,
                "best-first {} vs level-wise {}",
                a.score,
                b.score
            );
        }
    }

    #[test]
    fn returned_statistics_are_self_consistent(
        (x0, errors) in dataset_strategy(),
        (k, sigma, alpha) in params_strategy(),
    ) {
        let r = SliceLine::new(sliceline_config(k, sigma, alpha))
            .find_slices(&x0, &errors)
            .unwrap();
        for s in &r.top_k {
            // Recompute size and error directly from the data.
            let mut size = 0.0;
            let mut err = 0.0;
            let mut max_err: f64 = 0.0;
            #[allow(clippy::needless_range_loop)]
            for row in 0..x0.rows() {
                if s.predicates.iter().all(|&(j, code)| x0.get(row, j) == code) {
                    size += 1.0;
                    err += errors[row];
                    max_err = max_err.max(errors[row]);
                }
            }
            prop_assert_eq!(s.size, size);
            prop_assert!((s.error - err).abs() < TOL);
            prop_assert!((s.max_error - max_err).abs() < TOL);
            prop_assert!(s.size >= sigma as f64);
            prop_assert!(s.score > 0.0);
            // Predicates are sorted and unique per feature.
            for w in s.predicates.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
        }
    }
}
