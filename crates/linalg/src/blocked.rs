//! Block-partitioned sparse matrices (SystemDS-style).
//!
//! The paper's distributed experiments run on Spark over block-partitioned
//! `1K × 1K` matrices (§5.4: CriteoD21's ultra-sparse one-hot matrix "is
//! challenging for distributed operations on block-partitioned (1K×1K)
//! matrices"). [`BlockedMatrix`] reproduces that storage model: the matrix
//! is tiled into fixed-size blocks, each stored as an independent CSR
//! chunk; empty blocks are not materialized. Operations iterate present
//! blocks only, which is what makes ultra-sparse data *challenging* —
//! per-block overhead dominates when most blocks hold a handful of
//! non-zeros, exactly the effect the paper reports.

use crate::context::ExecContext;
use crate::csr::CsrMatrix;
use crate::error::{LinalgError, Result};
use std::collections::BTreeMap;

/// Block-local `(row, col, value)` triplets keyed by block coordinate.
type BlockTriplets = BTreeMap<(usize, usize), Vec<(usize, usize, f64)>>;

/// A sparse matrix tiled into `block_size × block_size` CSR blocks.
///
/// Blocks are keyed by `(block_row, block_col)`; absent keys are all-zero
/// blocks. Block-local matrices have the residual dimensions at the right
/// and bottom edges.
///
/// ```
/// use sliceline_linalg::{BlockedMatrix, CsrMatrix};
/// let m = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 2.0)]).unwrap();
/// let blocked = BlockedMatrix::from_csr(&m, 2).unwrap();
/// assert_eq!(blocked.num_blocks(), 2); // only the diagonal blocks exist
/// assert_eq!(blocked.to_csr(), m);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedMatrix {
    rows: usize,
    cols: usize,
    block_size: usize,
    blocks: BTreeMap<(usize, usize), CsrMatrix>,
}

impl BlockedMatrix {
    /// Tiles a CSR matrix into blocks of `block_size` (must be ≥ 1).
    pub fn from_csr(m: &CsrMatrix, block_size: usize) -> Result<Self> {
        if block_size == 0 {
            return Err(LinalgError::InvalidData {
                reason: "block_size must be at least 1".to_string(),
            });
        }
        // Gather triplets per block.
        let mut per_block: BlockTriplets = BTreeMap::new();
        for r in 0..m.rows() {
            let (cols, vals) = m.row(r);
            let br = r / block_size;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let bc = c as usize / block_size;
                per_block.entry((br, bc)).or_default().push((
                    r % block_size,
                    c as usize % block_size,
                    v,
                ));
            }
        }
        let mut blocks = BTreeMap::new();
        for ((br, bc), triplets) in per_block {
            let brows = block_dim(m.rows(), br, block_size);
            let bcols = block_dim(m.cols(), bc, block_size);
            blocks.insert((br, bc), CsrMatrix::from_triplets(brows, bcols, &triplets)?);
        }
        Ok(BlockedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            block_size,
            blocks,
        })
    }

    /// Reassembles the full CSR matrix.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut triplets = Vec::new();
        for (&(br, bc), block) in &self.blocks {
            let r0 = br * self.block_size;
            let c0 = bc * self.block_size;
            for r in 0..block.rows() {
                let (cols, vals) = block.row(r);
                for (&c, &v) in cols.iter().zip(vals.iter()) {
                    triplets.push((r0 + r, c0 + c as usize, v));
                }
            }
        }
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
            .expect("block coordinates stay in range by construction")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of materialized (non-empty) blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of block slots (`ceil(rows/b) × ceil(cols/b)`).
    pub fn block_slots(&self) -> usize {
        self.rows.div_ceil(self.block_size) * self.cols.div_ceil(self.block_size)
    }

    /// Fraction of block slots that are materialized — the paper's
    /// ultra-sparsity pain metric: near 1.0 with tiny per-block nnz means
    /// pure overhead.
    pub fn block_density(&self) -> f64 {
        let slots = self.block_slots();
        if slots == 0 {
            0.0
        } else {
            self.num_blocks() as f64 / slots as f64
        }
    }

    /// Average non-zeros per materialized block.
    pub fn avg_nnz_per_block(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        let nnz: usize = self.blocks.values().map(|b| b.nnz()).sum();
        nnz as f64 / self.blocks.len() as f64
    }

    /// Blocked matrix–vector product `self * v`: iterates present blocks
    /// only, accumulating into the output segment of each block row.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "blocked_matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (&(br, bc), block) in &self.blocks {
            let r0 = br * self.block_size;
            let c0 = bc * self.block_size;
            let vseg = &v[c0..(c0 + block.cols())];
            let partial = block.matvec(vseg)?;
            for (i, p) in partial.into_iter().enumerate() {
                out[r0 + i] += p;
            }
        }
        Ok(out)
    }

    /// Parallel blocked matrix–vector product: block *rows* are
    /// independent output segments, so the execution context fans them
    /// out across threads with no write contention.
    pub fn matvec_parallel(&self, v: &[f64], exec: &ExecContext) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "blocked_matvec_parallel",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        // Group present blocks by block row; each group owns a disjoint
        // output segment.
        let mut by_brow: BTreeMap<usize, Vec<(usize, &CsrMatrix)>> = BTreeMap::new();
        for (&(br, bc), block) in &self.blocks {
            by_brow.entry(br).or_default().push((bc, block));
        }
        let groups: Vec<(usize, Vec<(usize, &CsrMatrix)>)> = by_brow.into_iter().collect();
        let segments = exec.parallel().par_map(groups.len(), |g| {
            let (br, blocks) = &groups[g];
            let r0 = br * self.block_size;
            let seg_len = block_dim(self.rows, *br, self.block_size);
            let mut seg = vec![0.0; seg_len];
            for (bc, block) in blocks {
                let c0 = bc * self.block_size;
                let vseg = &v[c0..(c0 + block.cols())];
                let partial = block
                    .matvec(vseg)
                    .expect("block shapes are consistent by construction");
                for (i, p) in partial.into_iter().enumerate() {
                    seg[i] += p;
                }
            }
            (r0, seg)
        });
        let mut out = vec![0.0; self.rows];
        for (r0, seg) in segments {
            out[r0..r0 + seg.len()].copy_from_slice(&seg);
        }
        Ok(out)
    }

    /// Blocked sparse-sparse product `self * rhs` — block rows of `self`
    /// join block columns of `rhs` over the shared block index, mirroring
    /// the distributed join-and-aggregate plan Spark executes.
    pub fn matmul(&self, rhs: &BlockedMatrix) -> Result<BlockedMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "blocked_matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        if self.block_size != rhs.block_size {
            return Err(LinalgError::InvalidData {
                reason: format!(
                    "block sizes differ: {} vs {}",
                    self.block_size, rhs.block_size
                ),
            });
        }
        // Index rhs blocks by block-row for the join.
        let mut rhs_by_brow: BTreeMap<usize, Vec<(usize, &CsrMatrix)>> = BTreeMap::new();
        for (&(br, bc), block) in &rhs.blocks {
            rhs_by_brow.entry(br).or_default().push((bc, block));
        }
        let mut acc: BTreeMap<(usize, usize), CsrMatrix> = BTreeMap::new();
        for (&(abr, abc), ablock) in &self.blocks {
            let Some(matches) = rhs_by_brow.get(&abc) else {
                continue;
            };
            for &(bbc, bblock) in matches {
                let product = crate::spgemm::spgemm(ablock, bblock)?;
                if product.nnz() == 0 {
                    continue;
                }
                match acc.get_mut(&(abr, bbc)) {
                    Some(existing) => {
                        *existing = add_csr(existing, &product)?;
                    }
                    None => {
                        acc.insert((abr, bbc), product);
                    }
                }
            }
        }
        acc.retain(|_, b| b.nnz() > 0);
        Ok(BlockedMatrix {
            rows: self.rows,
            cols: rhs.cols,
            block_size: self.block_size,
            blocks: acc,
        })
    }
}

fn block_dim(total: usize, index: usize, block_size: usize) -> usize {
    let start = index * block_size;
    block_size.min(total - start)
}

/// Element-wise sum of two equally shaped CSR matrices.
fn add_csr(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    let mut triplets = Vec::with_capacity(a.nnz() + b.nnz());
    for m in [a, b] {
        for r in 0..m.rows() {
            let (cols, vals) = m.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                triplets.push((r, c as usize, v));
            }
        }
    }
    CsrMatrix::from_triplets(a.rows(), a.cols(), &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> = (0..rows)
            .flat_map(|r| [(r, r % cols, 1.0 + r as f64), (r, (r * 3 + 1) % cols, 2.0)])
            .collect();
        CsrMatrix::from_triplets(rows, cols, &triplets).unwrap()
    }

    #[test]
    fn roundtrip_csr() {
        let m = sample(10, 7);
        for bs in [1, 2, 3, 7, 100] {
            let blocked = BlockedMatrix::from_csr(&m, bs).unwrap();
            assert_eq!(blocked.to_csr(), m, "block size {bs}");
            assert_eq!(blocked.rows(), 10);
            assert_eq!(blocked.cols(), 7);
            assert_eq!(blocked.block_size(), bs);
        }
        assert!(BlockedMatrix::from_csr(&m, 0).is_err());
    }

    #[test]
    fn matvec_matches_csr() {
        let m = sample(9, 5);
        let v: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let expect = m.matvec(&v).unwrap();
        for bs in [2, 4, 16] {
            let blocked = BlockedMatrix::from_csr(&m, bs).unwrap();
            assert_eq!(blocked.matvec(&v).unwrap(), expect);
        }
        let blocked = BlockedMatrix::from_csr(&m, 2).unwrap();
        assert!(blocked.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matvec_parallel_matches_serial() {
        let m = sample(23, 7);
        let v: Vec<f64> = (0..7).map(|i| 0.5 * i as f64 - 1.0).collect();
        let blocked = BlockedMatrix::from_csr(&m, 4).unwrap();
        let expect = blocked.matvec(&v).unwrap();
        for threads in [1, 2, 4] {
            let exec = ExecContext::new(threads);
            assert_eq!(blocked.matvec_parallel(&v, &exec).unwrap(), expect);
        }
        assert!(blocked
            .matvec_parallel(&[1.0], &ExecContext::serial())
            .is_err());
    }

    #[test]
    fn matmul_matches_flat_spgemm() {
        let a = sample(6, 5);
        let b = sample(5, 4);
        let expect = crate::spgemm::spgemm(&a, &b).unwrap();
        for bs in [2, 3, 8] {
            let ab = BlockedMatrix::from_csr(&a, bs).unwrap();
            let bb = BlockedMatrix::from_csr(&b, bs).unwrap();
            let product = ab.matmul(&bb).unwrap();
            assert_eq!(product.to_csr().to_dense(), expect.to_dense(), "bs={bs}");
        }
        // Shape and block-size mismatches rejected.
        let ab = BlockedMatrix::from_csr(&a, 2).unwrap();
        let bb3 = BlockedMatrix::from_csr(&b, 3).unwrap();
        assert!(ab.matmul(&bb3).is_err());
        let aa = BlockedMatrix::from_csr(&a, 2).unwrap();
        assert!(aa.matmul(&aa).is_err());
    }

    #[test]
    fn ultra_sparse_block_overhead_metrics() {
        // A diagonal-ish ultra-sparse matrix: every block holds ~1 nnz.
        let n = 64;
        let triplets: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
        let m = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let blocked = BlockedMatrix::from_csr(&m, 4).unwrap();
        // Only the diagonal block slots materialize.
        assert_eq!(blocked.num_blocks(), 16);
        assert_eq!(blocked.block_slots(), 256);
        assert!((blocked.block_density() - 16.0 / 256.0).abs() < 1e-12);
        assert_eq!(blocked.avg_nnz_per_block(), 4.0);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::zeros(5, 5);
        let blocked = BlockedMatrix::from_csr(&m, 2).unwrap();
        assert_eq!(blocked.num_blocks(), 0);
        assert_eq!(blocked.avg_nnz_per_block(), 0.0);
        assert_eq!(blocked.matvec(&[1.0; 5]).unwrap(), vec![0.0; 5]);
    }
}
