//! Contingency tables, selection matrices and triangular extraction.
//!
//! The SliceLine paper builds its one-hot matrix via
//! `X = table(rix, cix)` (Algorithm 1 data preparation), extracts top-K
//! rows via a selection matrix `P = table(seq(1,K), IX, …)` (§4.5), and
//! joins compatible slice pairs via
//! `I = upper.tri((S Sᵀ) == (L-2), values=TRUE)` (Eq. 6). All three
//! primitives are implemented here on CSR matrices.

use crate::csr::CsrMatrix;
use crate::error::{LinalgError, Result};

/// `table(rix, cix)`: builds a `rows × cols` contingency matrix counting
/// each `(rix[i], cix[i])` pair. Indexes are 0-based here (the paper's DML
/// uses 1-based).
///
/// When every pair is unique — as in one-hot encoding — the result is a 0/1
/// matrix.
pub fn table_from_pairs(
    rix: &[usize],
    cix: &[usize],
    rows: usize,
    cols: usize,
) -> Result<CsrMatrix> {
    if rix.len() != cix.len() {
        return Err(LinalgError::InvalidData {
            reason: format!(
                "table: rix length {} != cix length {}",
                rix.len(),
                cix.len()
            ),
        });
    }
    let triplets: Vec<(usize, usize, f64)> = rix
        .iter()
        .zip(cix.iter())
        .map(|(&r, &c)| (r, c, 1.0))
        .collect();
    CsrMatrix::from_triplets(rows, cols, &triplets)
}

/// Builds the `k × n` selection matrix `P` with `P[i, indices[i]] = 1`,
/// i.e. `P = table(seq(1,k), IX, k, n)`. Multiplying `P ⊙ M` then extracts
/// rows `indices` of `M` in order.
pub fn selection_matrix(indices: &[usize], n: usize) -> Result<CsrMatrix> {
    let mut rows = Vec::with_capacity(indices.len());
    for &ix in indices {
        if ix >= n {
            return Err(LinalgError::IndexOutOfBounds {
                op: "selection_matrix",
                index: ix,
                bound: n,
            });
        }
        rows.push(vec![ix as u32]);
    }
    CsrMatrix::from_binary_rows(n, &rows)
}

/// Extracts the strict upper triangle entries `(r, c)` with `r < c` of a
/// square matrix `m` whose value equals `target`, returning the index
/// pairs. This is the paper's
/// `upper.tri((S Sᵀ) == (L-2), values=TRUE)` step used to select
/// compatible slice pairs (the product is symmetric, so the strict upper
/// triangle enumerates each unordered pair once).
pub fn upper_tri_eq(m: &CsrMatrix, target: f64) -> Result<Vec<(usize, usize)>> {
    if m.rows() != m.cols() {
        return Err(LinalgError::NotSquare {
            op: "upper_tri_eq",
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let mut pairs = Vec::new();
    for r in 0..m.rows() {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            let c = c as usize;
            if c > r && v == target {
                pairs.push((r, c));
            }
        }
    }
    // Implicit zeros also count when target == 0: every absent strict
    // upper-triangle entry matches.
    if target == 0.0 {
        let mut present: Vec<Vec<usize>> = vec![Vec::new(); m.rows()];
        #[allow(clippy::needless_range_loop)]
        for r in 0..m.rows() {
            for &c in m.row_cols(r) {
                let c = c as usize;
                if c > r {
                    present[r].push(c);
                }
            }
        }
        for (r, pres) in present.iter().enumerate() {
            let mut it = pres.iter().peekable();
            for c in (r + 1)..m.cols() {
                if it.peek() == Some(&&c) {
                    it.next();
                } else {
                    pairs.push((r, c));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
    }
    Ok(pairs)
}

/// Element-wise comparison of a CSR matrix against a scalar, producing a
/// binary CSR indicator `m == target` over *stored* entries only.
///
/// This mirrors sparsity-exploiting ML-system semantics where comparisons
/// against a non-zero scalar never introduce new non-zeros. `target` must
/// be non-zero (a zero target would produce a dense result; callers that
/// need it should work on dense matrices instead).
pub fn eq_scalar_sparse(m: &CsrMatrix, target: f64) -> Result<CsrMatrix> {
    if target == 0.0 {
        return Err(LinalgError::InvalidData {
            reason: "eq_scalar_sparse with target 0 would be dense".to_string(),
        });
    }
    let mut triplets = Vec::new();
    for r in 0..m.rows() {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            if v == target {
                triplets.push((r, c as usize, 1.0));
            }
        }
    }
    CsrMatrix::from_triplets(m.rows(), m.cols(), &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_counts_pairs() {
        let t = table_from_pairs(&[0, 1, 1, 0], &[0, 1, 1, 2], 2, 3).unwrap();
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 1), 2.0);
        assert_eq!(t.get(0, 2), 1.0);
        assert_eq!(t.get(0, 1), 0.0);
    }

    #[test]
    fn table_rejects_mismatched_lengths() {
        assert!(table_from_pairs(&[0], &[0, 1], 1, 2).is_err());
    }

    #[test]
    fn table_one_hot_is_binary() {
        // One-hot encoding: row i sets column code[i].
        let codes = [2usize, 0, 1];
        let rix: Vec<usize> = (0..3).collect();
        let t = table_from_pairs(&rix, &codes, 3, 3).unwrap();
        assert!(t.is_binary());
        assert_eq!(t.nnz(), 3);
    }

    #[test]
    fn selection_matrix_extracts_rows() {
        let p = selection_matrix(&[2, 0], 4).unwrap();
        assert_eq!(p.shape(), (2, 4));
        let m = CsrMatrix::from_triplets(
            4,
            2,
            &[(0, 0, 10.0), (1, 0, 20.0), (2, 1, 30.0), (3, 0, 40.0)],
        )
        .unwrap();
        let extracted = crate::spgemm::spgemm(&p, &m).unwrap();
        assert_eq!(extracted.get(0, 1), 30.0);
        assert_eq!(extracted.get(1, 0), 10.0);
        assert!(selection_matrix(&[4], 4).is_err());
    }

    #[test]
    fn upper_tri_eq_selects_pairs() {
        // Symmetric matrix with some target entries.
        let m = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (0, 2, 3.0),
                (2, 0, 3.0),
            ],
        )
        .unwrap();
        assert_eq!(upper_tri_eq(&m, 1.0).unwrap(), vec![(0, 1), (1, 2)]);
        assert_eq!(upper_tri_eq(&m, 3.0).unwrap(), vec![(0, 2)]);
        let not_square = CsrMatrix::zeros(2, 3);
        assert!(upper_tri_eq(&not_square, 1.0).is_err());
    }

    #[test]
    fn upper_tri_eq_zero_target_includes_implicit() {
        // Only entry (0,1)=5; the zero-target match must include (0,2),(1,2).
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 1, 5.0), (1, 0, 5.0)]).unwrap();
        assert_eq!(upper_tri_eq(&m, 0.0).unwrap(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn eq_scalar_sparse_indicator() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 3.0), (1, 1, 2.0)]).unwrap();
        let i = eq_scalar_sparse(&m, 2.0).unwrap();
        assert!(i.is_binary());
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert!(eq_scalar_sparse(&m, 0.0).is_err());
    }
}
