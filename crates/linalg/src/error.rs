//! Error types shared by all linear algebra operations.

use std::fmt;

/// Convenience alias for results of linear algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by matrix and vector operations.
///
/// All shape information is carried so callers can print actionable
/// diagnostics without re-deriving the offending dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes, e.g. `A (n×m) * B (p×q)` with
    /// `m != p`.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// An index was outside the valid range of a matrix or vector.
    IndexOutOfBounds {
        /// Name of the operation that failed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay below.
        bound: usize,
    },
    /// A matrix expected to be square was not.
    NotSquare {
        /// Name of the operation that failed.
        op: &'static str,
        /// Number of rows found.
        rows: usize,
        /// Number of columns found.
        cols: usize,
    },
    /// A matrix required to be (numerically) positive definite was not,
    /// e.g. Cholesky hit a non-positive pivot.
    NotPositiveDefinite {
        /// The pivot column at which factorization failed.
        pivot: usize,
    },
    /// Raw data passed to a constructor did not match the declared shape.
    InvalidData {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// An operation was asked to produce an empty result where that is not
    /// representable (e.g. a max over zero elements).
    EmptyInput {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: shape mismatch, lhs is {}x{} but rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds (must be < {bound})")
            }
            LinalgError::NotSquare { op, rows, cols } => {
                write!(f, "{op}: matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "cholesky: matrix not positive definite at pivot {pivot}")
            }
            LinalgError::InvalidData { reason } => write!(f, "invalid data: {reason}"),
            LinalgError::EmptyInput { op } => write!(f, "{op}: empty input"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "matmul: shape mismatch, lhs is 2x3 but rhs is 4x5"
        );
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = LinalgError::IndexOutOfBounds {
            op: "row",
            index: 7,
            bound: 5,
        };
        assert_eq!(e.to_string(), "row: index 7 out of bounds (must be < 5)");
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite { pivot: 3 };
        assert_eq!(
            e.to_string(),
            "cholesky: matrix not positive definite at pivot 3"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<LinalgError>();
    }
}
