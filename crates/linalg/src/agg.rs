//! Aggregation kernels: `colSums`, `colMaxs`, `rowSums`, `rowMaxs`,
//! `rowIndexMax` for both dense and CSR matrices.
//!
//! These are the aggregations that Algorithm 1 of the SliceLine paper uses
//! to turn indicator matrices into slice statistics, e.g.
//! `ss = colSums(I)ᵀ` and `sm = colMaxs(I · e)ᵀ` (Eq. 10).
//!
//! Maximum semantics: for sparse matrices the implicit zeros participate in
//! the maximum exactly as in SystemDS — a column whose stored values are
//! all negative but that has at least one implicit zero reports max 0.

use crate::context::ExecContext;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;

/// Column sums of a dense matrix, returned as a vector of length `cols`.
pub fn col_sums_dense(m: &DenseMatrix) -> Vec<f64> {
    let mut out = vec![0.0; m.cols()];
    for r in 0..m.rows() {
        for (o, &v) in out.iter_mut().zip(m.row(r).iter()) {
            *o += v;
        }
    }
    out
}

/// Column maxima of a dense matrix. Columns of an empty (0-row) matrix
/// report `f64::NEG_INFINITY`.
pub fn col_maxs_dense(m: &DenseMatrix) -> Vec<f64> {
    let mut out = vec![f64::NEG_INFINITY; m.cols()];
    for r in 0..m.rows() {
        for (o, &v) in out.iter_mut().zip(m.row(r).iter()) {
            if v > *o {
                *o = v;
            }
        }
    }
    out
}

/// Row sums of a dense matrix.
pub fn row_sums_dense(m: &DenseMatrix) -> Vec<f64> {
    (0..m.rows()).map(|r| m.row(r).iter().sum()).collect()
}

/// Row maxima of a dense matrix. Rows of a 0-column matrix report
/// `f64::NEG_INFINITY`.
pub fn row_maxs_dense(m: &DenseMatrix) -> Vec<f64> {
    (0..m.rows())
        .map(|r| m.row(r).iter().cloned().fold(f64::NEG_INFINITY, f64::max))
        .collect()
}

/// For each row of a dense matrix, the index of its maximum element
/// (first occurrence wins, matching `rowIndexMax` semantics). Rows of a
/// 0-column matrix report index 0.
pub fn row_index_max_dense(m: &DenseMatrix) -> Vec<usize> {
    (0..m.rows())
        .map(|r| {
            let row = m.row(r);
            let mut best = 0usize;
            let mut best_v = f64::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Column sums of a CSR matrix.
pub fn col_sums_csr(m: &CsrMatrix) -> Vec<f64> {
    let mut out = vec![0.0; m.cols()];
    for (&c, &v) in m.col_indices().iter().zip(m.values().iter()) {
        out[c as usize] += v;
    }
    out
}

/// Parallel column sums of a CSR matrix: workers accumulate over disjoint
/// row ranges into private buffers that are then combined. Fan-out comes
/// from the execution context.
pub fn col_sums_csr_parallel(m: &CsrMatrix, exec: &ExecContext) -> Vec<f64> {
    exec.parallel().par_reduce(
        m.rows(),
        vec![0.0; m.cols()],
        |mut acc, r| {
            let (cols, vals) = m.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc[c as usize] += v;
            }
            acc
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
            a
        },
    )
}

/// Column maxima of a CSR matrix, with implicit zeros participating: a
/// column with fewer stored entries than rows has an implicit 0 candidate.
pub fn col_maxs_csr(m: &CsrMatrix) -> Vec<f64> {
    let mut out = vec![f64::NEG_INFINITY; m.cols()];
    let mut counts = vec![0usize; m.cols()];
    for (&c, &v) in m.col_indices().iter().zip(m.values().iter()) {
        let c = c as usize;
        if v > out[c] {
            out[c] = v;
        }
        counts[c] += 1;
    }
    for (c, o) in out.iter_mut().enumerate() {
        if counts[c] < m.rows() && *o < 0.0 {
            *o = 0.0;
        }
        if counts[c] == 0 && m.rows() == 0 {
            *o = f64::NEG_INFINITY;
        }
    }
    if m.rows() == 0 {
        return vec![f64::NEG_INFINITY; m.cols()];
    }
    out
}

/// Row sums of a CSR matrix.
pub fn row_sums_csr(m: &CsrMatrix) -> Vec<f64> {
    (0..m.rows()).map(|r| m.row(r).1.iter().sum()).collect()
}

/// Row maxima of a CSR matrix with implicit-zero participation.
pub fn row_maxs_csr(m: &CsrMatrix) -> Vec<f64> {
    (0..m.rows())
        .map(|r| {
            let (cols, vals) = m.row(r);
            let stored_max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if cols.len() < m.cols() {
                stored_max.max(0.0)
            } else {
                stored_max
            }
        })
        .collect()
}

/// Row counts of non-zero entries of a CSR matrix (`rowSums(M != 0)`).
pub fn row_nnz_counts(m: &CsrMatrix) -> Vec<usize> {
    (0..m.rows()).map(|r| m.row_nnz(r)).collect()
}

/// Sum of all elements of a vector.
pub fn sum(v: &[f64]) -> f64 {
    v.iter().sum()
}

/// Maximum of a vector; `f64::NEG_INFINITY` for empty input.
pub fn max(v: &[f64]) -> f64 {
    v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Arithmetic mean of a vector; 0 for empty input.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        sum(v) / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::dense::DenseMatrix;

    fn dense() -> DenseMatrix {
        DenseMatrix::from_vec(3, 2, vec![1.0, -2.0, 0.0, 5.0, 3.0, 0.0]).unwrap()
    }

    #[test]
    fn dense_aggregations() {
        let m = dense();
        assert_eq!(col_sums_dense(&m), vec![4.0, 3.0]);
        assert_eq!(col_maxs_dense(&m), vec![3.0, 5.0]);
        assert_eq!(row_sums_dense(&m), vec![-1.0, 5.0, 3.0]);
        assert_eq!(row_maxs_dense(&m), vec![1.0, 5.0, 3.0]);
        assert_eq!(row_index_max_dense(&m), vec![0, 1, 0]);
    }

    #[test]
    fn row_index_max_first_wins() {
        let m = DenseMatrix::from_vec(1, 3, vec![7.0, 7.0, 1.0]).unwrap();
        assert_eq!(row_index_max_dense(&m), vec![0]);
    }

    #[test]
    fn csr_matches_dense() {
        let d = dense();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(col_sums_csr(&s), col_sums_dense(&d));
        assert_eq!(row_sums_csr(&s), row_sums_dense(&d));
        assert_eq!(col_maxs_csr(&s), col_maxs_dense(&d));
        assert_eq!(row_maxs_csr(&s), row_maxs_dense(&d));
    }

    #[test]
    fn csr_col_maxs_implicit_zero() {
        // Column 0 has only a negative stored value; implicit zeros win.
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, -3.0), (0, 1, 4.0)]).unwrap();
        assert_eq!(col_maxs_csr(&m), vec![0.0, 4.0]);
    }

    #[test]
    fn csr_row_maxs_implicit_zero() {
        let m = CsrMatrix::from_triplets(1, 3, &[(0, 0, -3.0)]).unwrap();
        assert_eq!(row_maxs_csr(&m), vec![0.0]);
    }

    #[test]
    fn parallel_col_sums_match() {
        let d = dense();
        let s = CsrMatrix::from_dense(&d);
        for threads in [1, 2, 4] {
            assert_eq!(
                col_sums_csr_parallel(&s, &ExecContext::new(threads)),
                col_sums_csr(&s)
            );
        }
    }

    #[test]
    fn nnz_counts() {
        let s = CsrMatrix::from_dense(&dense());
        assert_eq!(row_nnz_counts(&s), vec![2, 1, 1]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(max(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
