//! Runtime-dispatched SIMD backends for the bitmap hot path.
//!
//! The packed-bitmap kernels in [`crate::bitmap`] are pure streaming word
//! loops (`AND`, popcount, masked error scans) — exactly the shape that
//! vectorizes. This module holds the vector implementations and the
//! dispatch machinery:
//!
//! * [`SimdLevel`] — the instruction set a kernel actually runs with
//!   (`Scalar` is always available; `Avx2` on x86-64 with AVX2+POPCNT+BMI1;
//!   `Neon` on aarch64).
//! * [`SimdKernel`] — the user-facing knob: `Scalar` forces the portable
//!   loops, `Auto` takes the best detected level, `Forced` pins a specific
//!   level (degrading to `Scalar` when the CPU lacks it).
//! * [`detect`] — one-time runtime feature detection
//!   (`is_x86_feature_detected!`), cached for the process lifetime.
//! * [`default_level`] — the process-wide default, initialised from the
//!   `SLICELINE_SIMD` environment variable (`scalar`/`auto`/`avx2`/`neon`)
//!   on first use and overridable via [`set_default`].
//!
//! Every vector kernel is **bit-for-bit identical** to its scalar
//! counterpart: integer reductions (`AND`, popcount, sizes) are associative
//! so lane order is free, while the floating-point error aggregation keeps
//! the exact ascending-row single-chain association of the scalar scan —
//! the vector units only accelerate the word-level work around it
//! (conjunction, population counts, and skipping all-zero word blocks).
//! The proptest suite in `tests/simd_parity.rs` pins this contract at
//! lengths straddling every lane and unroll boundary.

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction set a bitmap kernel dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar loops — always available, the parity baseline.
    Scalar,
    /// 256-bit AVX2 kernels (requires AVX2 + POPCNT + BMI1; x86-64 only).
    Avx2,
    /// 128-bit NEON kernels (aarch64 only).
    Neon,
}

impl SimdLevel {
    /// Stable lowercase name (used in `--stats`, the manifest and logs).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// Numeric code for metric gauges (0 scalar, 1 avx2, 2 neon).
    pub fn code(self) -> u8 {
        match self {
            SimdLevel::Scalar => 0,
            SimdLevel::Avx2 => 1,
            SimdLevel::Neon => 2,
        }
    }

    fn from_code(code: u8) -> SimdLevel {
        match code {
            1 => SimdLevel::Avx2,
            2 => SimdLevel::Neon,
            _ => SimdLevel::Scalar,
        }
    }
}

/// The SIMD selection knob carried by configs and [`crate::ExecContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdKernel {
    /// Always run the portable scalar loops.
    Scalar,
    /// Use the best level the CPU supports (one-time runtime detection).
    #[default]
    Auto,
    /// Pin a specific level; degrades to `Scalar` if the CPU lacks it.
    Forced(SimdLevel),
}

/// Best [`SimdLevel`] this CPU supports. Feature detection runs once and
/// is cached for the process lifetime.
pub fn detect() -> SimdLevel {
    const UNSET: u8 = u8::MAX;
    static DETECTED: AtomicU8 = AtomicU8::new(UNSET);
    match DETECTED.load(Ordering::Relaxed) {
        UNSET => {
            let level = detect_uncached();
            // Racy first call recomputes the same value; store is idempotent.
            DETECTED.store(level.code(), Ordering::Relaxed);
            level
        }
        code => SimdLevel::from_code(code),
    }
}

fn detect_uncached() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("popcnt")
            && std::arch::is_x86_feature_detected!("bmi1")
        {
            return SimdLevel::Avx2;
        }
        SimdLevel::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is a baseline feature of every aarch64 target.
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// Resolves a knob setting to the level that will actually run: `Auto`
/// takes [`detect`], and a `Forced` level the CPU does not support
/// degrades to `Scalar` (results are identical either way — the knob
/// selects a code path, never an answer).
pub fn resolve(kernel: SimdKernel) -> SimdLevel {
    match kernel {
        SimdKernel::Scalar => SimdLevel::Scalar,
        // Auto follows the process default (`SLICELINE_SIMD` env or
        // runtime detection), so a config left at its default never
        // silently overrides an environment-forced level.
        SimdKernel::Auto => default_level(),
        SimdKernel::Forced(level) => {
            if level == SimdLevel::Scalar || level == detect() {
                level
            } else {
                SimdLevel::Scalar
            }
        }
    }
}

/// Parses a knob value (`scalar`, `auto`, `avx2`, `neon`) as spelled on
/// the CLI and in `SLICELINE_SIMD`.
pub fn parse_kernel(s: &str) -> Option<SimdKernel> {
    match s {
        "scalar" => Some(SimdKernel::Scalar),
        "auto" => Some(SimdKernel::Auto),
        "avx2" => Some(SimdKernel::Forced(SimdLevel::Avx2)),
        "neon" => Some(SimdKernel::Forced(SimdLevel::Neon)),
        _ => None,
    }
}

const DEFAULT_UNSET: u8 = u8::MAX;
static DEFAULT_LEVEL: AtomicU8 = AtomicU8::new(DEFAULT_UNSET);

/// Process-wide default level used by kernel entry points that have no
/// [`crate::ExecContext`] at hand. Initialised on first use from the
/// `SLICELINE_SIMD` environment variable (unknown values fall back to
/// `auto`); override with [`set_default`].
pub fn default_level() -> SimdLevel {
    match DEFAULT_LEVEL.load(Ordering::Relaxed) {
        DEFAULT_UNSET => {
            let kernel = std::env::var("SLICELINE_SIMD")
                .ok()
                .and_then(|v| parse_kernel(&v))
                .unwrap_or(SimdKernel::Auto);
            // `Auto` resolves via `detect()` directly here — `resolve`
            // routes `Auto` back to this function.
            let level = match kernel {
                SimdKernel::Auto => detect(),
                other => resolve(other),
            };
            DEFAULT_LEVEL.store(level.code(), Ordering::Relaxed);
            level
        }
        code => SimdLevel::from_code(code),
    }
}

/// Overrides the process-wide default (the CLI applies `--simd` here so
/// every path — including exec-less helpers — agrees with the flag).
pub fn set_default(kernel: SimdKernel) {
    DEFAULT_LEVEL.store(resolve(kernel).code(), Ordering::Relaxed);
}

/// Scalar bit-scan of one word: popcount into `size`, error sum/max into
/// `se`/`sm` in ascending row order. This is the one shared accumulator
/// every masked-stats variant (scalar and vector, single and fused) funnels
/// through, so the float association can never diverge between backends.
#[inline(always)]
pub(crate) fn scan_word(
    word: u64,
    row0: usize,
    errors: &[f64],
    size: &mut u64,
    se: &mut f64,
    sm: &mut f64,
) {
    if word == 0 {
        return;
    }
    *size += word.count_ones() as u64;
    let mut w = word;
    while w != 0 {
        let e = errors[row0 + w.trailing_zeros() as usize];
        *se += e;
        if e > *sm {
            *sm = e;
        }
        w &= w - 1;
    }
}

/// AVX2 implementations. All functions require the `avx2` (and where
/// noted `popcnt`/`bmi1`) CPU features; callers dispatch through
/// [`resolve`]/[`detect`] so the requirement is established before any
/// unsafe call.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::scan_word;
    use std::arch::x86_64::*;

    /// Words per 256-bit vector.
    pub const LANE_WORDS: usize = 4;

    /// `acc &= src`, four words per vector op.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_into(acc: &mut [u64], src: &[u64]) {
        debug_assert_eq!(acc.len(), src.len());
        let n = acc.len();
        let mut i = 0;
        unsafe {
            let a = acc.as_mut_ptr();
            let s = src.as_ptr();
            while i + LANE_WORDS <= n {
                let va = _mm256_loadu_si256(a.add(i) as *const __m256i);
                let vs = _mm256_loadu_si256(s.add(i) as *const __m256i);
                _mm256_storeu_si256(a.add(i) as *mut __m256i, _mm256_and_si256(va, vs));
                i += LANE_WORDS;
            }
        }
        while i < n {
            acc[i] &= src[i];
            i += 1;
        }
    }

    /// `dst = a & b`, four words per vector op. `dst` must be pre-sized
    /// to `a.len()`.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and2_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(dst.len(), a.len());
        let n = a.len();
        let mut i = 0;
        unsafe {
            let d = dst.as_mut_ptr();
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            while i + LANE_WORDS <= n {
                let va = _mm256_loadu_si256(pa.add(i) as *const __m256i);
                let vb = _mm256_loadu_si256(pb.add(i) as *const __m256i);
                _mm256_storeu_si256(d.add(i) as *mut __m256i, _mm256_and_si256(va, vb));
                i += LANE_WORDS;
            }
        }
        while i < n {
            dst[i] = a[i] & b[i];
            i += 1;
        }
    }

    /// Population count via the in-register nibble lookup (Mula's
    /// algorithm): each 256-bit vector is split into low/high nibbles,
    /// mapped through a 16-entry popcount table with `pshufb`, and the
    /// byte counts reduced with `psadbw` into four `u64` lanes.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn popcount(words: &[u64]) -> u64 {
        let n = words.len();
        let mut i = 0;
        let mut total: u64;
        unsafe {
            let p = words.as_ptr();
            #[rustfmt::skip]
            let lookup = _mm256_setr_epi8(
                0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            );
            let low_mask = _mm256_set1_epi8(0x0f);
            let zero = _mm256_setzero_si256();
            let mut acc = _mm256_setzero_si256();
            while i + LANE_WORDS <= n {
                let v = _mm256_loadu_si256(p.add(i) as *const __m256i);
                let lo = _mm256_and_si256(v, low_mask);
                let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
                let cnt = _mm256_add_epi8(
                    _mm256_shuffle_epi8(lookup, lo),
                    _mm256_shuffle_epi8(lookup, hi),
                );
                // Byte counts are ≤ 8, so the per-lane sums in `acc`
                // cannot overflow u64 at any realistic bitmap length.
                acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
                i += LANE_WORDS;
            }
            let mut lanes = [0u64; LANE_WORDS];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        }
        while i < n {
            total += words[i].count_ones() as u64;
            i += 1;
        }
        total
    }

    /// [`crate::bitmap::masked_stats`] body: vector zero-test skips
    /// all-empty 4-word blocks (one `vptest` instead of four load+branch
    /// pairs — the common case for selective slices), non-empty words fall
    /// into the shared scalar scan compiled with POPCNT/BMI1.
    ///
    /// # Safety
    /// Requires AVX2 + POPCNT + BMI1.
    #[target_feature(enable = "avx2,popcnt,bmi1")]
    pub unsafe fn masked_stats(words: &[u64], errors: &[f64], base_row: usize) -> (f64, f64, f64) {
        let n = words.len();
        let mut size = 0u64;
        let mut se = 0.0f64;
        let mut sm = 0.0f64;
        let mut i = 0;
        unsafe {
            let p = words.as_ptr();
            while i + LANE_WORDS <= n {
                let v = _mm256_loadu_si256(p.add(i) as *const __m256i);
                if _mm256_testz_si256(v, v) == 0 {
                    for j in i..i + LANE_WORDS {
                        scan_word(
                            *p.add(j),
                            base_row + j * 64,
                            errors,
                            &mut size,
                            &mut se,
                            &mut sm,
                        );
                    }
                }
                i += LANE_WORDS;
            }
        }
        while i < n {
            scan_word(
                words[i],
                base_row + i * 64,
                errors,
                &mut size,
                &mut se,
                &mut sm,
            );
            i += 1;
        }
        (size as f64, se, sm)
    }

    /// [`crate::bitmap::masked_stats_and2`] body: the conjunction happens
    /// in-register, empty 4-word blocks of the product are skipped with
    /// one zero test, and surviving words go through the shared scan.
    ///
    /// # Safety
    /// Requires AVX2 + POPCNT + BMI1.
    #[target_feature(enable = "avx2,popcnt,bmi1")]
    pub unsafe fn masked_stats_and2(a: &[u64], b: &[u64], errors: &[f64]) -> (f64, f64, f64) {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut size = 0u64;
        let mut se = 0.0f64;
        let mut sm = 0.0f64;
        let mut i = 0;
        unsafe {
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            while i + LANE_WORDS <= n {
                let va = _mm256_loadu_si256(pa.add(i) as *const __m256i);
                let vb = _mm256_loadu_si256(pb.add(i) as *const __m256i);
                let v = _mm256_and_si256(va, vb);
                if _mm256_testz_si256(v, v) == 0 {
                    let mut quad = [0u64; LANE_WORDS];
                    _mm256_storeu_si256(quad.as_mut_ptr() as *mut __m256i, v);
                    for (j, &w) in quad.iter().enumerate() {
                        scan_word(w, (i + j) * 64, errors, &mut size, &mut se, &mut sm);
                    }
                }
                i += LANE_WORDS;
            }
        }
        while i < n {
            scan_word(a[i] & b[i], i * 64, errors, &mut size, &mut se, &mut sm);
            i += 1;
        }
        (size as f64, se, sm)
    }
}

/// NEON implementations (aarch64). NEON is baseline on aarch64, so these
/// compile unconditionally for that target; the masked-stats kernels stay
/// scalar there (the 128-bit zero-test buys little over the scalar
/// word-skip).
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon {
    use std::arch::aarch64::*;

    /// Words per 128-bit vector.
    pub const LANE_WORDS: usize = 2;

    /// `acc &= src`, two words per vector op.
    ///
    /// # Safety
    /// Requires NEON (baseline on aarch64).
    #[target_feature(enable = "neon")]
    pub unsafe fn and_into(acc: &mut [u64], src: &[u64]) {
        debug_assert_eq!(acc.len(), src.len());
        let n = acc.len();
        let mut i = 0;
        unsafe {
            let a = acc.as_mut_ptr();
            let s = src.as_ptr();
            while i + LANE_WORDS <= n {
                let va = vld1q_u64(a.add(i));
                let vs = vld1q_u64(s.add(i));
                vst1q_u64(a.add(i), vandq_u64(va, vs));
                i += LANE_WORDS;
            }
        }
        while i < n {
            acc[i] &= src[i];
            i += 1;
        }
    }

    /// `dst = a & b`, two words per vector op. `dst` must be pre-sized.
    ///
    /// # Safety
    /// Requires NEON (baseline on aarch64).
    #[target_feature(enable = "neon")]
    pub unsafe fn and2_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(dst.len(), a.len());
        let n = a.len();
        let mut i = 0;
        unsafe {
            let d = dst.as_mut_ptr();
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            while i + LANE_WORDS <= n {
                let va = vld1q_u64(pa.add(i));
                let vb = vld1q_u64(pb.add(i));
                vst1q_u64(d.add(i), vandq_u64(va, vb));
                i += LANE_WORDS;
            }
        }
        while i < n {
            dst[i] = a[i] & b[i];
            i += 1;
        }
    }

    /// Population count via `vcnt` (byte popcounts) and a pairwise-add
    /// widening reduction.
    ///
    /// # Safety
    /// Requires NEON (baseline on aarch64).
    #[target_feature(enable = "neon")]
    pub unsafe fn popcount(words: &[u64]) -> u64 {
        let n = words.len();
        let mut i = 0;
        let mut total = 0u64;
        unsafe {
            let p = words.as_ptr();
            while i + LANE_WORDS <= n {
                let v = vld1q_u64(p.add(i));
                let bytes = vcntq_u8(vreinterpretq_u8_u64(v));
                let sums = vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes)));
                total += vaddvq_u64(sums);
                i += LANE_WORDS;
            }
        }
        while i < n {
            total += words[i].count_ones() as u64;
            i += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_resolves() {
        let d = detect();
        assert_eq!(detect(), d);
        assert_eq!(resolve(SimdKernel::Auto), d);
        assert_eq!(resolve(SimdKernel::Scalar), SimdLevel::Scalar);
        // Forcing the detected level keeps it; forcing an unsupported
        // one degrades to scalar.
        assert_eq!(resolve(SimdKernel::Forced(d)), d);
        for forced in [SimdLevel::Avx2, SimdLevel::Neon] {
            let r = resolve(SimdKernel::Forced(forced));
            assert!(r == forced && forced == d || r == SimdLevel::Scalar);
        }
    }

    #[test]
    fn kernel_names_parse_round_trip() {
        for (s, k) in [
            ("scalar", SimdKernel::Scalar),
            ("auto", SimdKernel::Auto),
            ("avx2", SimdKernel::Forced(SimdLevel::Avx2)),
            ("neon", SimdKernel::Forced(SimdLevel::Neon)),
        ] {
            assert_eq!(parse_kernel(s), Some(k));
        }
        assert_eq!(parse_kernel("sse9"), None);
        for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Neon] {
            assert_eq!(SimdLevel::from_code(level.code()), level);
        }
    }
}
