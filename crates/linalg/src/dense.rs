//! Row-major dense `f64` matrices.
//!
//! [`DenseMatrix`] is the workhorse for the ML substrate (normal equations,
//! logistic gradients), for small intermediates of the SliceLine algorithm
//! (slice statistics `R`), and as a readable reference implementation that
//! the sparse kernels are property-tested against.

use crate::context::ExecContext;
use crate::error::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// Invariant: `data.len() == rows * cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// Returns [`LinalgError::InvalidData`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidData {
                reason: format!(
                    "expected {} elements for a {}x{} matrix, got {}",
                    rows * cols,
                    rows,
                    cols,
                    data.len()
                ),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(LinalgError::InvalidData {
                    reason: format!("row {i} has length {}, expected {ncols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a column vector (n×1) from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        DenseMatrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access (panics on out-of-bounds in debug builds only via
    /// slice indexing; use [`DenseMatrix::try_get`] for checked access).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Checked element access.
    pub fn try_get(&self, r: usize, c: usize) -> Result<f64> {
        if r >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                op: "get",
                index: r,
                bound: self.rows,
            });
        }
        if c >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                op: "get",
                index: c,
                bound: self.cols,
            });
        }
        Ok(self.get(r, c))
    }

    /// Sets element `(r, c)` to `v`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Dense matrix multiplication `self * rhs` (single-threaded, ikj loop
    /// order for cache-friendly access).
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Parallel dense matrix multiplication, splitting the output rows
    /// across the execution context's threads.
    pub fn matmul_parallel(&self, rhs: &DenseMatrix, exec: &ExecContext) -> Result<DenseMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_parallel",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let _span = exec
            .tracer()
            .span("dense.matmul", "linalg")
            .arg("rows", self.rows)
            .arg("inner", self.cols)
            .arg("cols", rhs.cols);
        let out_cols = rhs.cols;
        let mut out = DenseMatrix::zeros(self.rows, out_cols);
        let lhs = self;
        exec.parallel()
            .run_on_chunks(&mut out.data, out_cols, |row0, chunk| {
                let nrows = chunk.len() / out_cols;
                for i in 0..nrows {
                    let arow = lhs.row(row0 + i);
                    let orow = &mut chunk[i * out_cols..(i + 1) * out_cols];
                    for (k, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let brow = &rhs.data[k * out_cols..(k + 1) * out_cols];
                        for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                            *o += a * b;
                        }
                    }
                }
            });
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Vector–matrix product `v * self` (v is treated as a 1×rows row
    /// vector), returning a vector of length `cols`.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &scale) in v.iter().enumerate() {
            if scale == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (o, &x) in out.iter_mut().zip(row.iter()) {
                *o += scale * x;
            }
        }
        Ok(out)
    }

    /// Element-wise map, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise binary operation against another matrix of the same
    /// shape.
    pub fn zip_with(&self, rhs: &DenseMatrix, f: impl Fn(f64, f64) -> f64) -> Result<DenseMatrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "zip_with",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f64) -> DenseMatrix {
        self.map(|x| x * s)
    }

    /// Stacks two matrices vertically (`rbind` in R terms).
    pub fn rbind(&self, bottom: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != bottom.cols && self.rows != 0 && bottom.rows != 0 {
            return Err(LinalgError::ShapeMismatch {
                op: "rbind",
                lhs: self.shape(),
                rhs: bottom.shape(),
            });
        }
        let cols = if self.rows == 0 {
            bottom.cols
        } else {
            self.cols
        };
        let mut data = Vec::with_capacity((self.rows + bottom.rows) * cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&bottom.data);
        Ok(DenseMatrix {
            rows: self.rows + bottom.rows,
            cols,
            data,
        })
    }

    /// Concatenates two matrices horizontally (`cbind` in R terms).
    pub fn cbind(&self, right: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != right.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "cbind",
                lhs: self.shape(),
                rhs: right.shape(),
            });
        }
        let cols = self.cols + right.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(right.row(r));
        }
        Ok(DenseMatrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Selects the given rows (in order, duplicates allowed) into a new
    /// matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Result<DenseMatrix> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            if r >= self.rows {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "select_rows",
                    index: r,
                    bound: self.rows,
                });
            }
            data.extend_from_slice(self.row(r));
        }
        Ok(DenseMatrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Selects the given columns (in order) into a new matrix.
    pub fn select_cols(&self, indices: &[usize]) -> Result<DenseMatrix> {
        for &c in indices {
            if c >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "select_cols",
                    index: c,
                    bound: self.cols,
                });
            }
        }
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in indices {
                data.push(row[c]);
            }
        }
        Ok(DenseMatrix {
            rows: self.rows,
            cols: indices.len(),
            data,
        })
    }

    /// Removes rows whose entries are all zero (`removeEmpty(margin="rows")`).
    /// Returns the compacted matrix and the original indexes of kept rows.
    pub fn remove_empty_rows(&self) -> (DenseMatrix, Vec<usize>) {
        let kept: Vec<usize> = (0..self.rows)
            .filter(|&r| self.row(r).iter().any(|&x| x != 0.0))
            .collect();
        let m = self
            .select_rows(&kept)
            .expect("indices from own row range are valid");
        (m, kept)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Number of structurally non-zero entries (exact zero test).
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// `true` if all pairwise element differences are within `tol`.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> DenseMatrix {
        DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(1, 0, 7.5);
        assert_eq!(m.get(1, 0), 7.5);
        assert_eq!(m.try_get(1, 0).unwrap(), 7.5);
        assert!(m.try_get(2, 0).is_err());
        assert!(m.try_get(0, 2).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = m2x3();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = m2x3();
        let i3 = DenseMatrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = m2x3();
        assert!(a.matmul(&m2x3()).is_err());
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let a = DenseMatrix::from_vec(4, 3, (0..12).map(|x| x as f64).collect()).unwrap();
        let b = DenseMatrix::from_vec(3, 5, (0..15).map(|x| (x * 2) as f64).collect()).unwrap();
        let serial = a.matmul(&b).unwrap();
        let exec = ExecContext::new(3);
        let parallel = a.matmul_parallel(&b, &exec).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = m2x3();
        assert_eq!(m.matvec(&[1.0, 0.0, 1.0]).unwrap(), vec![4.0, 10.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.vecmat(&[1.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = DenseMatrix::filled(2, 2, 3.0);
        let b = DenseMatrix::filled(2, 2, 2.0);
        assert_eq!(a.add(&b).unwrap(), DenseMatrix::filled(2, 2, 5.0));
        assert_eq!(a.sub(&b).unwrap(), DenseMatrix::filled(2, 2, 1.0));
        assert_eq!(a.hadamard(&b).unwrap(), DenseMatrix::filled(2, 2, 6.0));
        assert_eq!(a.scale(2.0), DenseMatrix::filled(2, 2, 6.0));
        assert!(a.add(&DenseMatrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn rbind_cbind() {
        let a = DenseMatrix::filled(1, 2, 1.0);
        let b = DenseMatrix::filled(2, 2, 2.0);
        let v = a.rbind(&b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.get(2, 1), 2.0);
        let c = DenseMatrix::filled(1, 3, 3.0);
        let h = a.cbind(&c).unwrap();
        assert_eq!(h.shape(), (1, 5));
        assert_eq!(h.get(0, 4), 3.0);
        assert!(a.cbind(&b).is_err());
    }

    #[test]
    fn rbind_with_empty() {
        let empty = DenseMatrix::zeros(0, 0);
        let b = DenseMatrix::filled(2, 2, 2.0);
        let v = empty.rbind(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
    }

    #[test]
    fn select_rows_cols() {
        let m = m2x3();
        let r = m.select_rows(&[1, 0, 1]).unwrap();
        assert_eq!(r.shape(), (3, 3));
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        let c = m.select_cols(&[2, 0]).unwrap();
        assert_eq!(c.row(0), &[3.0, 1.0]);
        assert!(m.select_rows(&[5]).is_err());
        assert!(m.select_cols(&[5]).is_err());
    }

    #[test]
    fn remove_empty_rows_keeps_indices() {
        let m = DenseMatrix::from_vec(3, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0]).unwrap();
        let (out, kept) = m.remove_empty_rows();
        assert_eq!(kept, vec![1]);
        assert_eq!(out.shape(), (1, 2));
        assert_eq!(out.get(0, 0), 1.0);
    }

    #[test]
    fn norms_and_counts() {
        let m = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.count_nonzero(), 2);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = DenseMatrix::filled(2, 2, 1.0);
        let b = DenseMatrix::filled(2, 2, 1.0 + 1e-9);
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&DenseMatrix::zeros(1, 1), 1.0));
    }
}
