//! Compressed sparse row (CSR) matrices.
//!
//! The one-hot encoded feature matrix `X` (n × l, exactly m ones per row)
//! and the slice matrix `S` (#slices × l, exactly L ones per row) of the
//! SliceLine paper are both extremely sparse 0/1 matrices; CSR with sorted
//! column indexes per row is the natural representation and enables the
//! merge-based kernels in [`crate::spgemm`].

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};

/// A compressed sparse row matrix of `f64` values.
///
/// Invariants:
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == col_idx.len() == values.len()`,
/// * `row_ptr` is non-decreasing,
/// * column indexes within each row are strictly increasing and `< cols`,
/// * stored values may be zero only transiently; constructors drop exact
///   zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Duplicate (row, col) pairs are summed; exact zeros (including sums
    /// cancelling to zero) are dropped. Triplets may be in any order.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "from_triplets",
                    index: r,
                    bound: rows,
                });
            }
            if c >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "from_triplets",
                    index: c,
                    bound: cols,
                });
            }
        }
        // Count entries per row, then bucket-sort triplets by row.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut order = vec![0usize; triplets.len()];
        {
            let mut next = counts.clone();
            for (i, &(r, _, _)) in triplets.iter().enumerate() {
                order[next[r]] = i;
                next[r] += 1;
            }
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        let mut col_idx: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            for &i in &order[counts[r]..counts[r + 1]] {
                let (_, c, v) = triplets[i];
                scratch.push((c as u32, v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            // Sum duplicates and drop zeros.
            let mut j = 0;
            while j < scratch.len() {
                let c = scratch[j].0;
                let mut v = 0.0;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a *binary* CSR matrix (all stored values are 1.0) from one
    /// sorted column list per row. This is the fast path for one-hot
    /// matrices where each row's nonzero pattern is already known.
    ///
    /// Returns an error if any row list is unsorted, has duplicates, or
    /// references a column `>= cols`.
    ///
    /// Accepts any slice of column lists (`&[Vec<u32>]`, `&[&[u32]]`, …)
    /// so callers can build from borrowed rows without cloning.
    pub fn from_binary_rows<R: AsRef<[u32]>>(cols: usize, rows: &[R]) -> Result<Self> {
        let nnz: usize = rows.iter().map(|r| r.as_ref().len()).sum();
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::with_capacity(nnz);
        for (i, r) in rows.iter().enumerate() {
            let r = r.as_ref();
            for w in r.windows(2) {
                if w[0] >= w[1] {
                    return Err(LinalgError::InvalidData {
                        reason: format!("row {i} columns not strictly increasing"),
                    });
                }
            }
            if let Some(&last) = r.last() {
                if last as usize >= cols {
                    return Err(LinalgError::IndexOutOfBounds {
                        op: "from_binary_rows",
                        index: last as usize,
                        bound: cols,
                    });
                }
            }
            col_idx.extend_from_slice(r);
            row_ptr.push(col_idx.len());
        }
        let values = vec![1.0; col_idx.len()];
        Ok(CsrMatrix {
            rows: rows.len(),
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds from raw CSR parts, validating all invariants.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(LinalgError::InvalidData {
                reason: format!("row_ptr length {} != rows+1 = {}", row_ptr.len(), rows + 1),
            });
        }
        if row_ptr[0] != 0 || *row_ptr.last().unwrap() != col_idx.len() {
            return Err(LinalgError::InvalidData {
                reason: "row_ptr must start at 0 and end at nnz".to_string(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(LinalgError::InvalidData {
                reason: "col_idx and values length mismatch".to_string(),
            });
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(LinalgError::InvalidData {
                    reason: "row_ptr not non-decreasing".to_string(),
                });
            }
        }
        for r in 0..rows {
            let seg = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in seg.windows(2) {
                if w[0] >= w[1] {
                    return Err(LinalgError::InvalidData {
                        reason: format!("row {r} columns not strictly increasing"),
                    });
                }
            }
            if let Some(&last) = seg.last() {
                if last as usize >= cols {
                    return Err(LinalgError::IndexOutOfBounds {
                        op: "from_raw_parts",
                        index: last as usize,
                        bound: cols,
                    });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix into CSR, dropping exact zeros.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let row = out.row_mut(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                row[c as usize] = v;
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of non-zero entries, `nnz / (rows*cols)`; 0 for degenerate
    /// shapes.
    pub fn density(&self) -> f64 {
        let cells = self.rows as f64 * self.cols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Borrow the column indexes and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Borrow only the sorted column indexes of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Number of non-zeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// The raw `row_ptr` array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column index array.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw values array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Element access by binary search within the row. O(log nnz(row)).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// `true` if every stored value equals 1.0 (one-hot / indicator
    /// matrices).
    pub fn is_binary(&self) -> bool {
        self.values.iter().all(|&v| v == 1.0)
    }

    /// Returns the transpose as a new CSR matrix (a CSC view materialized
    /// row-wise), using a counting pass — O(nnz + rows + cols).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let pos = next[c as usize];
                col_idx[pos] = r as u32;
                values[pos] = v;
                next[c as usize] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Selects the given rows (in order, duplicates allowed).
    pub fn select_rows(&self, indices: &[usize]) -> Result<CsrMatrix> {
        let mut row_ptr = Vec::with_capacity(indices.len() + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for &r in indices {
            if r >= self.rows {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "select_rows",
                    index: r,
                    bound: self.rows,
                });
            }
            let (cols, vals) = self.row(r);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows: indices.len(),
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Keeps only the given columns (which must be strictly increasing) and
    /// renumbers them to `0..indices.len()`. This implements the paper's
    /// `X ← X[, cI]` projection onto surviving basic-slice columns.
    pub fn select_cols(&self, indices: &[usize]) -> Result<CsrMatrix> {
        for w in indices.windows(2) {
            if w[0] >= w[1] {
                return Err(LinalgError::InvalidData {
                    reason: "select_cols indices must be strictly increasing".to_string(),
                });
            }
        }
        if let Some(&last) = indices.last() {
            if last >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "select_cols",
                    index: last,
                    bound: self.cols,
                });
            }
        }
        // Old column -> new column mapping; u32::MAX marks dropped columns.
        let mut remap = vec![u32::MAX; self.cols];
        for (new, &old) in indices.iter().enumerate() {
            remap[old] = new as u32;
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let nc = remap[c as usize];
                if nc != u32::MAX {
                    col_idx.push(nc);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows: self.rows,
            cols: indices.len(),
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Fused row + column gather into a compacted index space, the paper's
    /// `removeEmpty`-style dynamic input reduction: keeps `rows` (in order,
    /// duplicates allowed) and the strictly increasing `cols` (renumbered to
    /// `0..cols.len()`) in a single pass. The `col_idx`/`values` arrays come
    /// from the [`ExecContext`] scratch pool, so level-wise compaction does
    /// not allocate after warm-up; pair with [`CsrMatrix::recycle`].
    pub fn select_rows_cols(
        &self,
        rows: &[usize],
        cols: &[usize],
        exec: &crate::context::ExecContext,
    ) -> Result<CsrMatrix> {
        for w in cols.windows(2) {
            if w[0] >= w[1] {
                return Err(LinalgError::InvalidData {
                    reason: "select_rows_cols cols must be strictly increasing".to_string(),
                });
            }
        }
        if let Some(&last) = cols.last() {
            if last >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "select_rows_cols",
                    index: last,
                    bound: self.cols,
                });
            }
        }
        // Old column -> new column + 1; 0 marks dropped columns. The +1
        // encoding lets us use the zero-filled pooled buffer directly.
        let mut remap = exec.take_u32(self.cols);
        for (new, &old) in cols.iter().enumerate() {
            remap[old] = new as u32 + 1;
        }
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0);
        let mut col_idx = exec.take_u32(0);
        let mut values = exec.take_f64(0);
        for &r in rows {
            if r >= self.rows {
                exec.put_u32(remap);
                exec.put_u32(col_idx);
                exec.put_f64(values);
                return Err(LinalgError::IndexOutOfBounds {
                    op: "select_rows_cols",
                    index: r,
                    bound: self.rows,
                });
            }
            let (rcols, rvals) = self.row(r);
            for (&c, &v) in rcols.iter().zip(rvals.iter()) {
                let nc = remap[c as usize];
                if nc != 0 {
                    col_idx.push(nc - 1);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        exec.put_u32(remap);
        Ok(CsrMatrix {
            rows: rows.len(),
            cols: cols.len(),
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Returns the matrix's pooled arrays to the [`ExecContext`] scratch
    /// pool. Call on matrices produced by [`CsrMatrix::select_rows_cols`]
    /// (or any matrix being retired) before building the next level's input.
    pub fn recycle(self, exec: &crate::context::ExecContext) {
        exec.put_u32(self.col_idx);
        exec.put_f64(self.values);
    }

    /// Writes the matrix to `w` in the out-of-core spill format: a
    /// little-endian `[rows, cols, nnz]` u64 header, then `row_ptr` as
    /// u64s, `col_idx` as u32s, and `values` as f64 bit patterns. Records
    /// are self-delimiting, so consecutive chunks can be appended to one
    /// spill file and read back with [`CsrMatrix::read_binary`].
    pub fn write_binary<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        let header = [self.rows as u64, self.cols as u64, self.nnz() as u64];
        for v in header {
            w.write_all(&v.to_le_bytes())?;
        }
        for &p in &self.row_ptr {
            w.write_all(&(p as u64).to_le_bytes())?;
        }
        for &c in &self.col_idx {
            w.write_all(&c.to_le_bytes())?;
        }
        for &v in &self.values {
            w.write_all(&v.to_bits().to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads one matrix written by [`CsrMatrix::write_binary`] from `r`.
    /// Returns `Ok(None)` on clean end-of-stream (no header bytes left)
    /// and an error on a truncated or malformed record.
    pub fn read_binary<R: std::io::Read>(r: &mut R) -> std::io::Result<Option<CsrMatrix>> {
        let mut head = [0u8; 24];
        // Distinguish clean EOF (zero header bytes) from truncation.
        let mut filled = 0usize;
        while filled < head.len() {
            let n = r.read(&mut head[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated CSR spill header",
                ));
            }
            filled += n;
        }
        let word = |i: usize| u64::from_le_bytes(head[i * 8..(i + 1) * 8].try_into().unwrap());
        let (rows, cols, nnz) = (word(0) as usize, word(1) as usize, word(2) as usize);
        let mut buf = vec![0u8; (rows + 1) * 8];
        r.read_exact(&mut buf)?;
        let row_ptr: Vec<usize> = buf
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()) as usize)
            .collect();
        let mut buf = vec![0u8; nnz * 4];
        r.read_exact(&mut buf)?;
        let col_idx: Vec<u32> = buf
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        let mut buf = vec![0u8; nnz * 8];
        r.read_exact(&mut buf)?;
        let values: Vec<f64> = buf
            .chunks_exact(8)
            .map(|b| f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
            .collect();
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&nnz) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed CSR spill record",
            ));
        }
        Ok(Some(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }))
    }

    /// Removes rows with no stored entries (`removeEmpty(margin="rows")`),
    /// returning the compacted matrix and the kept original row indexes.
    pub fn remove_empty_rows(&self) -> (CsrMatrix, Vec<usize>) {
        let kept: Vec<usize> = (0..self.rows).filter(|&r| self.row_nnz(r) > 0).collect();
        let m = self
            .select_rows(&kept)
            .expect("indices from own row range are valid");
        (m, kept)
    }

    /// Vertically stacks two CSR matrices (`rbind`).
    pub fn rbind(&self, bottom: &CsrMatrix) -> Result<CsrMatrix> {
        if self.cols != bottom.cols && self.rows != 0 && bottom.rows != 0 {
            return Err(LinalgError::ShapeMismatch {
                op: "rbind",
                lhs: self.shape(),
                rhs: bottom.shape(),
            });
        }
        let cols = if self.rows == 0 {
            bottom.cols
        } else {
            self.cols
        };
        let mut row_ptr = self.row_ptr.clone();
        let offset = self.nnz();
        row_ptr.extend(bottom.row_ptr.iter().skip(1).map(|&p| p + offset));
        let mut col_idx = self.col_idx.clone();
        col_idx.extend_from_slice(&bottom.col_idx);
        let mut values = self.values.clone();
        values.extend_from_slice(&bottom.values);
        Ok(CsrMatrix {
            rows: self.rows + bottom.rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Sparse-matrix × dense-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &x) in cols.iter().zip(vals.iter()) {
                acc += x * v[c as usize];
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Row-vector × sparse-matrix product `vᵀ * self`, the paper's
    /// `(eᵀ ⊙ X)ᵀ` kernel (Eq. 4): joins each row with its error and sums
    /// per column. Returns a vector of length `cols`.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &scale) in v.iter().enumerate() {
            if scale == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (&c, &x) in cols.iter().zip(vals.iter()) {
                out[c as usize] += scale * x;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
            .unwrap()
    }

    #[test]
    fn binary_spill_roundtrip_multiple_records() {
        let a = sample();
        let b = CsrMatrix::zeros(2, 3);
        let mut buf = Vec::new();
        a.write_binary(&mut buf).unwrap();
        b.write_binary(&mut buf).unwrap();
        let mut r = std::io::Cursor::new(&buf);
        assert_eq!(CsrMatrix::read_binary(&mut r).unwrap().unwrap(), a);
        assert_eq!(CsrMatrix::read_binary(&mut r).unwrap().unwrap(), b);
        assert!(CsrMatrix::read_binary(&mut r).unwrap().is_none());
        // Truncated stream is an error, not a silent None.
        let mut r = std::io::Cursor::new(&buf[..buf.len() - 3]);
        CsrMatrix::read_binary(&mut r).unwrap().unwrap();
        assert!(CsrMatrix::read_binary(&mut r).is_err());
    }

    #[test]
    fn triplets_roundtrip_dense() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(CsrMatrix::from_dense(&d), m);
    }

    #[test]
    fn triplets_sum_duplicates_and_drop_zero() {
        let m =
            CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 0, 2.0), (0, 1, 1.0), (0, 1, -1.0)])
                .unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn triplets_bounds_checked() {
        assert!(CsrMatrix::from_triplets(1, 1, &[(1, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(1, 1, &[(0, 1, 1.0)]).is_err());
    }

    #[test]
    fn binary_rows_constructor() {
        let m = CsrMatrix::from_binary_rows(5, &[vec![0, 3], vec![], vec![1, 2, 4]]).unwrap();
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.nnz(), 5);
        assert!(m.is_binary());
        assert_eq!(m.row_cols(2), &[1, 2, 4]);
        assert!(CsrMatrix::from_binary_rows(5, &[vec![3, 0]]).is_err());
        assert!(CsrMatrix::from_binary_rows(5, &[vec![1, 1]]).is_err());
        assert!(CsrMatrix::from_binary_rows(5, &[vec![5]]).is_err());
    }

    #[test]
    fn from_raw_parts_validation() {
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![0], vec![1.0]).is_ok());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![0], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![2], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0; 2]).is_err());
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.to_dense(), m.to_dense().transpose());
        // Double transpose is identity.
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn get_binary_search() {
        let m = sample();
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn select_rows_works() {
        let m = sample();
        let s = m.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.row_cols(0), &[0, 1]);
        assert_eq!(s.row_cols(1), &[0, 2]);
        assert!(m.select_rows(&[3]).is_err());
    }

    #[test]
    fn select_cols_renumbers() {
        let m = sample();
        let s = m.select_cols(&[0, 2]).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(2, 0), 3.0);
        assert_eq!(s.get(2, 1), 0.0);
        assert!(m.select_cols(&[2, 0]).is_err());
        assert!(m.select_cols(&[0, 7]).is_err());
    }

    #[test]
    fn select_rows_cols_matches_two_step() {
        use crate::context::ExecContext;
        let m = sample();
        let exec = ExecContext::serial();
        let fused = m.select_rows_cols(&[2, 0], &[0, 2], &exec).unwrap();
        let two_step = m
            .select_rows(&[2, 0])
            .unwrap()
            .select_cols(&[0, 2])
            .unwrap();
        assert_eq!(fused, two_step);
        assert!(m.select_rows_cols(&[3], &[0], &exec).is_err());
        assert!(m.select_rows_cols(&[0], &[2, 0], &exec).is_err());
        assert!(m.select_rows_cols(&[0], &[7], &exec).is_err());
        // Recycling returns the pooled arrays.
        fused.recycle(&exec);
        let again = m.select_rows_cols(&[0], &[0, 1, 2], &exec).unwrap();
        assert_eq!(again.row_cols(0), m.row_cols(0));
    }

    #[test]
    fn remove_empty_rows_compacts() {
        let m = sample();
        let (out, kept) = m.remove_empty_rows();
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(out.rows(), 2);
        assert_eq!(out.get(1, 1), 4.0);
    }

    #[test]
    fn rbind_stacks() {
        let a = sample();
        let b = CsrMatrix::from_triplets(1, 3, &[(0, 1, 9.0)]).unwrap();
        let v = a.rbind(&b).unwrap();
        assert_eq!(v.rows(), 4);
        assert_eq!(v.get(3, 1), 9.0);
        let empty = CsrMatrix::zeros(0, 0);
        assert_eq!(empty.rbind(&a).unwrap().rows(), 3);
    }

    #[test]
    fn matvec_vecmat() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0, 1.0]).unwrap(), vec![4.0, 4.0, 2.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.vecmat(&[1.0]).is_err());
    }

    #[test]
    fn density_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(CsrMatrix::zeros(0, 0).density(), 0.0);
    }
}
