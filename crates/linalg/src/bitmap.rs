//! Packed `u64` bitmaps for slice evaluation.
//!
//! The one-hot matrix `X` is binary, so the paper's evaluation product
//! `X Sᵀ` (Eq. 10) degenerates to set intersection: a row belongs to a
//! level-`L` slice iff it has a 1 in all `L` of the slice's columns. A
//! [`BitMatrix`] stores each column of `X` as a packed bitmap of `n` bits
//! (one `u64` word per 64 rows), turning the membership test into a chain
//! of word-wise `AND`s, slice sizes into `popcount`, and the error
//! aggregates `se`/`sm` into a masked scan of the error vector — roughly
//! 64× less memory traffic than the sparse-float kernels and no
//! per-element branching.
//!
//! The module provides the storage type plus the three word-chunked
//! kernels the evaluation engine in `core` is built from:
//!
//! * [`BitMatrix::and_cols_into`] / [`BitMatrix::and_cols_into_parallel`]
//!   — `AND`-reduce a set of column bitmaps into a slice bitmap,
//! * [`popcount`] — slice sizes,
//! * [`masked_stats`] / [`masked_stats_parallel`] — `(|S|, se, sm)` from a
//!   slice bitmap and the row error vector.
//!
//! Parallel variants draw their fan-out from an [`ExecContext`] and chunk
//! over *words*, so 64 rows is the smallest unit of work and partial
//! results merge without any per-row synchronization.

use crate::context::ExecContext;
use crate::csr::CsrMatrix;

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// A binary matrix stored as packed per-column `u64` bitmaps
/// (column-major: column `c` owns the contiguous word range
/// `c * words_per_col .. (c + 1) * words_per_col`).
///
/// Trailing bits past `rows` in the last word of every column are always
/// zero, so `AND` chains and popcounts never need a tail mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_col: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Packs the non-zero pattern of `x` (values are ignored; `x` is
    /// expected to be binary) into per-column bitmaps.
    pub fn from_csr(x: &CsrMatrix) -> Self {
        let rows = x.rows();
        let cols = x.cols();
        let words_per_col = rows.div_ceil(WORD_BITS).max(1);
        let mut words = vec![0u64; words_per_col * cols];
        for r in 0..rows {
            let word = r / WORD_BITS;
            let bit = 1u64 << (r % WORD_BITS);
            for &c in x.row_cols(r) {
                words[c as usize * words_per_col + word] |= bit;
            }
        }
        BitMatrix {
            rows,
            cols,
            words_per_col,
            words,
        }
    }

    /// Number of rows (bits per column).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bitmaps).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words per column bitmap (`ceil(rows / 64)`, at least 1).
    pub fn words_per_col(&self) -> usize {
        self.words_per_col
    }

    /// Total packed size in bytes (the broadcast/storage cost).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The packed bitmap of column `c`.
    pub fn col(&self, c: usize) -> &[u64] {
        &self.words[c * self.words_per_col..(c + 1) * self.words_per_col]
    }

    /// `AND`-reduces the column bitmaps named by `cols` into `out`
    /// (resized to [`Self::words_per_col`]). An empty `cols` yields the
    /// all-rows bitmap — every row matches zero predicates.
    pub fn and_cols_into(&self, cols: &[u32], out: &mut Vec<u64>) {
        out.clear();
        match cols.split_first() {
            None => {
                out.resize(self.words_per_col, u64::MAX);
                mask_tail(out, self.rows);
            }
            Some((&first, rest)) => {
                out.extend_from_slice(self.col(first as usize));
                for &c in rest {
                    and_into(out, self.col(c as usize));
                }
            }
        }
    }

    /// Word-chunked parallel [`Self::and_cols_into`]: the word range is
    /// split across the context's threads and each worker `AND`s its
    /// chunk through all columns (better cache behaviour than one pass
    /// per column when bitmaps exceed the last-level cache).
    pub fn and_cols_into_parallel(&self, cols: &[u32], out: &mut Vec<u64>, exec: &ExecContext) {
        if exec.threads() <= 1 || self.words_per_col < 2 * WORD_BITS {
            return self.and_cols_into(cols, out);
        }
        let Some((&first, rest)) = cols.split_first() else {
            return self.and_cols_into(cols, out);
        };
        out.clear();
        out.resize(self.words_per_col, 0);
        let bits = self;
        exec.parallel().run_on_chunks(out, 1, |word0, chunk| {
            let lo = word0;
            let hi = word0 + chunk.len();
            chunk.copy_from_slice(&bits.col(first as usize)[lo..hi]);
            for &c in rest {
                and_into(chunk, &bits.col(c as usize)[lo..hi]);
            }
        });
    }
}

/// Zeroes all bits at positions `>= rows` (call after filling with ones).
fn mask_tail(words: &mut [u64], rows: usize) {
    let full = rows / WORD_BITS;
    if full < words.len() {
        let rem = rows % WORD_BITS;
        words[full] &= if rem == 0 {
            0
        } else {
            u64::MAX >> (WORD_BITS - rem)
        };
        for w in &mut words[full + 1..] {
            *w = 0;
        }
    }
}

/// In-place word-wise `acc &= src`.
pub fn and_into(acc: &mut [u64], src: &[u64]) {
    debug_assert_eq!(acc.len(), src.len());
    for (a, &s) in acc.iter_mut().zip(src.iter()) {
        *a &= s;
    }
}

/// Word-wise `dst = a & b` in a single pass — the incremental
/// child-from-parent step (cached parent bitmap `AND` one new column)
/// without a separate copy pass.
pub fn and2_into(dst: &mut Vec<u64>, a: &[u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    dst.clear();
    dst.extend(a.iter().zip(b.iter()).map(|(&x, &y)| x & y));
}

/// Total set bits (the slice size `|S|`).
pub fn popcount(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

/// Masked error aggregation: `(|S|, se, sm)` — set-bit count, sum and max
/// of `errors` over the rows selected by the bitmap.
///
/// Accumulates in ascending row order, matching the serial scan order of
/// the blocked and fused kernels so sums agree bit-for-bit with them on a
/// single thread.
pub fn masked_stats(words: &[u64], errors: &[f64]) -> (f64, f64, f64) {
    masked_stats_offset(words, errors, 0)
}

/// [`masked_stats`] for a word sub-range whose first word covers row
/// `base_row` (`base_row` must be a multiple of 64).
fn masked_stats_offset(words: &[u64], errors: &[f64], base_row: usize) -> (f64, f64, f64) {
    let mut size = 0u64;
    let mut se = 0.0f64;
    let mut sm = 0.0f64;
    for (wi, &word) in words.iter().enumerate() {
        if word == 0 {
            continue;
        }
        size += word.count_ones() as u64;
        let row0 = base_row + wi * WORD_BITS;
        let mut w = word;
        while w != 0 {
            let e = errors[row0 + w.trailing_zeros() as usize];
            se += e;
            if e > sm {
                sm = e;
            }
            w &= w - 1;
        }
    }
    (size as f64, se, sm)
}

/// [`masked_stats`] of `a & b` without materializing the conjunction:
/// one read-only pass over both operands. This is the cache-hit fast
/// path when the child bitmap itself is not retained — parent `AND`
/// column folds directly into the error aggregation, skipping the child
/// write and its buffer. Row order (and therefore float association)
/// matches [`masked_stats`] exactly.
pub fn masked_stats_and2(a: &[u64], b: &[u64], errors: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(a.len(), b.len());
    let mut size = 0u64;
    let mut se = 0.0f64;
    let mut sm = 0.0f64;
    for (wi, (&wa, &wb)) in a.iter().zip(b.iter()).enumerate() {
        let word = wa & wb;
        if word == 0 {
            continue;
        }
        size += word.count_ones() as u64;
        let row0 = wi * WORD_BITS;
        let mut w = word;
        while w != 0 {
            let e = errors[row0 + w.trailing_zeros() as usize];
            se += e;
            if e > sm {
                sm = e;
            }
            w &= w - 1;
        }
    }
    (size as f64, se, sm)
}

/// Word-chunked parallel [`masked_stats`]: word ranges are reduced on the
/// context's threads and partials merged in range order (`+` for size and
/// sum, `max` for the max), so any thread count yields identical results
/// whenever the partial sums are exact.
pub fn masked_stats_parallel(words: &[u64], errors: &[f64], exec: &ExecContext) -> (f64, f64, f64) {
    if exec.threads() <= 1 || words.len() < 2 * WORD_BITS {
        return masked_stats(words, errors);
    }
    let ranges = exec.parallel().split_range(words.len());
    let partials: Vec<(f64, f64, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || masked_stats_offset(&words[lo..hi], errors, lo * WORD_BITS))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = (0.0, 0.0, 0.0);
    for (ss, se, sm) in partials {
        out.0 += ss;
        out.1 += se;
        if sm > out.2 {
            out.2 = sm;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(rows: &[Vec<u32>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_binary_rows(cols, rows).unwrap()
    }

    #[test]
    fn packs_columns_correctly() {
        // 70 rows so the bitmap spans two words.
        let rows: Vec<Vec<u32>> = (0..70).map(|i| vec![(i % 3) as u32]).collect();
        let x = binary(&rows, 3);
        let b = BitMatrix::from_csr(&x);
        assert_eq!(b.rows(), 70);
        assert_eq!(b.cols(), 3);
        assert_eq!(b.words_per_col(), 2);
        assert_eq!(b.bytes(), 3 * 2 * 8);
        for c in 0..3 {
            assert_eq!(
                popcount(b.col(c)),
                rows.iter().filter(|r| r[0] == c as u32).count() as u64
            );
        }
        // Bit r of column c is set iff row r contains c.
        for (r, row) in rows.iter().enumerate() {
            for c in 0..3u32 {
                let set = b.col(c as usize)[r / 64] >> (r % 64) & 1 == 1;
                assert_eq!(set, row.contains(&c), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn and_cols_counts_intersection() {
        let rows: Vec<Vec<u32>> = (0..100)
            .map(|i| vec![(i % 2) as u32, 2 + (i % 5) as u32])
            .collect();
        let x = binary(&rows, 7);
        let b = BitMatrix::from_csr(&x);
        let mut out = Vec::new();
        b.and_cols_into(&[0, 2], &mut out);
        // i % 2 == 0 and i % 5 == 0 -> i % 10 == 0: 10 rows.
        assert_eq!(popcount(&out), 10);
        // Empty slice matches everything; tail bits stay clear.
        b.and_cols_into(&[], &mut out);
        assert_eq!(popcount(&out), 100);
    }

    #[test]
    fn masked_stats_and2_matches_materialized() {
        let rows: Vec<Vec<u32>> = (0..200)
            .map(|i| vec![(i % 2) as u32, 2 + (i % 5) as u32])
            .collect();
        let errors: Vec<f64> = (0..200).map(|i| ((i * 11) % 9) as f64 / 8.0).collect();
        let b = BitMatrix::from_csr(&binary(&rows, 7));
        let mut child = Vec::new();
        b.and_cols_into(&[1, 4], &mut child);
        assert_eq!(
            masked_stats_and2(b.col(1), b.col(4), &errors),
            masked_stats(&child, &errors)
        );
    }

    #[test]
    fn and2_matches_copy_then_and() {
        let rows: Vec<Vec<u32>> = (0..100)
            .map(|i| vec![(i % 2) as u32, 2 + (i % 5) as u32])
            .collect();
        let b = BitMatrix::from_csr(&binary(&rows, 7));
        let mut expect = b.col(0).to_vec();
        and_into(&mut expect, b.col(2));
        let mut fused = vec![u64::MAX; 3]; // stale contents are discarded
        and2_into(&mut fused, b.col(0), b.col(2));
        assert_eq!(fused, expect);
    }

    #[test]
    fn masked_stats_matches_direct_scan() {
        let rows: Vec<Vec<u32>> = (0..130).map(|i| vec![(i % 3) as u32]).collect();
        let errors: Vec<f64> = (0..130).map(|i| (i % 7) as f64 / 8.0).collect();
        let x = binary(&rows, 3);
        let b = BitMatrix::from_csr(&x);
        let mut buf = Vec::new();
        b.and_cols_into(&[1], &mut buf);
        let (ss, se, sm) = masked_stats(&buf, &errors);
        let selected: Vec<f64> = (0..130).filter(|i| i % 3 == 1).map(|i| errors[i]).collect();
        assert_eq!(ss, selected.len() as f64);
        assert_eq!(se, selected.iter().sum::<f64>());
        assert_eq!(sm, selected.iter().cloned().fold(0.0, f64::max));
    }

    #[test]
    fn parallel_kernels_match_serial() {
        let rows: Vec<Vec<u32>> = (0..20_000)
            .map(|i| vec![(i % 4) as u32, 4 + (i % 3) as u32])
            .collect();
        let errors: Vec<f64> = (0..20_000)
            .map(|i| ((i * 13) % 256) as f64 / 256.0)
            .collect();
        let x = binary(&rows, 7);
        let b = BitMatrix::from_csr(&x);
        let mut serial = Vec::new();
        b.and_cols_into(&[0, 5], &mut serial);
        let expect = masked_stats(&serial, &errors);
        for threads in [2, 4] {
            let exec = ExecContext::new(threads);
            let mut par = Vec::new();
            b.and_cols_into_parallel(&[0, 5], &mut par, &exec);
            assert_eq!(par, serial, "{threads} threads");
            assert_eq!(masked_stats_parallel(&serial, &errors, &exec), expect);
        }
    }

    #[test]
    fn zero_row_matrix() {
        let x = CsrMatrix::zeros(0, 2);
        let b = BitMatrix::from_csr(&x);
        assert_eq!(b.words_per_col(), 1);
        let mut out = Vec::new();
        b.and_cols_into(&[], &mut out);
        assert_eq!(popcount(&out), 0);
        b.and_cols_into(&[0, 1], &mut out);
        assert_eq!(popcount(&out), 0);
    }
}
