//! Packed `u64` bitmaps for slice evaluation.
//!
//! The one-hot matrix `X` is binary, so the paper's evaluation product
//! `X Sᵀ` (Eq. 10) degenerates to set intersection: a row belongs to a
//! level-`L` slice iff it has a 1 in all `L` of the slice's columns. A
//! [`BitMatrix`] stores each column of `X` as a packed bitmap of `n` bits
//! (one `u64` word per 64 rows), turning the membership test into a chain
//! of word-wise `AND`s, slice sizes into `popcount`, and the error
//! aggregates `se`/`sm` into a masked scan of the error vector — roughly
//! 64× less memory traffic than the sparse-float kernels and no
//! per-element branching.
//!
//! The module provides the storage type plus the three word-chunked
//! kernels the evaluation engine in `core` is built from:
//!
//! * [`BitMatrix::and_cols_into`] / [`BitMatrix::and_cols_into_parallel`]
//!   — `AND`-reduce a set of column bitmaps into a slice bitmap,
//! * [`popcount`] — slice sizes,
//! * [`masked_stats`] / [`masked_stats_parallel`] — `(|S|, se, sm)` from a
//!   slice bitmap and the row error vector.
//!
//! Parallel variants draw their fan-out from an [`ExecContext`] and chunk
//! over *words*, so 64 rows is the smallest unit of work and partial
//! results merge without any per-row synchronization.

use crate::context::ExecContext;
use crate::csr::CsrMatrix;
use crate::simd::{self, SimdLevel};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// A binary matrix stored as packed per-column `u64` bitmaps
/// (column-major: column `c` owns the contiguous word range
/// `c * words_per_col .. (c + 1) * words_per_col`).
///
/// Trailing bits past `rows` in the last word of every column are always
/// zero, so `AND` chains and popcounts never need a tail mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_col: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Packs the non-zero pattern of `x` (values are ignored; `x` is
    /// expected to be binary) into per-column bitmaps.
    pub fn from_csr(x: &CsrMatrix) -> Self {
        let rows = x.rows();
        let cols = x.cols();
        let words_per_col = rows.div_ceil(WORD_BITS).max(1);
        let mut words = vec![0u64; words_per_col * cols];
        for r in 0..rows {
            let word = r / WORD_BITS;
            let bit = 1u64 << (r % WORD_BITS);
            for &c in x.row_cols(r) {
                words[c as usize * words_per_col + word] |= bit;
            }
        }
        BitMatrix {
            rows,
            cols,
            words_per_col,
            words,
        }
    }

    /// Number of rows (bits per column).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bitmaps).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words per column bitmap (`ceil(rows / 64)`, at least 1).
    pub fn words_per_col(&self) -> usize {
        self.words_per_col
    }

    /// Total packed size in bytes (the broadcast/storage cost).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The packed bitmap of column `c`.
    pub fn col(&self, c: usize) -> &[u64] {
        &self.words[c * self.words_per_col..(c + 1) * self.words_per_col]
    }

    /// `AND`-reduces the column bitmaps named by `cols` into `out`
    /// (resized to [`Self::words_per_col`]). An empty `cols` yields the
    /// all-rows bitmap — every row matches zero predicates.
    pub fn and_cols_into(&self, cols: &[u32], out: &mut Vec<u64>) {
        self.and_cols_into_with(simd::default_level(), cols, out)
    }

    /// [`Self::and_cols_into`] at an explicit [`SimdLevel`].
    pub fn and_cols_into_with(&self, level: SimdLevel, cols: &[u32], out: &mut Vec<u64>) {
        out.clear();
        match cols.split_first() {
            None => {
                out.resize(self.words_per_col, u64::MAX);
                mask_tail(out, self.rows);
            }
            Some((&first, rest)) => {
                out.extend_from_slice(self.col(first as usize));
                for &c in rest {
                    and_into_with(level, out, self.col(c as usize));
                }
            }
        }
    }

    /// Word-chunked parallel [`Self::and_cols_into`]: the word range is
    /// split across the context's threads and each worker `AND`s its
    /// chunk through all columns (better cache behaviour than one pass
    /// per column when bitmaps exceed the last-level cache).
    pub fn and_cols_into_parallel(&self, cols: &[u32], out: &mut Vec<u64>, exec: &ExecContext) {
        if exec.threads() <= 1 || self.words_per_col < 2 * WORD_BITS {
            return self.and_cols_into(cols, out);
        }
        let Some((&first, rest)) = cols.split_first() else {
            return self.and_cols_into(cols, out);
        };
        out.clear();
        out.resize(self.words_per_col, 0);
        let bits = self;
        let level = exec.simd();
        exec.parallel().run_on_chunks(out, 1, |word0, chunk| {
            let lo = word0;
            let hi = word0 + chunk.len();
            chunk.copy_from_slice(&bits.col(first as usize)[lo..hi]);
            for &c in rest {
                and_into_with(level, chunk, &bits.col(c as usize)[lo..hi]);
            }
        });
    }

    /// Repacks the matrix into the compacted index space described by a
    /// row-coverage bitmap and a retained-column list: column `cols[j]` of
    /// the result is `self`'s column restricted to the rows whose bit is
    /// set in `keep`, renumbered densely in ascending row order
    /// (`removeEmpty` on both margins). `kept_rows` must equal
    /// `popcount(keep)`. The new word buffer is checked out of `exec`'s
    /// pool; recycle the old matrix with [`BitMatrix::recycle`].
    pub fn gather_rows(
        &self,
        keep: &[u64],
        kept_rows: usize,
        cols: &[usize],
        exec: &ExecContext,
    ) -> BitMatrix {
        debug_assert_eq!(keep.len(), self.words_per_col);
        debug_assert_eq!(popcount(keep), kept_rows as u64);
        let new_wpc = kept_rows.div_ceil(WORD_BITS).max(1);
        let mut words = exec.take_u64(new_wpc * cols.len());
        let bits = self;
        exec.parallel()
            .run_on_chunks(&mut words, new_wpc, |col0, chunk| {
                for (j, out) in chunk.chunks_mut(new_wpc).enumerate() {
                    gather_bits(bits.col(cols[col0 + j]), keep, out);
                }
            });
        BitMatrix {
            rows: kept_rows,
            cols: cols.len(),
            words_per_col: new_wpc,
            words,
        }
    }

    /// Projects the matrix onto a subset of columns without touching the
    /// row space: column `j` of the result is a verbatim copy of column
    /// `cols[j]`. Because rows (and therefore words-per-column) are
    /// unchanged, the result is bit-identical to re-packing a
    /// column-projected CSR with [`BitMatrix::from_csr`] — this is the
    /// warm-session path that reuses a resident full pack instead of
    /// re-packing after the per-query support filter. The word buffer is
    /// checked out of `exec`'s pool.
    pub fn select_cols(&self, cols: &[usize], exec: &ExecContext) -> BitMatrix {
        let wpc = self.words_per_col;
        let mut words = exec.take_u64(wpc * cols.len());
        for (j, &c) in cols.iter().enumerate() {
            words[j * wpc..(j + 1) * wpc].copy_from_slice(self.col(c));
        }
        BitMatrix {
            rows: self.rows,
            cols: cols.len(),
            words_per_col: wpc,
            words,
        }
    }

    /// Returns the word buffer to the context's pool. Use after replacing
    /// a matrix with its [`BitMatrix::gather_rows`] repack so the next
    /// pack or gather starts from recycled capacity.
    pub fn recycle(self, exec: &ExecContext) {
        exec.put_u64(self.words);
    }
}

/// Extracts the bits of `src` at the positions set in `keep` and packs
/// them densely into `out` (ascending position order — the bit-level
/// analog of a `removeEmpty` row gather). `out` must be zeroed and hold at
/// least `ceil(popcount(keep) / 64)` words.
pub fn gather_bits(src: &[u64], keep: &[u64], out: &mut [u64]) {
    debug_assert_eq!(src.len(), keep.len());
    let mut filled = 0usize;
    for (wi, &mask) in keep.iter().enumerate() {
        if mask == 0 {
            continue;
        }
        let s = src[wi];
        let mut m = mask;
        while m != 0 {
            let b = m.trailing_zeros();
            if (s >> b) & 1 == 1 {
                out[filled / WORD_BITS] |= 1u64 << (filled % WORD_BITS);
            }
            filled += 1;
            m &= m - 1;
        }
    }
}

/// Row-coverage union over a set of slices against a CSR one-hot matrix:
/// bit `r` of the result is set iff row `r` matches **some** slice (all
/// `level` of its columns present). This is the blocked/fused path's
/// coverage kernel — the same inverted-index scan as the fused evaluator,
/// reduced to a bitmap instead of per-slice statistics, so its bit set is
/// exactly the union of the per-slice row sets the bitmap path ORs
/// together. Parallel over word-aligned row chunks (each worker owns a
/// disjoint word range of the pooled output buffer).
pub fn csr_coverage<R: AsRef<[u32]> + Sync>(
    x: &CsrMatrix,
    slices: &[R],
    level: usize,
    exec: &ExecContext,
) -> Vec<u64> {
    csr_coverage_bounded(x, slices, level, usize::MAX, exec)
        .expect("an unreachable bound never aborts the scan")
}

/// [`csr_coverage`] with an early exit: returns `None` as soon as the
/// union provably holds at least `stop_at` rows. Callers that only need
/// coverage when it falls *below* a threshold (the adaptive-compaction
/// trigger) pass that threshold as `stop_at` and skip most of the scan
/// on levels where the working set cannot shrink — the covered-row count
/// only ever grows as the scan proceeds, so an early `>= stop_at` bound
/// is exact evidence, never an estimate. On `None` the partially filled
/// buffer is returned to the pool.
pub fn csr_coverage_bounded<R: AsRef<[u32]> + Sync>(
    x: &CsrMatrix,
    slices: &[R],
    level: usize,
    stop_at: usize,
    exec: &ExecContext,
) -> Option<Vec<u64>> {
    let rows = x.rows();
    let wpc = rows.div_ceil(WORD_BITS).max(1);
    let mut cov = exec.take_u64(wpc);
    if slices.is_empty() || rows == 0 {
        return Some(cov);
    }
    // Inverted index: projected column -> slice ids containing it.
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); x.cols()];
    for (sid, cols) in slices.iter().enumerate() {
        for &c in cols.as_ref() {
            inv[c as usize].push(sid as u32);
        }
    }
    let inv = &inv;
    let target = level as u32;
    let k = slices.len();
    // Covered rows found so far across all workers; checked once per
    // output word (64 rows), so the atomic traffic is negligible.
    let found = AtomicUsize::new(0);
    let found = &found;
    exec.parallel().run_on_chunks(&mut cov, 1, |word0, chunk| {
        let lo = word0 * WORD_BITS;
        let hi = ((word0 + chunk.len()) * WORD_BITS).min(rows);
        let mut counts = exec.take_u32(k);
        let mut touched = exec.take_u32(0);
        let mut local = 0usize;
        for r in lo..hi {
            if r % WORD_BITS == 0 {
                if local != 0 {
                    found.fetch_add(local, Ordering::Relaxed);
                    local = 0;
                }
                if found.load(Ordering::Relaxed) >= stop_at {
                    break;
                }
            }
            let mut covered = false;
            for &c in x.row_cols(r) {
                for &sid in &inv[c as usize] {
                    if counts[sid as usize] == 0 {
                        touched.push(sid);
                    }
                    counts[sid as usize] += 1;
                }
            }
            for &sid in &touched {
                if counts[sid as usize] == target {
                    covered = true;
                }
                counts[sid as usize] = 0;
            }
            touched.clear();
            if covered {
                chunk[(r - lo) / WORD_BITS] |= 1u64 << (r % WORD_BITS);
                local += 1;
            }
        }
        if local != 0 {
            found.fetch_add(local, Ordering::Relaxed);
        }
        exec.put_u32(counts);
        exec.put_u32(touched);
    });
    if found.load(Ordering::Relaxed) >= stop_at {
        exec.put_u64(cov);
        return None;
    }
    Some(cov)
}

/// Zeroes all bits at positions `>= rows` (call after filling with ones).
fn mask_tail(words: &mut [u64], rows: usize) {
    let full = rows / WORD_BITS;
    if full < words.len() {
        let rem = rows % WORD_BITS;
        words[full] &= if rem == 0 {
            0
        } else {
            u64::MAX >> (WORD_BITS - rem)
        };
        for w in &mut words[full + 1..] {
            *w = 0;
        }
    }
}

/// In-place word-wise `acc &= src` at the process-default SIMD level.
pub fn and_into(acc: &mut [u64], src: &[u64]) {
    and_into_with(simd::default_level(), acc, src)
}

/// [`and_into`] at an explicit [`SimdLevel`].
pub fn and_into_with(level: SimdLevel, acc: &mut [u64], src: &[u64]) {
    debug_assert_eq!(acc.len(), src.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only ever produced by `simd::resolve`/`detect`,
        // which verified the CPU features at runtime.
        SimdLevel::Avx2 => unsafe { simd::avx2::and_into(acc, src) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { simd::neon::and_into(acc, src) },
        _ => {
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                *a &= s;
            }
        }
    }
}

/// Word-wise `dst = a & b` in a single pass — the incremental
/// child-from-parent step (cached parent bitmap `AND` one new column)
/// without a separate copy pass.
pub fn and2_into(dst: &mut Vec<u64>, a: &[u64], b: &[u64]) {
    and2_into_with(simd::default_level(), dst, a, b)
}

/// [`and2_into`] at an explicit [`SimdLevel`].
pub fn and2_into_with(level: SimdLevel, dst: &mut Vec<u64>, a: &[u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            dst.clear();
            dst.resize(a.len(), 0);
            // SAFETY: level came from runtime feature detection.
            unsafe { simd::avx2::and2_into(dst, a, b) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            dst.clear();
            dst.resize(a.len(), 0);
            // SAFETY: NEON is baseline on aarch64.
            unsafe { simd::neon::and2_into(dst, a, b) }
        }
        _ => {
            dst.clear();
            dst.extend(a.iter().zip(b.iter()).map(|(&x, &y)| x & y));
        }
    }
}

/// Total set bits (the slice size `|S|`) at the process-default SIMD level.
pub fn popcount(words: &[u64]) -> u64 {
    popcount_with(simd::default_level(), words)
}

/// [`popcount`] at an explicit [`SimdLevel`].
pub fn popcount_with(level: SimdLevel, words: &[u64]) -> u64 {
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level came from runtime feature detection.
        SimdLevel::Avx2 => unsafe { simd::avx2::popcount(words) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { simd::neon::popcount(words) },
        _ => popcount_scalar(words),
    }
}

/// Scalar popcount: four independent accumulators break the single
/// add-chain dependency so the popcounts of consecutive words retire in
/// parallel (ILP); integer addition is associative, so the result is
/// identical to a plain sum. This is the one remaining copy of the 4-way
/// lane-accumulator pattern — the masked-stats kernels now share the
/// single [`simd::scan_word`] accumulator instead of duplicating it.
fn popcount_scalar(words: &[u64]) -> u64 {
    let mut lanes = [0u64; 4];
    let mut chunks = words.chunks_exact(4);
    for quad in &mut chunks {
        lanes[0] += quad[0].count_ones() as u64;
        lanes[1] += quad[1].count_ones() as u64;
        lanes[2] += quad[2].count_ones() as u64;
        lanes[3] += quad[3].count_ones() as u64;
    }
    let mut total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for &w in chunks.remainder() {
        total += w.count_ones() as u64;
    }
    total
}

/// In-place word-wise `acc |= src` — the coverage union reduce.
pub fn or_into(acc: &mut [u64], src: &[u64]) {
    debug_assert_eq!(acc.len(), src.len());
    for (a, &s) in acc.iter_mut().zip(src.iter()) {
        *a |= s;
    }
}

/// Masked error aggregation: `(|S|, se, sm)` — set-bit count, sum and max
/// of `errors` over the rows selected by the bitmap.
///
/// Accumulates in ascending row order, matching the serial scan order of
/// the blocked and fused kernels so sums agree bit-for-bit with them on a
/// single thread.
pub fn masked_stats(words: &[u64], errors: &[f64]) -> (f64, f64, f64) {
    masked_stats_offset_with(simd::default_level(), words, errors, 0)
}

/// [`masked_stats`] at an explicit [`SimdLevel`].
pub fn masked_stats_with(level: SimdLevel, words: &[u64], errors: &[f64]) -> (f64, f64, f64) {
    masked_stats_offset_with(level, words, errors, 0)
}

/// [`masked_stats`] for a word sub-range whose first word covers row
/// `base_row` (`base_row` must be a multiple of 64). Every backend
/// accumulates through the shared [`simd::scan_word`] helper: the float
/// sum stays a single sequential chain in ascending row order — that
/// order is the bit-for-bit contract with the other kernels.
fn masked_stats_offset_with(
    level: SimdLevel,
    words: &[u64],
    errors: &[f64],
    base_row: usize,
) -> (f64, f64, f64) {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        // SAFETY: level came from runtime feature detection.
        return unsafe { simd::avx2::masked_stats(words, errors, base_row) };
    }
    let _ = level;
    let mut size = 0u64;
    let mut se = 0.0f64;
    let mut sm = 0.0f64;
    for (wi, &word) in words.iter().enumerate() {
        simd::scan_word(
            word,
            base_row + wi * WORD_BITS,
            errors,
            &mut size,
            &mut se,
            &mut sm,
        );
    }
    (size as f64, se, sm)
}

/// [`masked_stats`] of `a & b` without materializing the conjunction:
/// one read-only pass over both operands. This is the cache-hit fast
/// path when the child bitmap itself is not retained — parent `AND`
/// column folds directly into the error aggregation, skipping the child
/// write and its buffer. Row order (and therefore float association)
/// matches [`masked_stats`] exactly.
pub fn masked_stats_and2(a: &[u64], b: &[u64], errors: &[f64]) -> (f64, f64, f64) {
    masked_stats_and2_with(simd::default_level(), a, b, errors)
}

/// [`masked_stats_and2`] at an explicit [`SimdLevel`].
pub fn masked_stats_and2_with(
    level: SimdLevel,
    a: &[u64],
    b: &[u64],
    errors: &[f64],
) -> (f64, f64, f64) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        // SAFETY: level came from runtime feature detection.
        return unsafe { simd::avx2::masked_stats_and2(a, b, errors) };
    }
    let _ = level;
    let mut size = 0u64;
    let mut se = 0.0f64;
    let mut sm = 0.0f64;
    for (wi, (&wa, &wb)) in a.iter().zip(b.iter()).enumerate() {
        simd::scan_word(wa & wb, wi * WORD_BITS, errors, &mut size, &mut se, &mut sm);
    }
    (size as f64, se, sm)
}

/// Maximum sibling fan-in of [`masked_stats_and2_multi`].
pub const MULTI_WAY: usize = 8;

/// Batched [`masked_stats_and2`]: evaluates up to [`MULTI_WAY`] sibling
/// slices that share `parent` in **one pass** over the parent bitmap and
/// the error vector. Each parent word (and each cache line of `errors`
/// it selects) is loaded once for the whole sibling group instead of once
/// per slice — the interleaved multi-slice evaluation the engine's
/// sibling batching is built on. `out[j]` receives exactly what
/// `masked_stats_and2(parent, cols[j], errors)` would return: per slice,
/// the scanned word sequence and the float association are identical.
pub fn masked_stats_and2_multi(
    parent: &[u64],
    cols: &[&[u64]],
    errors: &[f64],
    out: &mut [(f64, f64, f64)],
) {
    let k = cols.len();
    assert!(k <= MULTI_WAY, "sibling group exceeds MULTI_WAY");
    assert_eq!(out.len(), k);
    debug_assert!(cols.iter().all(|c| c.len() == parent.len()));
    let mut size = [0u64; MULTI_WAY];
    let mut se = [0.0f64; MULTI_WAY];
    let mut sm = [0.0f64; MULTI_WAY];
    let n = parent.len();
    let mut wi = 0;
    while wi < n {
        // Skip fully-empty 4-word parent blocks with one OR — no child
        // can have a bit where the parent has none.
        if wi + 4 <= n && parent[wi] | parent[wi + 1] | parent[wi + 2] | parent[wi + 3] == 0 {
            wi += 4;
            continue;
        }
        let pw = parent[wi];
        if pw != 0 {
            let row0 = wi * WORD_BITS;
            for (j, col) in cols.iter().enumerate() {
                simd::scan_word(
                    pw & col[wi],
                    row0,
                    errors,
                    &mut size[j],
                    &mut se[j],
                    &mut sm[j],
                );
            }
        }
        wi += 1;
    }
    for j in 0..k {
        out[j] = (size[j] as f64, se[j], sm[j]);
    }
}

/// Word-chunked parallel [`masked_stats`]: word ranges are reduced on the
/// context's threads and partials merged in range order (`+` for size and
/// sum, `max` for the max), so any thread count yields identical results
/// whenever the partial sums are exact.
pub fn masked_stats_parallel(words: &[u64], errors: &[f64], exec: &ExecContext) -> (f64, f64, f64) {
    if exec.threads() <= 1 || words.len() < 2 * WORD_BITS {
        return masked_stats(words, errors);
    }
    let ranges = exec.parallel().split_range(words.len());
    let level = exec.simd();
    let partials: Vec<(f64, f64, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || {
                    masked_stats_offset_with(level, &words[lo..hi], errors, lo * WORD_BITS)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = (0.0, 0.0, 0.0);
    for (ss, se, sm) in partials {
        out.0 += ss;
        out.1 += se;
        if sm > out.2 {
            out.2 = sm;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(rows: &[Vec<u32>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_binary_rows(cols, rows).unwrap()
    }

    #[test]
    fn packs_columns_correctly() {
        // 70 rows so the bitmap spans two words.
        let rows: Vec<Vec<u32>> = (0..70).map(|i| vec![(i % 3) as u32]).collect();
        let x = binary(&rows, 3);
        let b = BitMatrix::from_csr(&x);
        assert_eq!(b.rows(), 70);
        assert_eq!(b.cols(), 3);
        assert_eq!(b.words_per_col(), 2);
        assert_eq!(b.bytes(), 3 * 2 * 8);
        for c in 0..3 {
            assert_eq!(
                popcount(b.col(c)),
                rows.iter().filter(|r| r[0] == c as u32).count() as u64
            );
        }
        // Bit r of column c is set iff row r contains c.
        for (r, row) in rows.iter().enumerate() {
            for c in 0..3u32 {
                let set = b.col(c as usize)[r / 64] >> (r % 64) & 1 == 1;
                assert_eq!(set, row.contains(&c), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn and_cols_counts_intersection() {
        let rows: Vec<Vec<u32>> = (0..100)
            .map(|i| vec![(i % 2) as u32, 2 + (i % 5) as u32])
            .collect();
        let x = binary(&rows, 7);
        let b = BitMatrix::from_csr(&x);
        let mut out = Vec::new();
        b.and_cols_into(&[0, 2], &mut out);
        // i % 2 == 0 and i % 5 == 0 -> i % 10 == 0: 10 rows.
        assert_eq!(popcount(&out), 10);
        // Empty slice matches everything; tail bits stay clear.
        b.and_cols_into(&[], &mut out);
        assert_eq!(popcount(&out), 100);
    }

    #[test]
    fn masked_stats_and2_matches_materialized() {
        let rows: Vec<Vec<u32>> = (0..200)
            .map(|i| vec![(i % 2) as u32, 2 + (i % 5) as u32])
            .collect();
        let errors: Vec<f64> = (0..200).map(|i| ((i * 11) % 9) as f64 / 8.0).collect();
        let b = BitMatrix::from_csr(&binary(&rows, 7));
        let mut child = Vec::new();
        b.and_cols_into(&[1, 4], &mut child);
        assert_eq!(
            masked_stats_and2(b.col(1), b.col(4), &errors),
            masked_stats(&child, &errors)
        );
    }

    #[test]
    fn and2_matches_copy_then_and() {
        let rows: Vec<Vec<u32>> = (0..100)
            .map(|i| vec![(i % 2) as u32, 2 + (i % 5) as u32])
            .collect();
        let b = BitMatrix::from_csr(&binary(&rows, 7));
        let mut expect = b.col(0).to_vec();
        and_into(&mut expect, b.col(2));
        let mut fused = vec![u64::MAX; 3]; // stale contents are discarded
        and2_into(&mut fused, b.col(0), b.col(2));
        assert_eq!(fused, expect);
    }

    #[test]
    fn masked_stats_matches_direct_scan() {
        let rows: Vec<Vec<u32>> = (0..130).map(|i| vec![(i % 3) as u32]).collect();
        let errors: Vec<f64> = (0..130).map(|i| (i % 7) as f64 / 8.0).collect();
        let x = binary(&rows, 3);
        let b = BitMatrix::from_csr(&x);
        let mut buf = Vec::new();
        b.and_cols_into(&[1], &mut buf);
        let (ss, se, sm) = masked_stats(&buf, &errors);
        let selected: Vec<f64> = (0..130).filter(|i| i % 3 == 1).map(|i| errors[i]).collect();
        assert_eq!(ss, selected.len() as f64);
        assert_eq!(se, selected.iter().sum::<f64>());
        assert_eq!(sm, selected.iter().cloned().fold(0.0, f64::max));
    }

    #[test]
    fn parallel_kernels_match_serial() {
        let rows: Vec<Vec<u32>> = (0..20_000)
            .map(|i| vec![(i % 4) as u32, 4 + (i % 3) as u32])
            .collect();
        let errors: Vec<f64> = (0..20_000)
            .map(|i| ((i * 13) % 256) as f64 / 256.0)
            .collect();
        let x = binary(&rows, 7);
        let b = BitMatrix::from_csr(&x);
        let mut serial = Vec::new();
        b.and_cols_into(&[0, 5], &mut serial);
        let expect = masked_stats(&serial, &errors);
        for threads in [2, 4] {
            let exec = ExecContext::new(threads);
            let mut par = Vec::new();
            b.and_cols_into_parallel(&[0, 5], &mut par, &exec);
            assert_eq!(par, serial, "{threads} threads");
            assert_eq!(masked_stats_parallel(&serial, &errors, &exec), expect);
        }
    }

    #[test]
    fn popcount_unrolled_matches_plain_sum() {
        // Lengths around the 4-word unroll boundary, including the tail.
        for len in [0usize, 1, 3, 4, 5, 8, 130] {
            let words: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9E3779B9))
                .collect();
            let plain: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
            assert_eq!(popcount(&words), plain, "len={len}");
        }
    }

    #[test]
    fn or_into_unions() {
        let mut acc = vec![0b1010u64, 0];
        or_into(&mut acc, &[0b0110, 1 << 63]);
        assert_eq!(acc, vec![0b1110, 1 << 63]);
    }

    #[test]
    fn gather_bits_packs_kept_positions() {
        // keep rows {1, 2, 65, 66, 130}; src has bits at {1, 65, 130}.
        let keep = vec![0b110u64, 0b110, 0b100];
        let src = vec![0b010u64, 0b010, 0b100];
        let mut out = vec![0u64; 1];
        gather_bits(&src, &keep, &mut out);
        // Kept positions in order: 1,2,65,66,130 -> new rows 0..5; src set
        // at kept positions 1, 65, 130 -> new rows 0, 2, 4.
        assert_eq!(out, vec![0b10101]);
    }

    #[test]
    fn gather_rows_matches_row_subset_repack() {
        let rows: Vec<Vec<u32>> = (0..150)
            .map(|i| vec![(i % 3) as u32, 3 + (i % 2) as u32])
            .collect();
        let x = binary(&rows, 5);
        let b = BitMatrix::from_csr(&x);
        // Keep every row divisible by 4; retain columns {0, 2, 4}.
        let kept_rows: Vec<usize> = (0..150).step_by(4).collect();
        let mut keep = vec![0u64; b.words_per_col()];
        for &r in &kept_rows {
            keep[r / 64] |= 1 << (r % 64);
        }
        let exec = ExecContext::serial();
        let g = b.gather_rows(&keep, kept_rows.len(), &[0, 2, 4], &exec);
        assert_eq!(g.rows(), kept_rows.len());
        assert_eq!(g.cols(), 3);
        let direct = BitMatrix::from_csr(
            &x.select_rows(&kept_rows)
                .unwrap()
                .select_cols(&[0, 2, 4])
                .unwrap(),
        );
        for c in 0..3 {
            assert_eq!(g.col(c), direct.col(c), "col {c}");
        }
        // Parallel gather produces the same packing.
        let par = b.gather_rows(&keep, kept_rows.len(), &[0, 2, 4], &ExecContext::new(4));
        for c in 0..3 {
            assert_eq!(par.col(c), g.col(c));
        }
        g.recycle(&exec);
        assert!(exec.pool_stats().bytes_outstanding < 8 * 64);
    }

    #[test]
    fn select_cols_matches_projected_repack() {
        let rows: Vec<Vec<u32>> = (0..150)
            .map(|i| vec![(i % 3) as u32, 3 + (i % 2) as u32])
            .collect();
        let x = binary(&rows, 5);
        let b = BitMatrix::from_csr(&x);
        let exec = ExecContext::serial();
        let sel = b.select_cols(&[0, 2, 4], &exec);
        assert_eq!(sel.rows(), b.rows());
        assert_eq!(sel.cols(), 3);
        assert_eq!(sel.words_per_col(), b.words_per_col());
        let direct = BitMatrix::from_csr(&x.select_cols(&[0, 2, 4]).unwrap());
        assert_eq!(sel, direct, "column projection must match a re-pack");
        sel.recycle(&exec);
    }

    #[test]
    fn csr_coverage_matches_per_slice_union() {
        let rows: Vec<Vec<u32>> = (0..200)
            .map(|i| vec![(i % 4) as u32, 4 + (i % 3) as u32])
            .collect();
        let x = binary(&rows, 7);
        let b = BitMatrix::from_csr(&x);
        let slices = vec![vec![0u32, 4], vec![1, 5], vec![2, 6]];
        let mut expect = vec![0u64; b.words_per_col()];
        let mut buf = Vec::new();
        for s in &slices {
            b.and_cols_into(s, &mut buf);
            or_into(&mut expect, &buf);
        }
        for threads in [1, 2, 4] {
            let exec = ExecContext::new(threads);
            let cov = csr_coverage(&x, &slices, 2, &exec);
            assert_eq!(cov, expect, "{threads} threads");
        }
        // Empty slice set covers nothing.
        let none = csr_coverage(&x, &Vec::<Vec<u32>>::new(), 2, &ExecContext::serial());
        assert_eq!(popcount(&none), 0);
    }

    #[test]
    fn bounded_coverage_aborts_at_the_stop_count() {
        let rows: Vec<Vec<u32>> = (0..300)
            .map(|i| vec![(i % 4) as u32, 4 + (i % 3) as u32])
            .collect();
        let x = binary(&rows, 7);
        let slices = vec![vec![0u32, 4], vec![1, 5], vec![2, 6]];
        let full = csr_coverage(&x, &slices, 2, &ExecContext::serial());
        let union = popcount(&full) as usize;
        assert!(union > 0 && union < 300);
        for threads in [1, 4] {
            let exec = ExecContext::new(threads);
            // Bound above the union: the full bitmap comes back.
            let cov = csr_coverage_bounded(&x, &slices, 2, union + 1, &exec)
                .expect("bound above the union must not abort");
            assert_eq!(cov, full, "{threads} threads");
            // Bound at or below the union: the scan must abort.
            for stop_at in [union, union / 2, 1] {
                assert!(
                    csr_coverage_bounded(&x, &slices, 2, stop_at, &exec).is_none(),
                    "{threads} threads, stop_at {stop_at}"
                );
            }
        }
        // stop_at 0 aborts immediately even with nothing covered.
        assert!(csr_coverage_bounded(&x, &slices, 2, 0, &ExecContext::serial()).is_none());
    }

    #[test]
    fn zero_row_matrix() {
        let x = CsrMatrix::zeros(0, 2);
        let b = BitMatrix::from_csr(&x);
        assert_eq!(b.words_per_col(), 1);
        let mut out = Vec::new();
        b.and_cols_into(&[], &mut out);
        assert_eq!(popcount(&out), 0);
        b.and_cols_into(&[0, 1], &mut out);
        assert_eq!(popcount(&out), 0);
    }
}
