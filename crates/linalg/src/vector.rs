//! Vector kernels: sequences, cumulative sums/products, element-wise
//! predicates, and ordering.
//!
//! SliceLine's data preparation computes feature offsets via
//! `fb = cumsum(fdom) - fdom` and `fe = cumsum(fdom)` (Algorithm 1 lines
//! 3–4), and top-K maintenance sorts score vectors with `order(...,
//! decreasing=TRUE, index.return=TRUE)` (§4.5). Those primitives live here.

/// `seq(1, n)` as 1-based f64 values (R/DML convention).
pub fn seq(n: usize) -> Vec<f64> {
    (1..=n).map(|i| i as f64).collect()
}

/// Cumulative sum: `out[i] = v[0] + … + v[i]`.
pub fn cumsum(v: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    v.iter()
        .map(|&x| {
            acc += x;
            acc
        })
        .collect()
}

/// Cumulative sum over usize values.
pub fn cumsum_usize(v: &[usize]) -> Vec<usize> {
    let mut acc = 0usize;
    v.iter()
        .map(|&x| {
            acc += x;
            acc
        })
        .collect()
}

/// Cumulative product: `out[i] = v[0] * … * v[i]`.
pub fn cumprod(v: &[f64]) -> Vec<f64> {
    let mut acc = 1.0;
    v.iter()
        .map(|&x| {
            acc *= x;
            acc
        })
        .collect()
}

/// Element-wise `v >= t` as 0/1 indicator values.
pub fn ge_indicator(v: &[f64], t: f64) -> Vec<f64> {
    v.iter().map(|&x| if x >= t { 1.0 } else { 0.0 }).collect()
}

/// Element-wise `v > t` as 0/1 indicator values.
pub fn gt_indicator(v: &[f64], t: f64) -> Vec<f64> {
    v.iter().map(|&x| if x > t { 1.0 } else { 0.0 }).collect()
}

/// Element-wise logical AND of 0/1 indicator vectors.
pub fn and(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| if x != 0.0 && y != 0.0 { 1.0 } else { 0.0 })
        .collect()
}

/// Indexes `i` with `v[i] != 0`, i.e. `removeEmpty` on an indicator vector
/// returning the kept positions.
pub fn nonzero_indices(v: &[f64]) -> Vec<usize> {
    v.iter()
        .enumerate()
        .filter_map(|(i, &x)| (x != 0.0).then_some(i))
        .collect()
}

/// Stable argsort in *descending* order of `v` — the paper's
/// `order(R, by=1, decreasing=TRUE, index.return=TRUE)`.
///
/// NaN values sort last. Ties keep their original relative order so results
/// are deterministic.
pub fn order_desc(v: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| {
        v[b].partial_cmp(&v[a])
            .unwrap_or_else(|| v[a].is_nan().cmp(&v[b].is_nan()))
    });
    idx
}

/// Element-wise minimum of two equal-length vectors.
pub fn elem_min(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b.iter()).map(|(&x, &y)| x.min(y)).collect()
}

/// Dot product of two equal-length vectors.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_is_one_based() {
        assert_eq!(seq(3), vec![1.0, 2.0, 3.0]);
        assert!(seq(0).is_empty());
    }

    #[test]
    fn cumsum_basic() {
        assert_eq!(cumsum(&[1.0, 2.0, 3.0]), vec![1.0, 3.0, 6.0]);
        assert!(cumsum(&[]).is_empty());
        assert_eq!(cumsum_usize(&[2, 3, 4]), vec![2, 5, 9]);
    }

    #[test]
    fn cumprod_basic() {
        assert_eq!(cumprod(&[2.0, 3.0, 4.0]), vec![2.0, 6.0, 24.0]);
    }

    #[test]
    fn feature_offsets_identity() {
        // The paper's fb/fe: for domains [2,3,2] one-hot columns are
        // [0..2), [2..5), [5..7).
        let fdom = [2.0, 3.0, 2.0];
        let fe = cumsum(&fdom);
        let fb: Vec<f64> = fe.iter().zip(fdom.iter()).map(|(&e, &d)| e - d).collect();
        assert_eq!(fb, vec![0.0, 2.0, 5.0]);
        assert_eq!(fe, vec![2.0, 5.0, 7.0]);
    }

    #[test]
    fn indicators() {
        assert_eq!(ge_indicator(&[1.0, 2.0, 3.0], 2.0), vec![0.0, 1.0, 1.0]);
        assert_eq!(gt_indicator(&[1.0, 2.0, 3.0], 2.0), vec![0.0, 0.0, 1.0]);
        assert_eq!(and(&[1.0, 1.0, 0.0], &[1.0, 0.0, 1.0]), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn nonzero_indices_basic() {
        assert_eq!(nonzero_indices(&[0.0, 2.0, 0.0, -1.0]), vec![1, 3]);
    }

    #[test]
    fn order_desc_stable() {
        assert_eq!(order_desc(&[1.0, 3.0, 2.0]), vec![1, 2, 0]);
        // Ties keep original order.
        assert_eq!(order_desc(&[2.0, 2.0, 1.0]), vec![0, 1, 2]);
    }

    #[test]
    fn order_desc_nan_last() {
        let idx = order_desc(&[1.0, f64::NAN, 2.0]);
        assert_eq!(idx[0], 2);
        assert_eq!(idx[1], 0);
        assert_eq!(idx[2], 1);
    }

    #[test]
    fn min_dot() {
        assert_eq!(elem_min(&[1.0, 5.0], &[2.0, 3.0]), vec![1.0, 3.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
