//! Minimal scoped-thread parallelism helpers.
//!
//! SliceLine's evaluation step is embarrassingly parallel over row
//! partitions of `X` (data parallelism) or over slices (task parallelism,
//! the paper's `parfor`). This module provides the small amount of
//! infrastructure both need, without pulling in a full task scheduler:
//!
//! * [`ParallelConfig::run_on_chunks`] — split a mutable output buffer into
//!   row-aligned chunks and fill them from worker threads,
//! * [`ParallelConfig::par_map`] — map a function over an index range on a
//!   fixed number of threads, preserving order,
//! * [`ParallelConfig::par_reduce`] — map-reduce over index blocks.

/// Thread-count configuration for parallel kernels.
///
/// A `threads` value of 1 runs everything inline on the calling thread,
/// which keeps single-threaded benchmarks free of spawn overhead and makes
/// failures deterministic under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
}

impl Default for ParallelConfig {
    /// Defaults to the machine's available parallelism (at least 1).
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelConfig { threads }
    }
}

impl ParallelConfig {
    /// Creates a configuration with exactly `threads` worker threads
    /// (values below 1 are clamped to 1).
    pub fn new(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
        }
    }

    /// A single-threaded configuration.
    pub fn serial() -> Self {
        ParallelConfig { threads: 1 }
    }

    /// The configured number of threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `data` (a row-major buffer with rows of `row_width` elements)
    /// into contiguous row-aligned chunks, one per worker, and invokes
    /// `f(first_row_index, chunk)` on each from its own thread. Generic
    /// over the element type so both the `f64` match-count intermediates
    /// and the packed `u64` bitmap words share one splitter.
    ///
    /// With `row_width == 0` or empty data this is a no-op.
    pub fn run_on_chunks<T, F>(&self, data: &mut [T], row_width: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() || row_width == 0 {
            return;
        }
        let total_rows = data.len() / row_width;
        let workers = self.threads.min(total_rows).max(1);
        if workers == 1 {
            f(0, data);
            return;
        }
        let rows_per = total_rows.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut row0 = 0usize;
            while !rest.is_empty() {
                let take = (rows_per * row_width).min(rest.len());
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                let fref = &f;
                let start = row0;
                scope.spawn(move || fref(start, chunk));
                row0 += take / row_width;
            }
        });
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// Work is split into `threads` contiguous blocks; each worker fills its
    /// own slice of the output vector so no locking is needed.
    pub fn par_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + Default + Clone,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = vec![T::default(); n];
        if n == 0 {
            return out;
        }
        let workers = self.threads.min(n).max(1);
        if workers == 1 {
            for (i, o) in out.iter_mut().enumerate() {
                *o = f(i);
            }
            return out;
        }
        let per = n.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut rest = out.as_mut_slice();
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = per.min(rest.len());
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                let fref = &f;
                let start = base;
                scope.spawn(move || {
                    for (i, o) in chunk.iter_mut().enumerate() {
                        *o = fref(start + i);
                    }
                });
                base += take;
            }
        });
        out
    }

    /// Map-reduce over `0..n`: each worker folds its contiguous block with
    /// `fold` starting from `init.clone()`, and the per-worker accumulators
    /// are combined with `combine`.
    pub fn par_reduce<A, F, C>(&self, n: usize, init: A, fold: F, combine: C) -> A
    where
        A: Send + Clone,
        F: Fn(A, usize) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        if n == 0 {
            return init;
        }
        let workers = self.threads.min(n).max(1);
        if workers == 1 {
            return (0..n).fold(init, fold);
        }
        let per = n.div_ceil(workers);
        let mut partials: Vec<Option<A>> = vec![None; workers];
        std::thread::scope(|scope| {
            for (w, slot) in partials.iter_mut().enumerate() {
                let lo = w * per;
                let hi = ((w + 1) * per).min(n);
                if lo >= hi {
                    break;
                }
                let foldref = &fold;
                let seed = init.clone();
                scope.spawn(move || {
                    *slot = Some((lo..hi).fold(seed, foldref));
                });
            }
        });
        let mut acc = init;
        for p in partials.into_iter().flatten() {
            acc = combine(acc, p);
        }
        acc
    }

    /// Runs `f` over task indices `0..n` with dynamic scheduling: workers
    /// grab the next index from a shared atomic cursor, so uneven task
    /// costs balance automatically (unlike [`Self::par_map`]'s static
    /// split). Results are returned in index order regardless of which
    /// worker ran which task, keeping output deterministic.
    ///
    /// Unlike `par_map` there is no `Default + Clone` bound on the result
    /// type, so tasks can return arbitrary owned state.
    pub fn par_tasks<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n).max(1);
        if workers == 1 {
            return (0..n).map(f).collect();
        }
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let fref = &f;
                    let cref = &cursor;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = cref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, fref(i)));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for worker in per_worker {
            for (i, v) in worker {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task index produced a result"))
            .collect()
    }

    /// Splits `0..n` into at most `threads` contiguous `(lo, hi)` ranges.
    pub fn split_range(&self, n: usize) -> Vec<(usize, usize)> {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n).max(1);
        let per = n.div_ceil(workers);
        (0..workers)
            .map(|w| (w * per, ((w + 1) * per).min(n)))
            .filter(|(lo, hi)| lo < hi)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_to_one() {
        assert_eq!(ParallelConfig::new(0).threads(), 1);
        assert_eq!(ParallelConfig::new(8).threads(), 8);
    }

    #[test]
    fn run_on_chunks_covers_all_rows() {
        let mut data = vec![0.0; 10 * 3];
        ParallelConfig::new(4).run_on_chunks(&mut data, 3, |row0, chunk| {
            let rows = chunk.len() / 3;
            for i in 0..rows {
                for c in 0..3 {
                    chunk[i * 3 + c] = (row0 + i) as f64;
                }
            }
        });
        for (r, row) in data.chunks(3).enumerate() {
            assert!(row.iter().all(|&x| x == r as f64), "row {r} wrong: {row:?}");
        }
    }

    #[test]
    fn run_on_chunks_empty_noop() {
        let mut data: Vec<f64> = Vec::new();
        ParallelConfig::new(2).run_on_chunks(&mut data, 3, |_, _| panic!("must not run"));
        let mut data = vec![1.0];
        ParallelConfig::new(2).run_on_chunks(&mut data, 0, |_, _| panic!("must not run"));
        assert_eq!(data, vec![1.0]);
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 3, 7] {
            let out = ParallelConfig::new(threads).par_map(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<usize> = ParallelConfig::new(4).par_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn par_reduce_sums() {
        for threads in [1, 2, 5] {
            let total = ParallelConfig::new(threads).par_reduce(
                100,
                0u64,
                |a, i| a + i as u64,
                |a, b| a + b,
            );
            assert_eq!(total, 4950);
        }
    }

    #[test]
    fn par_tasks_preserves_order_with_uneven_costs() {
        for threads in [1, 2, 3, 8] {
            let out = ParallelConfig::new(threads).par_tasks(17, |i| {
                // Make early tasks slower so late tasks finish first.
                if i < 3 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                vec![i; i % 4]
            });
            assert_eq!(out.len(), 17);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(v, &vec![i; i % 4]);
            }
        }
        let empty: Vec<u8> = ParallelConfig::new(4).par_tasks(0, |_| 0u8);
        assert!(empty.is_empty());
    }

    #[test]
    fn split_range_partitions() {
        let ranges = ParallelConfig::new(3).split_range(10);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 10);
        let covered: usize = ranges.iter().map(|(lo, hi)| hi - lo).sum();
        assert_eq!(covered, 10);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        assert!(ParallelConfig::new(3).split_range(0).is_empty());
    }

    #[test]
    fn default_has_at_least_one_thread() {
        assert!(ParallelConfig::default().threads() >= 1);
    }
}
