//! Sparse matrix products.
//!
//! Three products carry the SliceLine algorithm:
//!
//! * `S ⊙ Sᵀ` — the symmetric self-join counting predicate overlap between
//!   slice pairs (Eq. 6). [`self_overlap`] computes it directly from the
//!   transpose (an inverted column → row index), exploiting symmetry like
//!   the `cblas_dsyrk` call the paper footnotes.
//! * `X ⊙ Sᵀ` — the evaluation product counting how many of a slice's `L`
//!   predicates each row satisfies (Eq. 10). [`count_matches_block`] produces the
//!   (row, slice, count) structure blocked over slices.
//! * general `A ⊙ B` sparse-sparse products ([`spgemm`]) used by the
//!   reference (pure linear algebra) backend.

use crate::context::ExecContext;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};

/// General sparse × sparse product `a * b` using the classic Gustavson
/// row-wise algorithm with a dense accumulator of size `b.cols()`.
///
/// Occupancy is tracked with a dense `seen` flag array rather than an
/// `acc[c] == 0.0` test: a partial sum can pass through zero (e.g.
/// `1·1 + 1·(-1)`), so a value test would re-register the column and is
/// incorrect for cancelling sums; it also avoids the O(nnz·row) linear
/// `touched.contains` scan, keeping each row linear in its flop count.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "spgemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let n = b.cols();
    let mut acc = vec![0.0f64; n];
    let mut seen = vec![false; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for r in 0..a.rows() {
        touched.clear();
        let (acols, avals) = a.row(r);
        for (&k, &av) in acols.iter().zip(avals.iter()) {
            let (bcols, bvals) = b.row(k as usize);
            for (&c, &bv) in bcols.iter().zip(bvals.iter()) {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    touched.push(c);
                }
                acc[c as usize] += av * bv;
            }
        }
        touched.sort_unstable();
        for &c in &touched {
            let v = acc[c as usize];
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
            acc[c as usize] = 0.0;
            seen[c as usize] = false;
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw_parts(a.rows(), n, row_ptr, col_idx, values)
}

/// Sparse × dense product `a * b`, producing a dense result.
pub fn sp_dense(a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "sp_dense",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let out_cols = b.cols();
    let mut out = DenseMatrix::zeros(a.rows(), out_cols);
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        let orow = out.row_mut(r);
        for (&k, &av) in cols.iter().zip(vals.iter()) {
            let brow = b.row(k as usize);
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// Epoch-marked scatter accumulator for row-vs-row overlap counting.
///
/// `counts[j]` is valid only while `epochs[j] == epoch`; bumping the epoch
/// invalidates every slot in O(1), so no per-row clearing pass and no
/// hashing is needed. `touched` records which `j > i` were hit so emission
/// is proportional to the row's actual overlap work.
struct OverlapScratch {
    counts: Vec<u32>,
    epochs: Vec<u32>,
    touched: Vec<u32>,
    epoch: u32,
}

impl OverlapScratch {
    /// Builds scratch from caller-supplied zeroed buffers of length `k`
    /// (fresh allocations or pool checkouts — both arrive zeroed, so the
    /// epoch counter can start at 0 and the first row uses epoch 1).
    fn from_zeroed(counts: Vec<u32>, epochs: Vec<u32>, touched: Vec<u32>) -> Self {
        OverlapScratch {
            counts,
            epochs,
            touched,
            epoch: 0,
        }
    }

    fn new(k: usize) -> Self {
        Self::from_zeroed(vec![0; k], vec![0; k], Vec::new())
    }

    /// Scatter-counts the overlap of row `i` against every higher-indexed
    /// row, using the transpose `st` as an inverted column → rows index.
    /// After the call `touched` holds the hit rows (unsorted) and
    /// `counts[j]` their overlap counts.
    fn scan_row(&mut self, s: &CsrMatrix, st: &CsrMatrix, i: usize) {
        self.epoch += 1;
        let e = self.epoch;
        self.touched.clear();
        for &c in s.row_cols(i) {
            let col_rows = st.row_cols(c as usize);
            // Rows within a column are sorted ascending; only j > i is
            // wanted (the product is symmetric).
            let start = col_rows.partition_point(|&j| (j as usize) <= i);
            for &j in &col_rows[start..] {
                let ju = j as usize;
                if self.epochs[ju] != e {
                    self.epochs[ju] = e;
                    self.counts[ju] = 0;
                    self.touched.push(j);
                }
                self.counts[ju] += 1;
            }
        }
    }

    /// Streams the upper-triangle pairs of row `i` whose overlap equals
    /// `target`, in ascending `j` order. `target == 0` walks the row's
    /// complement (rows never touched), which is output-proportional —
    /// every untouched `j > i` is a result.
    fn emit_row_eq<F: FnMut(u32, u32)>(&mut self, k: usize, i: usize, target: usize, f: &mut F) {
        if target == 0 {
            let e = self.epoch;
            for j in (i + 1)..k {
                if self.epochs[j] != e {
                    f(i as u32, j as u32);
                }
            }
        } else {
            self.touched.sort_unstable();
            let t = target as u32;
            for &j in &self.touched {
                if self.counts[j as usize] == t {
                    f(i as u32, j);
                }
            }
        }
    }
}

fn check_binary(s: &CsrMatrix, op: &str) -> Result<()> {
    if !s.is_binary() {
        return Err(LinalgError::InvalidData {
            reason: format!("{op} requires a binary matrix"),
        });
    }
    Ok(())
}

/// Symmetric self-overlap `S ⊙ Sᵀ` of a *binary* matrix: entry `(i, j)`
/// counts the columns shared by rows `i` and `j`.
///
/// Implemented via the transpose as an inverted index with a flat
/// epoch-marked scatter array (no hashing), so the cost is
/// `Σ_c nnz(col c)²` rather than a full row-pair scan; only the upper
/// triangle is accumulated (the product is symmetric) and mirrored on
/// output.
pub fn self_overlap(s: &CsrMatrix) -> Result<CsrMatrix> {
    check_binary(s, "self_overlap")?;
    let st = s.transpose();
    let k = s.rows();
    let mut scratch = OverlapScratch::new(k);
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..k {
        scratch.scan_row(s, &st, i);
        scratch.touched.sort_unstable();
        for &j in &scratch.touched {
            let v = scratch.counts[j as usize] as f64;
            triplets.push((i, j as usize, v));
            triplets.push((j as usize, i, v));
        }
        let nnz = s.row_nnz(i);
        if nnz > 0 {
            triplets.push((i, i, nnz as f64));
        }
    }
    CsrMatrix::from_triplets(k, k, &triplets)
}

/// Streams the upper-triangle pairs `(i, j)`, `i < j`, of `S ⊙ Sᵀ` whose
/// overlap count equals `target` to `emit`, in lexicographic order,
/// without materializing the pair list — the fused, streaming form of
/// Eq. 6 and the hot path of pair enumeration.
pub fn self_overlap_pairs_stream<F: FnMut(usize, usize)>(
    s: &CsrMatrix,
    target: usize,
    mut emit: F,
) -> Result<()> {
    check_binary(s, "self_overlap_pairs_stream")?;
    let st = s.transpose();
    let k = s.rows();
    let mut scratch = OverlapScratch::new(k);
    let mut f = |i: u32, j: u32| emit(i as usize, j as usize);
    for i in 0..k {
        scratch.scan_row(s, &st, i);
        scratch.emit_row_eq(k, i, target, &mut f);
    }
    Ok(())
}

/// Row-blocked parallel variant of [`self_overlap_pairs_stream`]: rows are
/// split into `n_chunks` contiguous blocks, workers grab blocks from a
/// shared cursor ([`crate::ParallelConfig::par_tasks`]) and stream each
/// block's pairs into a per-block sink state created by `make(chunk_idx)`.
/// Block states come back in block order, so the concatenated output is
/// deterministic and identical to the serial stream regardless of thread
/// count or scheduling. Scatter arrays are checked out of the context's
/// `u32` pool per block.
pub fn self_overlap_pairs_stream_chunked<S, M, E>(
    s: &CsrMatrix,
    target: usize,
    exec: &ExecContext,
    n_chunks: usize,
    make: M,
    emit: E,
) -> Result<Vec<S>>
where
    S: Send,
    M: Fn(usize) -> S + Sync,
    E: Fn(&mut S, u32, u32) + Sync,
{
    check_binary(s, "self_overlap_pairs_stream_chunked")?;
    let _span = exec
        .tracer()
        .span("spgemm.self_overlap_join", "linalg")
        .arg("rows", s.rows())
        .arg("chunks", n_chunks)
        .arg("target", target);
    let st = s.transpose();
    let k = s.rows();
    if k == 0 {
        return Ok(Vec::new());
    }
    let n_chunks = n_chunks.clamp(1, k);
    let rows_per = k.div_ceil(n_chunks);
    Ok(exec.parallel().par_tasks(n_chunks, |ci| {
        let lo = ci * rows_per;
        let hi = ((ci + 1) * rows_per).min(k);
        let mut state = make(ci);
        let mut scratch =
            OverlapScratch::from_zeroed(exec.take_u32(k), exec.take_u32(k), exec.take_u32(0));
        {
            let mut f = |i: u32, j: u32| emit(&mut state, i, j);
            for i in lo..hi {
                scratch.scan_row(s, &st, i);
                scratch.emit_row_eq(k, i, target, &mut f);
            }
        }
        exec.put_u32(scratch.counts);
        exec.put_u32(scratch.epochs);
        exec.put_u32(scratch.touched);
        state
    }))
}

/// Streams every index pair `(i, j)`, `0 <= i < j < k`, row-blocked and in
/// deterministic block order — the level-2 all-pairs join (single-predicate
/// slices always share zero predicates), which needs no matrix at all.
pub fn all_pairs_stream_chunked<S, M, E>(
    k: usize,
    exec: &ExecContext,
    n_chunks: usize,
    make: M,
    emit: E,
) -> Vec<S>
where
    S: Send,
    M: Fn(usize) -> S + Sync,
    E: Fn(&mut S, u32, u32) + Sync,
{
    if k == 0 {
        return Vec::new();
    }
    let _span = exec
        .tracer()
        .span("spgemm.all_pairs_join", "linalg")
        .arg("rows", k)
        .arg("chunks", n_chunks);
    let n_chunks = n_chunks.clamp(1, k);
    let rows_per = k.div_ceil(n_chunks);
    exec.parallel().par_tasks(n_chunks, |ci| {
        let lo = ci * rows_per;
        let hi = ((ci + 1) * rows_per).min(k);
        let mut state = make(ci);
        for i in lo..hi {
            for j in (i + 1)..k {
                emit(&mut state, i as u32, j as u32);
            }
        }
        state
    })
}

/// Upper-triangle pairs `(i, j)`, `i < j`, of `S ⊙ Sᵀ` whose overlap count
/// equals `target`, materialized and sorted — the collecting wrapper around
/// [`self_overlap_pairs_stream`] (which already emits in lexicographic
/// order). Prefer the streaming form on hot paths.
pub fn self_overlap_pairs_eq(s: &CsrMatrix, target: usize) -> Result<Vec<(usize, usize)>> {
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    self_overlap_pairs_stream(s, target, |i, j| pairs.push((i, j)))?;
    Ok(pairs)
}

/// Result of blocked match counting: for one block of slices, the per-row
/// match counts as a dense `rows × block` matrix.
///
/// This materializes the paper's intermediate `(X ⊙ Sᵀ)` for a block of
/// `b` slices, mirroring the data-parallel formulation whose memory
/// behaviour §5.4's block-size experiment studies.
pub fn count_matches_block(
    x: &CsrMatrix,
    slices: &CsrMatrix,
    block: std::ops::Range<usize>,
) -> Result<DenseMatrix> {
    if x.cols() != slices.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "count_matches_block",
            lhs: x.shape(),
            rhs: slices.shape(),
        });
    }
    if block.end > slices.rows() {
        return Err(LinalgError::IndexOutOfBounds {
            op: "count_matches_block",
            index: block.end,
            bound: slices.rows() + 1,
        });
    }
    let b = block.len();
    // Inverted index: column -> local slice ids in the block.
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); x.cols()];
    for (local, s) in block.clone().enumerate() {
        for &c in slices.row_cols(s) {
            inv[c as usize].push(local as u32);
        }
    }
    let mut out = DenseMatrix::zeros(x.rows(), b);
    for r in 0..x.rows() {
        let orow = out.row_mut(r);
        for &c in x.row_cols(r) {
            for &local in &inv[c as usize] {
                orow[local as usize] += 1.0;
            }
        }
    }
    Ok(out)
}

/// Parallel variant of [`count_matches_block`]: row partitions of `X` are
/// processed by separate threads writing disjoint chunks of the output.
/// Parallelism comes from the execution context; the `rows × b`
/// intermediate is checked out of the context's scratch pool.
pub fn count_matches_block_parallel(
    x: &CsrMatrix,
    slices: &CsrMatrix,
    block: std::ops::Range<usize>,
    exec: &ExecContext,
) -> Result<DenseMatrix> {
    let mut buf = exec.take_f64(0);
    let b = count_matches_block_into(x, slices, block, exec, &mut buf)?;
    // Ownership of the scratch transfers into the returned matrix, so it
    // is intentionally not returned to the pool here.
    DenseMatrix::from_vec(x.rows(), b, buf)
}

/// Core of [`count_matches_block_parallel`] writing into a caller-owned
/// flat `rows × b` row-major buffer (resized and zeroed here), so the
/// level loop can reuse one scratch allocation across all blocks and
/// levels. Returns the block width `b`.
pub fn count_matches_block_into(
    x: &CsrMatrix,
    slices: &CsrMatrix,
    block: std::ops::Range<usize>,
    exec: &ExecContext,
    out: &mut Vec<f64>,
) -> Result<usize> {
    if x.cols() != slices.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "count_matches_block_parallel",
            lhs: x.shape(),
            rhs: slices.shape(),
        });
    }
    if block.end > slices.rows() {
        return Err(LinalgError::IndexOutOfBounds {
            op: "count_matches_block_parallel",
            index: block.end,
            bound: slices.rows() + 1,
        });
    }
    let b = block.len();
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); x.cols()];
    for (local, s) in block.clone().enumerate() {
        for &c in slices.row_cols(s) {
            inv[c as usize].push(local as u32);
        }
    }
    out.clear();
    out.resize(x.rows() * b, 0.0);
    if b == 0 {
        return Ok(0);
    }
    let inv_ref = &inv;
    exec.parallel().run_on_chunks(out, b, |row0, chunk| {
        let rows = chunk.len() / b;
        for i in 0..rows {
            let orow = &mut chunk[i * b..(i + 1) * b];
            for &c in x.row_cols(row0 + i) {
                for &local in &inv_ref[c as usize] {
                    orow[local as usize] += 1.0;
                }
            }
        }
    });
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(rows: &[Vec<u32>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_binary_rows(cols, rows).unwrap()
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let b = CsrMatrix::from_triplets(3, 2, &[(0, 1, 4.0), (1, 0, 5.0), (2, 0, 6.0)]).unwrap();
        let c = spgemm(&a, &b).unwrap();
        let expect = a.to_dense().matmul(&b.to_dense()).unwrap();
        assert_eq!(c.to_dense(), expect);
        assert!(spgemm(&a, &a).is_err());
    }

    #[test]
    fn spgemm_keeps_structural_zeros_from_cancelling_sums() {
        // Row 0 of `a` hits both rows of `b`; in column 0 the partial sums
        // are 1·1 + 1·(-1) = 0 — the entry cancels exactly and must simply
        // be dropped, not corrupt occupancy tracking for column 1.
        let a = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let b =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, -1.0), (1, 1, 3.0)])
                .unwrap();
        let c = spgemm(&a, &b).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(0, 1), 5.0);
    }

    #[test]
    fn sp_dense_matches_dense() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 2.0)]).unwrap();
        let b = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(sp_dense(&a, &b).unwrap(), a.to_dense().matmul(&b).unwrap());
        let bad = DenseMatrix::zeros(2, 2);
        assert!(sp_dense(&a, &bad).is_err());
    }

    #[test]
    fn self_overlap_counts_shared_columns() {
        // Slices ab, ac, bc over columns {a=0, b=1, c=2}.
        let s = binary(&[vec![0, 1], vec![0, 2], vec![1, 2]], 3);
        let o = self_overlap(&s).unwrap();
        let expect = spgemm(&s, &s.transpose()).unwrap();
        assert_eq!(o.to_dense(), expect.to_dense());
        assert_eq!(o.get(0, 1), 1.0); // ab ∩ ac = {a}
        assert_eq!(o.get(0, 0), 2.0);
    }

    #[test]
    fn self_overlap_rejects_non_binary() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 0, 2.0)]).unwrap();
        assert!(self_overlap(&m).is_err());
    }

    #[test]
    fn overlap_pairs_eq_fused() {
        let s = binary(&[vec![0, 1], vec![0, 2], vec![1, 2], vec![3, 4]], 5);
        // Pairs sharing exactly 1 column: (0,1), (0,2), (1,2).
        assert_eq!(
            self_overlap_pairs_eq(&s, 1).unwrap(),
            vec![(0, 1), (0, 2), (1, 2)]
        );
        // Pairs sharing 0 columns: everything with slice 3.
        assert_eq!(
            self_overlap_pairs_eq(&s, 0).unwrap(),
            vec![(0, 3), (1, 3), (2, 3)]
        );
    }

    #[test]
    fn streaming_all_pairs_agrees_with_target_zero() {
        // Single-predicate slices on distinct columns never share a
        // column, so the level-2 all-pairs stream and the target-0 overlap
        // join must produce the identical pair sequence.
        let k = 7;
        let s = binary(&(0..k as u32).map(|c| vec![c]).collect::<Vec<_>>(), k);
        let from_join = self_overlap_pairs_eq(&s, 0).unwrap();
        let exec = ExecContext::new(3);
        let chunks = all_pairs_stream_chunked(
            k,
            &exec,
            4,
            |_| Vec::new(),
            |out: &mut Vec<(usize, usize)>, i, j| out.push((i as usize, j as usize)),
        );
        let from_all_pairs: Vec<(usize, usize)> = chunks.into_iter().flatten().collect();
        assert_eq!(from_all_pairs.len(), k * (k - 1) / 2);
        assert_eq!(from_all_pairs, from_join);
    }

    #[test]
    fn chunked_stream_matches_serial_any_threads() {
        // 12 slices over 10 columns with varying overlap structure.
        let rows: Vec<Vec<u32>> = (0..12)
            .map(|i| {
                let a = (i % 5) as u32;
                let b = 5 + (i % 3) as u32;
                let c = 8 + (i % 2) as u32;
                let mut r = vec![a, b, c];
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let s = binary(&rows, 10);
        for target in 0..4 {
            let serial = self_overlap_pairs_eq(&s, target).unwrap();
            for threads in [1, 2, 4] {
                let exec = ExecContext::new(threads);
                for n_chunks in [1, 3, 12, 40] {
                    let chunks = self_overlap_pairs_stream_chunked(
                        &s,
                        target,
                        &exec,
                        n_chunks,
                        |_| Vec::new(),
                        |out: &mut Vec<(usize, usize)>, i, j| out.push((i as usize, j as usize)),
                    )
                    .unwrap();
                    let streamed: Vec<(usize, usize)> = chunks.into_iter().flatten().collect();
                    assert_eq!(
                        streamed, serial,
                        "target {target} threads {threads} chunks {n_chunks}"
                    );
                }
            }
        }
    }

    #[test]
    fn stream_rejects_non_binary() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 0, 2.0)]).unwrap();
        assert!(self_overlap_pairs_stream(&m, 1, |_, _| {}).is_err());
        let exec = ExecContext::serial();
        assert!(
            self_overlap_pairs_stream_chunked(&m, 1, &exec, 1, |_| (), |_: &mut (), _, _| {})
                .is_err()
        );
    }

    #[test]
    fn count_matches_equals_matmul() {
        // X: 4 rows over 5 one-hot columns; S: 2 slices.
        let x = binary(&[vec![0, 3], vec![0, 4], vec![1, 3], vec![0, 3]], 5);
        let s = binary(&[vec![0, 3], vec![3]], 5);
        let counts = count_matches_block(&x, &s, 0..2).unwrap();
        let expect = spgemm(&x, &s.transpose()).unwrap().to_dense();
        assert_eq!(counts, expect);
        // Row 0 matches both predicates of slice 0.
        assert_eq!(counts.get(0, 0), 2.0);
        assert_eq!(counts.get(1, 0), 1.0);
    }

    #[test]
    fn count_matches_block_subrange() {
        let x = binary(&[vec![0, 3], vec![1, 4]], 5);
        let s = binary(&[vec![0], vec![1], vec![4]], 5);
        let counts = count_matches_block(&x, &s, 1..3).unwrap();
        assert_eq!(counts.shape(), (2, 2));
        assert_eq!(counts.get(1, 0), 1.0); // row 1 vs slice 1 (col 1)
        assert_eq!(counts.get(1, 1), 1.0); // row 1 vs slice 2 (col 4)
        assert_eq!(counts.get(0, 0), 0.0);
        assert!(count_matches_block(&x, &s, 1..4).is_err());
    }

    #[test]
    fn count_matches_parallel_matches_serial() {
        let x = binary(
            &(0..50)
                .map(|i| vec![(i % 5) as u32, 5 + (i % 3) as u32])
                .collect::<Vec<_>>(),
            8,
        );
        let s = binary(&[vec![0, 5], vec![1, 6], vec![2], vec![0, 6]], 8);
        let serial = count_matches_block(&x, &s, 0..4).unwrap();
        for threads in [1, 2, 4] {
            let par =
                count_matches_block_parallel(&x, &s, 0..4, &ExecContext::new(threads)).unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn count_matches_into_reuses_scratch() {
        let x = binary(
            &(0..20)
                .map(|i| vec![(i % 4) as u32, 4 + (i % 2) as u32])
                .collect::<Vec<_>>(),
            6,
        );
        let s = binary(&[vec![0, 4], vec![1], vec![2, 5]], 6);
        let exec = ExecContext::new(2);
        let mut scratch = exec.take_f64(0);
        // First fill leaves stale data; the second call must zero it.
        let b = count_matches_block_into(&x, &s, 0..3, &exec, &mut scratch).unwrap();
        assert_eq!(b, 3);
        let expected = count_matches_block(&x, &s, 1..3).unwrap();
        let b2 = count_matches_block_into(&x, &s, 1..3, &exec, &mut scratch).unwrap();
        assert_eq!(b2, 2);
        assert_eq!(&scratch[..], expected.data());
    }
}
