//! Sparse matrix products.
//!
//! Three products carry the SliceLine algorithm:
//!
//! * `S ⊙ Sᵀ` — the symmetric self-join counting predicate overlap between
//!   slice pairs (Eq. 6). [`self_overlap`] computes it directly from the
//!   transpose (an inverted column → row index), exploiting symmetry like
//!   the `cblas_dsyrk` call the paper footnotes.
//! * `X ⊙ Sᵀ` — the evaluation product counting how many of a slice's `L`
//!   predicates each row satisfies (Eq. 10). [`count_matches_block`] produces the
//!   (row, slice, count) structure blocked over slices.
//! * general `A ⊙ B` sparse-sparse products ([`spgemm`]) used by the
//!   reference (pure linear algebra) backend.

use crate::context::ExecContext;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};

/// General sparse × sparse product `a * b` using the classic Gustavson
/// row-wise algorithm with a dense accumulator of size `b.cols()`.
///
/// Occupancy is tracked with a dense `seen` flag array rather than an
/// `acc[c] == 0.0` test: a partial sum can pass through zero (e.g.
/// `1·1 + 1·(-1)`), so a value test would re-register the column and is
/// incorrect for cancelling sums; it also avoids the O(nnz·row) linear
/// `touched.contains` scan, keeping each row linear in its flop count.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "spgemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let n = b.cols();
    let mut acc = vec![0.0f64; n];
    let mut seen = vec![false; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for r in 0..a.rows() {
        touched.clear();
        let (acols, avals) = a.row(r);
        for (&k, &av) in acols.iter().zip(avals.iter()) {
            let (bcols, bvals) = b.row(k as usize);
            for (&c, &bv) in bcols.iter().zip(bvals.iter()) {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    touched.push(c);
                }
                acc[c as usize] += av * bv;
            }
        }
        touched.sort_unstable();
        for &c in &touched {
            let v = acc[c as usize];
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
            acc[c as usize] = 0.0;
            seen[c as usize] = false;
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw_parts(a.rows(), n, row_ptr, col_idx, values)
}

/// Sparse × dense product `a * b`, producing a dense result.
pub fn sp_dense(a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "sp_dense",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let out_cols = b.cols();
    let mut out = DenseMatrix::zeros(a.rows(), out_cols);
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        let orow = out.row_mut(r);
        for (&k, &av) in cols.iter().zip(vals.iter()) {
            let brow = b.row(k as usize);
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// Symmetric self-overlap `S ⊙ Sᵀ` of a *binary* matrix: entry `(i, j)`
/// counts the columns shared by rows `i` and `j`.
///
/// Implemented via the transpose as an inverted index so the cost is
/// `Σ_c nnz(col c)²` rather than a full row-pair scan, and only the upper
/// triangle is accumulated (the product is symmetric); the result is
/// mirrored on output.
pub fn self_overlap(s: &CsrMatrix) -> Result<CsrMatrix> {
    if !s.is_binary() {
        return Err(LinalgError::InvalidData {
            reason: "self_overlap requires a binary matrix".to_string(),
        });
    }
    let st = s.transpose();
    let k = s.rows();
    // Accumulate pair counts in a hash map keyed by (i, j) with i < j;
    // diagonal entries are just row nnz counts.
    let mut counts: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    for c in 0..st.rows() {
        let rows = st.row_cols(c);
        for (a, &i) in rows.iter().enumerate() {
            for &j in &rows[a + 1..] {
                *counts.entry((i, j)).or_insert(0.0) += 1.0;
            }
        }
    }
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(counts.len() * 2 + k);
    for ((i, j), v) in counts {
        triplets.push((i as usize, j as usize, v));
        triplets.push((j as usize, i as usize, v));
    }
    for r in 0..k {
        let nnz = s.row_nnz(r);
        if nnz > 0 {
            triplets.push((r, r, nnz as f64));
        }
    }
    CsrMatrix::from_triplets(k, k, &triplets)
}

/// Upper-triangle pairs `(i, j)`, `i < j`, of `S ⊙ Sᵀ` whose overlap count
/// equals `target` — the fused form of Eq. 6 that never materializes the
/// `k × k` product. This is the hot path of pair enumeration.
pub fn self_overlap_pairs_eq(s: &CsrMatrix, target: usize) -> Result<Vec<(usize, usize)>> {
    if !s.is_binary() {
        return Err(LinalgError::InvalidData {
            reason: "self_overlap_pairs_eq requires a binary matrix".to_string(),
        });
    }
    let st = s.transpose();
    let mut counts: std::collections::HashMap<(u32, u32), usize> = std::collections::HashMap::new();
    for c in 0..st.rows() {
        let rows = st.row_cols(c);
        for (a, &i) in rows.iter().enumerate() {
            for &j in &rows[a + 1..] {
                *counts.entry((i, j)).or_insert(0) += 1;
            }
        }
    }
    let mut pairs: Vec<(usize, usize)> = if target == 0 {
        // Zero overlap means the pair never shares a column: enumerate all
        // pairs and subtract those with counted overlap.
        let k = s.rows();
        let mut all = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                if !counts.contains_key(&(i as u32, j as u32)) {
                    all.push((i, j));
                }
            }
        }
        all
    } else {
        counts
            .into_iter()
            .filter_map(|((i, j), v)| (v == target).then_some((i as usize, j as usize)))
            .collect()
    };
    pairs.sort_unstable();
    Ok(pairs)
}

/// Result of blocked match counting: for one block of slices, the per-row
/// match counts as a dense `rows × block` matrix.
///
/// This materializes the paper's intermediate `(X ⊙ Sᵀ)` for a block of
/// `b` slices, mirroring the data-parallel formulation whose memory
/// behaviour §5.4's block-size experiment studies.
pub fn count_matches_block(
    x: &CsrMatrix,
    slices: &CsrMatrix,
    block: std::ops::Range<usize>,
) -> Result<DenseMatrix> {
    if x.cols() != slices.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "count_matches_block",
            lhs: x.shape(),
            rhs: slices.shape(),
        });
    }
    if block.end > slices.rows() {
        return Err(LinalgError::IndexOutOfBounds {
            op: "count_matches_block",
            index: block.end,
            bound: slices.rows() + 1,
        });
    }
    let b = block.len();
    // Inverted index: column -> local slice ids in the block.
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); x.cols()];
    for (local, s) in block.clone().enumerate() {
        for &c in slices.row_cols(s) {
            inv[c as usize].push(local as u32);
        }
    }
    let mut out = DenseMatrix::zeros(x.rows(), b);
    for r in 0..x.rows() {
        let orow = out.row_mut(r);
        for &c in x.row_cols(r) {
            for &local in &inv[c as usize] {
                orow[local as usize] += 1.0;
            }
        }
    }
    Ok(out)
}

/// Parallel variant of [`count_matches_block`]: row partitions of `X` are
/// processed by separate threads writing disjoint chunks of the output.
/// Parallelism comes from the execution context; the `rows × b`
/// intermediate is checked out of the context's scratch pool.
pub fn count_matches_block_parallel(
    x: &CsrMatrix,
    slices: &CsrMatrix,
    block: std::ops::Range<usize>,
    exec: &ExecContext,
) -> Result<DenseMatrix> {
    let mut buf = exec.take_f64(0);
    let b = count_matches_block_into(x, slices, block, exec, &mut buf)?;
    // Ownership of the scratch transfers into the returned matrix, so it
    // is intentionally not returned to the pool here.
    DenseMatrix::from_vec(x.rows(), b, buf)
}

/// Core of [`count_matches_block_parallel`] writing into a caller-owned
/// flat `rows × b` row-major buffer (resized and zeroed here), so the
/// level loop can reuse one scratch allocation across all blocks and
/// levels. Returns the block width `b`.
pub fn count_matches_block_into(
    x: &CsrMatrix,
    slices: &CsrMatrix,
    block: std::ops::Range<usize>,
    exec: &ExecContext,
    out: &mut Vec<f64>,
) -> Result<usize> {
    if x.cols() != slices.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "count_matches_block_parallel",
            lhs: x.shape(),
            rhs: slices.shape(),
        });
    }
    if block.end > slices.rows() {
        return Err(LinalgError::IndexOutOfBounds {
            op: "count_matches_block_parallel",
            index: block.end,
            bound: slices.rows() + 1,
        });
    }
    let b = block.len();
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); x.cols()];
    for (local, s) in block.clone().enumerate() {
        for &c in slices.row_cols(s) {
            inv[c as usize].push(local as u32);
        }
    }
    out.clear();
    out.resize(x.rows() * b, 0.0);
    if b == 0 {
        return Ok(0);
    }
    let inv_ref = &inv;
    exec.parallel().run_on_chunks(out, b, |row0, chunk| {
        let rows = chunk.len() / b;
        for i in 0..rows {
            let orow = &mut chunk[i * b..(i + 1) * b];
            for &c in x.row_cols(row0 + i) {
                for &local in &inv_ref[c as usize] {
                    orow[local as usize] += 1.0;
                }
            }
        }
    });
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(rows: &[Vec<u32>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_binary_rows(cols, rows).unwrap()
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let b = CsrMatrix::from_triplets(3, 2, &[(0, 1, 4.0), (1, 0, 5.0), (2, 0, 6.0)]).unwrap();
        let c = spgemm(&a, &b).unwrap();
        let expect = a.to_dense().matmul(&b.to_dense()).unwrap();
        assert_eq!(c.to_dense(), expect);
        assert!(spgemm(&a, &a).is_err());
    }

    #[test]
    fn spgemm_keeps_structural_zeros_from_cancelling_sums() {
        // Row 0 of `a` hits both rows of `b`; in column 0 the partial sums
        // are 1·1 + 1·(-1) = 0 — the entry cancels exactly and must simply
        // be dropped, not corrupt occupancy tracking for column 1.
        let a = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let b =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, -1.0), (1, 1, 3.0)])
                .unwrap();
        let c = spgemm(&a, &b).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(0, 1), 5.0);
    }

    #[test]
    fn sp_dense_matches_dense() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 2.0)]).unwrap();
        let b = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(sp_dense(&a, &b).unwrap(), a.to_dense().matmul(&b).unwrap());
        let bad = DenseMatrix::zeros(2, 2);
        assert!(sp_dense(&a, &bad).is_err());
    }

    #[test]
    fn self_overlap_counts_shared_columns() {
        // Slices ab, ac, bc over columns {a=0, b=1, c=2}.
        let s = binary(&[vec![0, 1], vec![0, 2], vec![1, 2]], 3);
        let o = self_overlap(&s).unwrap();
        let expect = spgemm(&s, &s.transpose()).unwrap();
        assert_eq!(o.to_dense(), expect.to_dense());
        assert_eq!(o.get(0, 1), 1.0); // ab ∩ ac = {a}
        assert_eq!(o.get(0, 0), 2.0);
    }

    #[test]
    fn self_overlap_rejects_non_binary() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 0, 2.0)]).unwrap();
        assert!(self_overlap(&m).is_err());
    }

    #[test]
    fn overlap_pairs_eq_fused() {
        let s = binary(&[vec![0, 1], vec![0, 2], vec![1, 2], vec![3, 4]], 5);
        // Pairs sharing exactly 1 column: (0,1), (0,2), (1,2).
        assert_eq!(
            self_overlap_pairs_eq(&s, 1).unwrap(),
            vec![(0, 1), (0, 2), (1, 2)]
        );
        // Pairs sharing 0 columns: everything with slice 3.
        assert_eq!(
            self_overlap_pairs_eq(&s, 0).unwrap(),
            vec![(0, 3), (1, 3), (2, 3)]
        );
    }

    #[test]
    fn count_matches_equals_matmul() {
        // X: 4 rows over 5 one-hot columns; S: 2 slices.
        let x = binary(&[vec![0, 3], vec![0, 4], vec![1, 3], vec![0, 3]], 5);
        let s = binary(&[vec![0, 3], vec![3]], 5);
        let counts = count_matches_block(&x, &s, 0..2).unwrap();
        let expect = spgemm(&x, &s.transpose()).unwrap().to_dense();
        assert_eq!(counts, expect);
        // Row 0 matches both predicates of slice 0.
        assert_eq!(counts.get(0, 0), 2.0);
        assert_eq!(counts.get(1, 0), 1.0);
    }

    #[test]
    fn count_matches_block_subrange() {
        let x = binary(&[vec![0, 3], vec![1, 4]], 5);
        let s = binary(&[vec![0], vec![1], vec![4]], 5);
        let counts = count_matches_block(&x, &s, 1..3).unwrap();
        assert_eq!(counts.shape(), (2, 2));
        assert_eq!(counts.get(1, 0), 1.0); // row 1 vs slice 1 (col 1)
        assert_eq!(counts.get(1, 1), 1.0); // row 1 vs slice 2 (col 4)
        assert_eq!(counts.get(0, 0), 0.0);
        assert!(count_matches_block(&x, &s, 1..4).is_err());
    }

    #[test]
    fn count_matches_parallel_matches_serial() {
        let x = binary(
            &(0..50)
                .map(|i| vec![(i % 5) as u32, 5 + (i % 3) as u32])
                .collect::<Vec<_>>(),
            8,
        );
        let s = binary(&[vec![0, 5], vec![1, 6], vec![2], vec![0, 6]], 8);
        let serial = count_matches_block(&x, &s, 0..4).unwrap();
        for threads in [1, 2, 4] {
            let par =
                count_matches_block_parallel(&x, &s, 0..4, &ExecContext::new(threads)).unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn count_matches_into_reuses_scratch() {
        let x = binary(
            &(0..20)
                .map(|i| vec![(i % 4) as u32, 4 + (i % 2) as u32])
                .collect::<Vec<_>>(),
            6,
        );
        let s = binary(&[vec![0, 4], vec![1], vec![2, 5]], 6);
        let exec = ExecContext::new(2);
        let mut scratch = exec.take_f64(0);
        // First fill leaves stale data; the second call must zero it.
        let b = count_matches_block_into(&x, &s, 0..3, &exec, &mut scratch).unwrap();
        assert_eq!(b, 3);
        let expected = count_matches_block(&x, &s, 1..3).unwrap();
        let b2 = count_matches_block_into(&x, &s, 1..3, &exec, &mut scratch).unwrap();
        assert_eq!(b2, 2);
        assert_eq!(&scratch[..], expected.data());
    }
}
