//! Unified execution context: thread pool + scratch-buffer reuse +
//! per-level telemetry.
//!
//! SystemDS gives SliceLine a runtime context for free — thread pools,
//! buffer management and instruction-level statistics. This module is the
//! reproduction's equivalent: a single [`ExecContext`] handle that every
//! kernel and the level loop take instead of a loose [`ParallelConfig`]
//! plus implicit allocation.
//!
//! An `ExecContext` owns three things:
//!
//! 1. **Parallelism** — the [`ParallelConfig`] describing how many
//!    scoped threads kernels may fan out to. [`ExecContext::with_threads`]
//!    derives a view with a different thread count that *shares* the pool
//!    and telemetry (used by the simulated cluster to give each node its
//!    own per-node parallelism while all nodes feed one stats sink).
//! 2. **Scratch buffers** — a checkout/return pool of `Vec<f64>` /
//!    `Vec<u32>` / `Vec<u64>` arenas so the blocked kernel's `n × b`
//!    intermediate, the bitmap kernel's packed word buffers, and each
//!    level's `sizes/errs/max_errs/scores` vectors are reused across
//!    levels instead of re-allocated. Pooling can be switched off
//!    ([`ExecContext::set_pooling`]) to measure the allocation churn it
//!    removes.
//! 3. **Telemetry** — cheap per-level counters (candidates generated,
//!    deduplicated, pruned by each rule, evaluated, per-node partials),
//!    the kernel chosen by `EvalKernel::Auto`, and wall time per stage.
//!    Disabled by default; when enabled the cli renders the table and
//!    bench binaries dump it as JSON ([`ExecStats::to_json`]).
//!
//! The context is cheap to clone (an `Arc` plus a `Copy` config) and all
//! interior state is thread-safe, so kernels running on scoped threads
//! can check buffers in and out concurrently.

use crate::parallel::ParallelConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Maximum buffers retained per element type; beyond this, returned
/// buffers are dropped (bounds worst-case pool memory).
const MAX_POOLED: usize = 64;

/// Pipeline stage attributed in per-level wall-time telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Candidate generation + pruning (`get_pair_candidates`).
    Enumerate,
    /// Slice evaluation (blocked / fused kernels).
    Evaluate,
    /// Top-K maintenance.
    TopK,
}

/// Telemetry for one lattice level.
#[derive(Debug, Clone, Default)]
pub struct LevelProfile {
    /// Lattice level (1 = basic slices).
    pub level: usize,
    /// Candidates generated before dedup/pruning (level 1: one-hot columns).
    pub candidates: u64,
    /// Candidates removed as duplicates of an earlier pair merge.
    pub deduped: u64,
    /// Candidates discarded by the size bound (Eq. 7).
    pub pruned_size: u64,
    /// Candidates discarded by the score upper bound (Eq. 9).
    pub pruned_score: u64,
    /// Candidates discarded by missing-parent handling.
    pub pruned_parents: u64,
    /// Slices actually evaluated by a kernel.
    pub evaluated: u64,
    /// Per-node partial aggregations merged (distributed runs).
    pub partials: u64,
    /// Bitmap-kernel evaluations served incrementally from a cached
    /// parent bitmap (one `AND` instead of `L`).
    pub cache_hits: u64,
    /// Eval kernel that ran (`"blocked"` / `"fused"` / `"bitmap"`), if any.
    pub kernel: Option<&'static str>,
    /// Enumeration kernel that ran (`"serial"` / `"sharded"`), if any.
    pub enum_kernel: Option<&'static str>,
    /// Wall time in candidate enumeration.
    pub enumerate: Duration,
    /// Wall time in the enumeration join (pair generation + merge), a
    /// sub-span of `enumerate`.
    pub join: Duration,
    /// Wall time in enumeration dedup + final pruning, a sub-span of
    /// `enumerate`.
    pub dedup: Duration,
    /// Wall time in slice evaluation.
    pub evaluate: Duration,
    /// Wall time in top-K maintenance.
    pub topk: Duration,
}

/// Snapshot of scratch-pool activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `Vec<f64>` checkouts served from the pool.
    pub f64_reused: u64,
    /// `Vec<f64>` checkouts that had to allocate fresh.
    pub f64_allocated: u64,
    /// `Vec<u32>` checkouts served from the pool.
    pub u32_reused: u64,
    /// `Vec<u32>` checkouts that had to allocate fresh.
    pub u32_allocated: u64,
    /// `Vec<u64>` (bitmap word) checkouts served from the pool.
    pub u64_reused: u64,
    /// `Vec<u64>` (bitmap word) checkouts that had to allocate fresh.
    pub u64_allocated: u64,
    /// Bytes of capacity served from the pool instead of the allocator.
    pub bytes_reused: u64,
}

impl PoolStats {
    /// Total checkouts served from the pool.
    pub fn reused(&self) -> u64 {
        self.f64_reused + self.u32_reused + self.u64_reused
    }

    /// Total checkouts that allocated fresh.
    pub fn allocated(&self) -> u64 {
        self.f64_allocated + self.u32_allocated + self.u64_allocated
    }
}

/// Execution statistics snapshot: prepare time, per-level profiles and
/// pool counters. Render with [`ExecStats::render_table`] or serialize
/// with [`ExecStats::to_json`].
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Wall time of data preparation (validation + one-hot encoding).
    pub prepare: Duration,
    /// Per-level execution profiles in level order.
    pub levels: Vec<LevelProfile>,
    /// Scratch-pool counters accumulated over the context lifetime.
    pub pool: PoolStats,
}

impl ExecStats {
    /// Sum of candidates generated across levels.
    pub fn total_candidates(&self) -> u64 {
        self.levels.iter().map(|l| l.candidates).sum()
    }

    /// Sum of slices evaluated across levels.
    pub fn total_evaluated(&self) -> u64 {
        self.levels.iter().map(|l| l.evaluated).sum()
    }

    /// Renders the per-level table the cli prints under `--stats`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<6} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>7} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "level",
            "cands",
            "dedup",
            "pr:size",
            "pr:score",
            "pr:par",
            "evaluated",
            "partials",
            "bmhits",
            "kernel",
            "ekernel",
            "enum(s)",
            "join(s)",
            "dedup(s)",
            "eval(s)",
            "topk(s)",
        ));
        for l in &self.levels {
            out.push_str(&format!(
                "{:<6} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>7} {:>8} {:>8} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}\n",
                l.level,
                l.candidates,
                l.deduped,
                l.pruned_size,
                l.pruned_score,
                l.pruned_parents,
                l.evaluated,
                l.partials,
                l.cache_hits,
                l.kernel.unwrap_or("-"),
                l.enum_kernel.unwrap_or("-"),
                l.enumerate.as_secs_f64(),
                l.join.as_secs_f64(),
                l.dedup.as_secs_f64(),
                l.evaluate.as_secs_f64(),
                l.topk.as_secs_f64(),
            ));
        }
        out.push_str(&format!(
            "prepare {:.4}s · pool: {} reused / {} allocated ({} bytes served from pool)\n",
            self.prepare.as_secs_f64(),
            self.pool.reused(),
            self.pool.allocated(),
            self.pool.bytes_reused,
        ));
        out
    }

    /// Serializes the snapshot as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"prepare_secs\":{:.6},",
            self.prepare.as_secs_f64()
        ));
        out.push_str("\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"level\":{},\"candidates\":{},\"deduped\":{},\"pruned_size\":{},\
                 \"pruned_score\":{},\"pruned_parents\":{},\"evaluated\":{},\"partials\":{},\
                 \"cache_hits\":{},\"kernel\":{},\"enum_kernel\":{},\"enumerate_secs\":{:.6},\
                 \"join_secs\":{:.6},\"dedup_secs\":{:.6},\
                 \"evaluate_secs\":{:.6},\"topk_secs\":{:.6}}}",
                l.level,
                l.candidates,
                l.deduped,
                l.pruned_size,
                l.pruned_score,
                l.pruned_parents,
                l.evaluated,
                l.partials,
                l.cache_hits,
                match l.kernel {
                    Some(k) => format!("\"{k}\""),
                    None => "null".to_string(),
                },
                match l.enum_kernel {
                    Some(k) => format!("\"{k}\""),
                    None => "null".to_string(),
                },
                l.enumerate.as_secs_f64(),
                l.join.as_secs_f64(),
                l.dedup.as_secs_f64(),
                l.evaluate.as_secs_f64(),
                l.topk.as_secs_f64(),
            ));
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"pool\":{{\"f64_reused\":{},\"f64_allocated\":{},\"u32_reused\":{},\
             \"u32_allocated\":{},\"u64_reused\":{},\"u64_allocated\":{},\"bytes_reused\":{}}}",
            self.pool.f64_reused,
            self.pool.f64_allocated,
            self.pool.u32_reused,
            self.pool.u32_allocated,
            self.pool.u64_reused,
            self.pool.u64_allocated,
            self.pool.bytes_reused,
        ));
        out.push('}');
        out
    }
}

/// Scratch-buffer pool: stacks of returned vectors plus activity counters.
#[derive(Debug, Default)]
struct BufferPool {
    enabled: AtomicBool,
    f64_bufs: Mutex<Vec<Vec<f64>>>,
    u32_bufs: Mutex<Vec<Vec<u32>>>,
    u64_bufs: Mutex<Vec<Vec<u64>>>,
    f64_reused: AtomicU64,
    f64_allocated: AtomicU64,
    u32_reused: AtomicU64,
    u32_allocated: AtomicU64,
    u64_reused: AtomicU64,
    u64_allocated: AtomicU64,
    bytes_reused: AtomicU64,
}

impl BufferPool {
    fn new() -> Self {
        BufferPool {
            enabled: AtomicBool::new(true),
            ..Default::default()
        }
    }
}

/// Telemetry sink: level profiles behind a mutex, guarded by a flag so
/// the disabled path costs one atomic load.
#[derive(Debug, Default)]
struct Telemetry {
    enabled: AtomicBool,
    prepare_nanos: AtomicU64,
    levels: Mutex<Vec<LevelProfile>>,
}

#[derive(Debug, Default)]
struct CtxInner {
    pool: BufferPool,
    telemetry: Telemetry,
}

/// Shared execution context threaded through every kernel and level-loop
/// entry point. See the [module docs](self) for the full story.
#[derive(Debug, Clone)]
pub struct ExecContext {
    parallel: ParallelConfig,
    inner: Arc<CtxInner>,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::with_parallel(ParallelConfig::default())
    }
}

impl ExecContext {
    /// Context with `threads` worker threads.
    pub fn new(threads: usize) -> Self {
        ExecContext::with_parallel(ParallelConfig::new(threads))
    }

    /// Single-threaded context.
    pub fn serial() -> Self {
        ExecContext::with_parallel(ParallelConfig::serial())
    }

    /// Context wrapping an existing parallel configuration.
    pub fn with_parallel(parallel: ParallelConfig) -> Self {
        ExecContext {
            parallel,
            inner: Arc::new(CtxInner {
                pool: BufferPool::new(),
                telemetry: Telemetry::default(),
            }),
        }
    }

    /// A view with a different thread count that **shares** this
    /// context's buffer pool and telemetry sink.
    pub fn with_threads(&self, threads: usize) -> Self {
        ExecContext {
            parallel: ParallelConfig::new(threads),
            inner: Arc::clone(&self.inner),
        }
    }

    /// The parallelism configuration kernels should fan out with.
    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.parallel.threads()
    }

    // ---- scratch-buffer pool -------------------------------------------

    /// Checks out a zeroed `Vec<f64>` of length `len` (reusing pooled
    /// capacity when available). Return it with [`ExecContext::put_f64`].
    pub fn take_f64(&self, len: usize) -> Vec<f64> {
        let pool = &self.inner.pool;
        if pool.enabled.load(Ordering::Relaxed) {
            if let Some(mut buf) = self.inner.pool.f64_bufs.lock().unwrap().pop() {
                pool.f64_reused.fetch_add(1, Ordering::Relaxed);
                pool.bytes_reused
                    .fetch_add(8 * buf.capacity().min(len) as u64, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, 0.0);
                return buf;
            }
        }
        pool.f64_allocated.fetch_add(1, Ordering::Relaxed);
        vec![0.0; len]
    }

    /// Returns a `Vec<f64>` to the pool for later reuse.
    pub fn put_f64(&self, buf: Vec<f64>) {
        let pool = &self.inner.pool;
        if pool.enabled.load(Ordering::Relaxed) && buf.capacity() > 0 {
            let mut bufs = pool.f64_bufs.lock().unwrap();
            if bufs.len() < MAX_POOLED {
                bufs.push(buf);
            }
        }
    }

    /// Checks out a zeroed `Vec<u32>` of length `len`.
    pub fn take_u32(&self, len: usize) -> Vec<u32> {
        let pool = &self.inner.pool;
        if pool.enabled.load(Ordering::Relaxed) {
            if let Some(mut buf) = self.inner.pool.u32_bufs.lock().unwrap().pop() {
                pool.u32_reused.fetch_add(1, Ordering::Relaxed);
                pool.bytes_reused
                    .fetch_add(4 * buf.capacity().min(len) as u64, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, 0);
                return buf;
            }
        }
        pool.u32_allocated.fetch_add(1, Ordering::Relaxed);
        vec![0; len]
    }

    /// Returns a `Vec<u32>` to the pool for later reuse.
    pub fn put_u32(&self, buf: Vec<u32>) {
        let pool = &self.inner.pool;
        if pool.enabled.load(Ordering::Relaxed) && buf.capacity() > 0 {
            let mut bufs = pool.u32_bufs.lock().unwrap();
            if bufs.len() < MAX_POOLED {
                bufs.push(buf);
            }
        }
    }

    /// Checks out a zeroed `Vec<u64>` of length `len` — the packed word
    /// buffers of the bitmap kernel.
    pub fn take_u64(&self, len: usize) -> Vec<u64> {
        let pool = &self.inner.pool;
        if pool.enabled.load(Ordering::Relaxed) {
            if let Some(mut buf) = self.inner.pool.u64_bufs.lock().unwrap().pop() {
                pool.u64_reused.fetch_add(1, Ordering::Relaxed);
                pool.bytes_reused
                    .fetch_add(8 * buf.capacity().min(len) as u64, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, 0);
                return buf;
            }
        }
        pool.u64_allocated.fetch_add(1, Ordering::Relaxed);
        vec![0; len]
    }

    /// Returns a `Vec<u64>` to the pool for later reuse.
    pub fn put_u64(&self, buf: Vec<u64>) {
        let pool = &self.inner.pool;
        if pool.enabled.load(Ordering::Relaxed) && buf.capacity() > 0 {
            let mut bufs = pool.u64_bufs.lock().unwrap();
            if bufs.len() < MAX_POOLED {
                bufs.push(buf);
            }
        }
    }

    /// Enables or disables buffer pooling (enabled by default). When
    /// disabled, checkouts always allocate and returns drop the buffer —
    /// the fresh-allocation behaviour benches compare against.
    pub fn set_pooling(&self, enabled: bool) {
        self.inner.pool.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.inner.pool.f64_bufs.lock().unwrap().clear();
            self.inner.pool.u32_bufs.lock().unwrap().clear();
            self.inner.pool.u64_bufs.lock().unwrap().clear();
        }
    }

    /// Whether buffer pooling is active.
    pub fn pooling_enabled(&self) -> bool {
        self.inner.pool.enabled.load(Ordering::Relaxed)
    }

    /// Snapshot of pool activity counters.
    pub fn pool_stats(&self) -> PoolStats {
        let pool = &self.inner.pool;
        PoolStats {
            f64_reused: pool.f64_reused.load(Ordering::Relaxed),
            f64_allocated: pool.f64_allocated.load(Ordering::Relaxed),
            u32_reused: pool.u32_reused.load(Ordering::Relaxed),
            u32_allocated: pool.u32_allocated.load(Ordering::Relaxed),
            u64_reused: pool.u64_reused.load(Ordering::Relaxed),
            u64_allocated: pool.u64_allocated.load(Ordering::Relaxed),
            bytes_reused: pool.bytes_reused.load(Ordering::Relaxed),
        }
    }

    // ---- telemetry -----------------------------------------------------

    /// Turns the telemetry sink on or off (off by default).
    pub fn enable_stats(&self, on: bool) {
        self.inner.telemetry.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether telemetry is being collected.
    pub fn stats_enabled(&self) -> bool {
        self.inner.telemetry.enabled.load(Ordering::Relaxed)
    }

    /// Opens a fresh [`LevelProfile`] for lattice level `level`;
    /// subsequent [`ExecContext::record_level`] and
    /// [`ExecContext::time_stage`] calls attribute to it.
    pub fn begin_level(&self, level: usize) {
        if !self.stats_enabled() {
            return;
        }
        let mut levels = self.inner.telemetry.levels.lock().unwrap();
        levels.push(LevelProfile {
            level,
            ..Default::default()
        });
    }

    /// Mutates the current (latest) level profile. No-op when telemetry
    /// is disabled or no level has been opened.
    pub fn record_level(&self, f: impl FnOnce(&mut LevelProfile)) {
        if !self.stats_enabled() {
            return;
        }
        let mut levels = self.inner.telemetry.levels.lock().unwrap();
        if let Some(profile) = levels.last_mut() {
            f(profile);
        }
    }

    /// Runs `f`, attributing its wall time to `stage` of the current
    /// level. When telemetry is disabled this is a plain call.
    pub fn time_stage<R>(&self, stage: Stage, f: impl FnOnce() -> R) -> R {
        if !self.stats_enabled() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        self.record_level(|p| match stage {
            Stage::Enumerate => p.enumerate += elapsed,
            Stage::Evaluate => p.evaluate += elapsed,
            Stage::TopK => p.topk += elapsed,
        });
        out
    }

    /// Adds wall time to the prepare-stage accumulator.
    pub fn add_prepare(&self, d: Duration) {
        if !self.stats_enabled() {
            return;
        }
        self.inner
            .telemetry
            .prepare_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Snapshot of collected statistics (level profiles + pool counters).
    pub fn exec_stats(&self) -> ExecStats {
        ExecStats {
            prepare: Duration::from_nanos(
                self.inner.telemetry.prepare_nanos.load(Ordering::Relaxed),
            ),
            levels: self.inner.telemetry.levels.lock().unwrap().clone(),
            pool: self.pool_stats(),
        }
    }

    /// Clears collected level profiles and the prepare accumulator
    /// (pool counters are lifetime counters and are left alone). Called
    /// at the start of each run so a reused context reports one run.
    pub fn reset_stats(&self) {
        self.inner.telemetry.levels.lock().unwrap().clear();
        self.inner
            .telemetry
            .prepare_nanos
            .store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_capacity() {
        let ctx = ExecContext::serial();
        let mut a = ctx.take_f64(16);
        a[3] = 7.5;
        let cap = a.capacity();
        ctx.put_f64(a);
        let b = ctx.take_f64(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&v| v == 0.0), "pooled buffer must be zeroed");
        assert!(b.capacity() >= cap.min(8));
        let stats = ctx.pool_stats();
        assert_eq!(stats.f64_reused, 1);
        assert_eq!(stats.f64_allocated, 1);
        assert!(stats.bytes_reused >= 8 * 8);
    }

    #[test]
    fn pooling_disabled_always_allocates() {
        let ctx = ExecContext::serial();
        ctx.set_pooling(false);
        assert!(!ctx.pooling_enabled());
        ctx.put_f64(vec![1.0; 4]);
        let _ = ctx.take_f64(4);
        let stats = ctx.pool_stats();
        assert_eq!(stats.f64_reused, 0);
        assert_eq!(stats.f64_allocated, 1);
    }

    #[test]
    fn u32_pool_roundtrip() {
        let ctx = ExecContext::serial();
        ctx.put_u32(vec![9; 32]);
        let b = ctx.take_u32(10);
        assert_eq!(b, vec![0; 10]);
        assert_eq!(ctx.pool_stats().u32_reused, 1);
    }

    #[test]
    fn u64_pool_roundtrip() {
        let ctx = ExecContext::serial();
        ctx.put_u64(vec![u64::MAX; 16]);
        let b = ctx.take_u64(12);
        assert_eq!(b, vec![0u64; 12]);
        let stats = ctx.pool_stats();
        assert_eq!(stats.u64_reused, 1);
        assert!(stats.reused() >= 1);
        ctx.set_pooling(false);
        ctx.put_u64(vec![1; 4]);
        let _ = ctx.take_u64(4);
        assert_eq!(ctx.pool_stats().u64_allocated, 1);
    }

    #[test]
    fn with_threads_shares_pool_and_telemetry() {
        let ctx = ExecContext::new(4);
        let view = ctx.with_threads(1);
        assert_eq!(view.threads(), 1);
        assert_eq!(ctx.threads(), 4);
        view.put_f64(vec![0.0; 8]);
        let _ = ctx.take_f64(8);
        assert_eq!(ctx.pool_stats().f64_reused, 1);
        ctx.enable_stats(true);
        ctx.begin_level(2);
        view.record_level(|p| p.partials += 3);
        assert_eq!(ctx.exec_stats().levels[0].partials, 3);
    }

    #[test]
    fn telemetry_disabled_is_noop() {
        let ctx = ExecContext::serial();
        ctx.begin_level(1);
        ctx.record_level(|p| p.candidates += 10);
        assert!(ctx.exec_stats().levels.is_empty());
    }

    #[test]
    fn stage_timing_accumulates() {
        let ctx = ExecContext::serial();
        ctx.enable_stats(true);
        ctx.begin_level(1);
        let out = ctx.time_stage(Stage::Evaluate, || 41 + 1);
        assert_eq!(out, 42);
        ctx.time_stage(Stage::Enumerate, || ());
        let stats = ctx.exec_stats();
        assert_eq!(stats.levels.len(), 1);
        // Durations are non-negative by construction; just check the level
        // profile exists and reset clears it.
        ctx.reset_stats();
        assert!(ctx.exec_stats().levels.is_empty());
    }

    #[test]
    fn stats_json_and_table_render() {
        let ctx = ExecContext::serial();
        ctx.enable_stats(true);
        ctx.begin_level(1);
        ctx.record_level(|p| {
            p.candidates = 12;
            p.evaluated = 8;
            p.kernel = Some("fused");
            p.enum_kernel = Some("sharded");
            p.join = Duration::from_millis(5);
            p.dedup = Duration::from_millis(3);
        });
        ctx.begin_level(2);
        ctx.record_level(|p| {
            p.candidates = 30;
            p.deduped = 4;
            p.pruned_size = 2;
            p.evaluated = 24;
        });
        let stats = ctx.exec_stats();
        assert_eq!(stats.total_candidates(), 42);
        assert_eq!(stats.total_evaluated(), 32);
        let table = stats.render_table();
        assert!(table.contains("level"));
        assert!(table.contains("fused"));
        assert!(table.contains("sharded"));
        assert!(table.contains("join(s)"));
        let json = stats.to_json();
        assert!(json.contains("\"level\":2"));
        assert!(json.contains("\"kernel\":\"fused\""));
        assert!(json.contains("\"enum_kernel\":\"sharded\""));
        assert!(json.contains("\"join_secs\":0.005"));
        assert!(json.contains("\"dedup_secs\":0.003"));
        assert!(json.contains("\"pool\":{"));
    }

    #[test]
    fn pool_is_bounded() {
        let ctx = ExecContext::serial();
        for _ in 0..(MAX_POOLED + 10) {
            ctx.put_f64(vec![0.0; 1]);
        }
        assert!(ctx.inner.pool.f64_bufs.lock().unwrap().len() <= MAX_POOLED);
    }
}
