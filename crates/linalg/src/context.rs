//! Unified execution context: thread pool + scratch-buffer reuse +
//! per-level telemetry.
//!
//! SystemDS gives SliceLine a runtime context for free — thread pools,
//! buffer management and instruction-level statistics. This module is the
//! reproduction's equivalent: a single [`ExecContext`] handle that every
//! kernel and the level loop take instead of a loose [`ParallelConfig`]
//! plus implicit allocation.
//!
//! An `ExecContext` owns four things:
//!
//! 1. **Parallelism** — the [`ParallelConfig`] describing how many
//!    scoped threads kernels may fan out to. [`ExecContext::with_threads`]
//!    derives a view with a different thread count that *shares* the pool
//!    and telemetry (used by the simulated cluster to give each node its
//!    own per-node parallelism while all nodes feed one stats sink).
//! 2. **Scratch buffers** — a checkout/return pool of `Vec<f64>` /
//!    `Vec<u32>` / `Vec<u64>` arenas so the blocked kernel's `n × b`
//!    intermediate, the bitmap kernel's packed word buffers, and each
//!    level's `sizes/errs/max_errs/scores` vectors are reused across
//!    levels instead of re-allocated. Pooling can be switched off
//!    ([`ExecContext::set_pooling`]) to measure the allocation churn it
//!    removes. The pool also tracks approximate live/high-water bytes.
//! 3. **Telemetry** — per-level counters (candidate funnel, pruning
//!    rules, evaluated slices, per-node partials), the kernels chosen by
//!    the `Auto` policies, and wall time per stage. Since the
//!    observability rework this is backed by a sharded thread-local
//!    [`Collector`] from `sliceline-obs`: worker threads accumulate
//!    private [`LevelProfile`] deltas that merge on thread exit instead
//!    of serializing on a mutex. Disabled by default; when enabled the
//!    cli renders the table and bench binaries dump it as JSON
//!    ([`ExecStats::to_json`]).
//! 4. **Tracing + metrics** — a shared [`Tracer`] for RAII spans
//!    (exported as Chrome trace-event JSON via `--trace`) and a
//!    [`MetricsRegistry`] of named counters/gauges that feeds the run
//!    manifest. Both are off/empty unless the caller enables them.
//!
//! The context is cheap to clone (an `Arc` plus a `Copy` config) and all
//! interior state is thread-safe, so kernels running on scoped threads
//! can check buffers in and out concurrently.
//!
//! [`Collector`]: sliceline_obs::Collector

use crate::parallel::ParallelConfig;
use crate::simd::{self, SimdKernel, SimdLevel};
use sliceline_obs::{secs, Collector, FlightRecorder, MergeDelta, MetricsRegistry, Tracer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Maximum buffers retained per element type; beyond this, returned
/// buffers are dropped (bounds worst-case pool memory).
const MAX_POOLED: usize = 64;

/// Pipeline stage attributed in per-level wall-time telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Candidate generation + pruning (`get_pair_candidates`).
    Enumerate,
    /// Slice evaluation (blocked / fused kernels).
    Evaluate,
    /// Top-K maintenance.
    TopK,
    /// Adaptive input compaction (coverage + gather), run after top-K.
    Compact,
}

impl Stage {
    /// Span/column name for this stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Enumerate => "enumerate",
            Stage::Evaluate => "evaluate",
            Stage::TopK => "topk",
            Stage::Compact => "compact",
        }
    }
}

/// Telemetry for one lattice level.
#[derive(Debug, Clone, Default)]
pub struct LevelProfile {
    /// Lattice level (1 = basic slices).
    pub level: usize,
    /// Raw parent pairs streamed out of the join, before merge validity
    /// checks (level 1: 0 — there is no pair enumeration).
    pub pairs: u64,
    /// Candidates generated before dedup/pruning (level 1: one-hot columns).
    pub candidates: u64,
    /// Candidates removed as duplicates of an earlier pair merge.
    pub deduped: u64,
    /// Candidates discarded by the size bound (Eq. 7).
    pub pruned_size: u64,
    /// Candidates discarded by the score upper bound (Eq. 9).
    pub pruned_score: u64,
    /// Candidates discarded by missing-parent handling.
    pub pruned_parents: u64,
    /// Slices actually evaluated by a kernel.
    pub evaluated: u64,
    /// Evaluated slices that entered the top-K set this level.
    pub topk_entered: u64,
    /// Per-node partial aggregations merged (distributed runs).
    pub partials: u64,
    /// Bitmap-kernel evaluations served incrementally from a cached
    /// parent bitmap (one `AND` instead of `L`).
    pub cache_hits: u64,
    /// Bitmap-kernel evaluations that probed the parent cache and found
    /// no usable parent (the slice rebuilt from its column bitmaps).
    pub cache_misses: u64,
    /// Evaluated children whose retention the cache admission cost model
    /// declined even though the byte budget had room (recompute was
    /// predicted cheaper than a cached-parent `AND` next level).
    pub cache_bypass: u64,
    /// Max/mean per-node wall time of this level's distributed
    /// evaluation; 0 for non-distributed runs, 1.0 = perfectly balanced.
    pub partition_skew: f64,
    /// Working-set rows after this level's compaction stage (equal to the
    /// input row count when compaction did not fire); 0 when the stage
    /// never ran. Non-increasing level-over-level by construction.
    pub rows_retained: u64,
    /// Working-set one-hot columns after this level's compaction stage;
    /// 0 when the stage never ran. Non-increasing level-over-level.
    pub cols_retained: u64,
    /// Eval kernel that ran (`"blocked"` / `"fused"` / `"bitmap"`), if any.
    pub kernel: Option<&'static str>,
    /// Enumeration kernel that ran (`"serial"` / `"sharded"`), if any.
    pub enum_kernel: Option<&'static str>,
    /// Wall time in candidate enumeration.
    pub enumerate: Duration,
    /// Wall time in the enumeration join (pair generation + merge), a
    /// sub-span of `enumerate`.
    pub join: Duration,
    /// Wall time in enumeration dedup + final pruning, a sub-span of
    /// `enumerate`.
    pub dedup: Duration,
    /// Wall time in slice evaluation.
    pub evaluate: Duration,
    /// Wall time in top-K maintenance.
    pub topk: Duration,
    /// Wall time in the adaptive compaction stage (coverage + gather).
    pub compact: Duration,
}

impl LevelProfile {
    /// The per-level pruning funnel: monotonically non-increasing stage
    /// counts from streamed pairs down to top-K entries. Stage names are
    /// part of the exported schema (DESIGN.md §Observability).
    ///
    /// Level 1 has no pair join, so the first stage is clamped to the
    /// candidate count there to keep the funnel monotone.
    pub fn funnel(&self) -> [(&'static str, u64); 6] {
        let merged = self.candidates;
        let after_dedup = merged.saturating_sub(self.deduped);
        let after_bound = after_dedup.saturating_sub(self.pruned_score);
        let after_filters = after_bound
            .saturating_sub(self.pruned_size)
            .saturating_sub(self.pruned_parents);
        [
            ("pairs", self.pairs.max(merged)),
            ("merged", merged),
            ("after_dedup", after_dedup),
            ("after_bound", after_bound),
            ("after_filters", after_filters),
            ("evaluated", self.evaluated),
        ]
    }
}

impl MergeDelta for LevelProfile {
    /// Folds a thread-local delta into the base profile: counters and
    /// durations add, kernel annotations take the latest non-`None`,
    /// skew takes the max. `level` is identity — set once when the slot
    /// is opened; deltas leave it at the 0 default.
    fn merge(&mut self, other: &Self) {
        self.pairs += other.pairs;
        self.candidates += other.candidates;
        self.deduped += other.deduped;
        self.pruned_size += other.pruned_size;
        self.pruned_score += other.pruned_score;
        self.pruned_parents += other.pruned_parents;
        self.evaluated += other.evaluated;
        self.topk_entered += other.topk_entered;
        self.partials += other.partials;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_bypass += other.cache_bypass;
        if other.partition_skew > self.partition_skew {
            self.partition_skew = other.partition_skew;
        }
        // Retained dimensions are gauges (one writer per level in the
        // local path; max partition dimensions in the dist path), so a
        // merge takes the max rather than summing.
        if other.rows_retained > self.rows_retained {
            self.rows_retained = other.rows_retained;
        }
        if other.cols_retained > self.cols_retained {
            self.cols_retained = other.cols_retained;
        }
        if other.kernel.is_some() {
            self.kernel = other.kernel;
        }
        if other.enum_kernel.is_some() {
            self.enum_kernel = other.enum_kernel;
        }
        self.enumerate += other.enumerate;
        self.join += other.join;
        self.dedup += other.dedup;
        self.evaluate += other.evaluate;
        self.topk += other.topk;
        self.compact += other.compact;
    }
}

/// Snapshot of scratch-pool activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `Vec<f64>` checkouts served from the pool.
    pub f64_reused: u64,
    /// `Vec<f64>` checkouts that had to allocate fresh.
    pub f64_allocated: u64,
    /// `Vec<u32>` checkouts served from the pool.
    pub u32_reused: u64,
    /// `Vec<u32>` checkouts that had to allocate fresh.
    pub u32_allocated: u64,
    /// `Vec<u64>` (bitmap word) checkouts served from the pool.
    pub u64_reused: u64,
    /// `Vec<u64>` (bitmap word) checkouts that had to allocate fresh.
    pub u64_allocated: u64,
    /// Bytes of capacity served from the pool instead of the allocator.
    pub bytes_reused: u64,
    /// Approximate bytes of checked-out scratch capacity right now.
    /// Approximate because callers may grow a buffer between checkout
    /// and return; returns saturate rather than underflow.
    pub bytes_outstanding: u64,
    /// High-water mark of `bytes_outstanding` over the context lifetime —
    /// the allocator pressure the pool absorbs at peak.
    pub bytes_high_water: u64,
}

impl PoolStats {
    /// Total checkouts served from the pool.
    pub fn reused(&self) -> u64 {
        self.f64_reused + self.u32_reused + self.u64_reused
    }

    /// Total checkouts that allocated fresh.
    pub fn allocated(&self) -> u64 {
        self.f64_allocated + self.u32_allocated + self.u64_allocated
    }
}

/// Execution statistics snapshot: prepare time, per-level profiles and
/// pool counters. Render with [`ExecStats::render_table`] or serialize
/// with [`ExecStats::to_json`].
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Wall time of data preparation (validation + one-hot encoding).
    pub prepare: Duration,
    /// Per-level execution profiles in level order.
    pub levels: Vec<LevelProfile>,
    /// Scratch-pool counters accumulated over the context lifetime.
    pub pool: PoolStats,
    /// SIMD level the context's bitmap kernels dispatched to
    /// (`"scalar"` / `"avx2"` / `"neon"`), when snapshotted from a context.
    pub simd: Option<&'static str>,
}

impl ExecStats {
    /// Sum of candidates generated across levels.
    pub fn total_candidates(&self) -> u64 {
        self.levels.iter().map(|l| l.candidates).sum()
    }

    /// Sum of slices evaluated across levels.
    pub fn total_evaluated(&self) -> u64 {
        self.levels.iter().map(|l| l.evaluated).sum()
    }

    /// Max per-level partition skew (distributed runs; 0 otherwise).
    pub fn max_partition_skew(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.partition_skew)
            .fold(0.0, f64::max)
    }

    /// Renders the per-level table the cli prints under `--stats`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<6} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6} {:>8} {:>7} {:>7} {:>7} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}\n",
            "level",
            "pairs",
            "cands",
            "dedup",
            "pr:size",
            "pr:score",
            "pr:par",
            "evaluated",
            "topk+",
            "partials",
            "bmhits",
            "bmmiss",
            "bmbyp",
            "skew",
            "rows_ret",
            "cols_ret",
            "kernel",
            "ekernel",
            "enum(s)",
            "join(s)",
            "dedup(s)",
            "eval(s)",
            "topk(s)",
            "compact(s)",
        ));
        for l in &self.levels {
            out.push_str(&format!(
                "{:<6} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6} {:>8} {:>7} {:>7} {:>7} {:>6.2} {:>9} {:>9} {:>8} {:>8} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>10.4}\n",
                l.level,
                l.pairs,
                l.candidates,
                l.deduped,
                l.pruned_size,
                l.pruned_score,
                l.pruned_parents,
                l.evaluated,
                l.topk_entered,
                l.partials,
                l.cache_hits,
                l.cache_misses,
                l.cache_bypass,
                l.partition_skew,
                l.rows_retained,
                l.cols_retained,
                l.kernel.unwrap_or("-"),
                l.enum_kernel.unwrap_or("-"),
                secs(l.enumerate),
                secs(l.join),
                secs(l.dedup),
                secs(l.evaluate),
                secs(l.topk),
                secs(l.compact),
            ));
        }
        out.push_str(&format!(
            "prepare {:.4}s · simd: {} · pool: {} reused / {} allocated ({} bytes served from pool, {} bytes peak outstanding)\n",
            secs(self.prepare),
            self.simd.unwrap_or("-"),
            self.pool.reused(),
            self.pool.allocated(),
            self.pool.bytes_reused,
            self.pool.bytes_high_water,
        ));
        out
    }

    /// Serializes the snapshot as a self-contained JSON object. All
    /// durations are float seconds (`*_secs`) — see DESIGN.md
    /// §Observability for the schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"prepare_secs\":{:.6},", secs(self.prepare)));
        out.push_str("\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"level\":{},\"pairs\":{},\"candidates\":{},\"deduped\":{},\"pruned_size\":{},\
                 \"pruned_score\":{},\"pruned_parents\":{},\"evaluated\":{},\"topk_entered\":{},\
                 \"partials\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_bypass\":{},\
                 \"partition_skew\":{},\
                 \"rows_retained\":{},\"cols_retained\":{},\"kernel\":{},\
                 \"enum_kernel\":{},\"enumerate_secs\":{:.6},\
                 \"join_secs\":{:.6},\"dedup_secs\":{:.6},\
                 \"evaluate_secs\":{:.6},\"topk_secs\":{:.6},\"compact_secs\":{:.6}}}",
                l.level,
                l.pairs,
                l.candidates,
                l.deduped,
                l.pruned_size,
                l.pruned_score,
                l.pruned_parents,
                l.evaluated,
                l.topk_entered,
                l.partials,
                l.cache_hits,
                l.cache_misses,
                l.cache_bypass,
                l.partition_skew,
                l.rows_retained,
                l.cols_retained,
                match l.kernel {
                    Some(k) => format!("\"{k}\""),
                    None => "null".to_string(),
                },
                match l.enum_kernel {
                    Some(k) => format!("\"{k}\""),
                    None => "null".to_string(),
                },
                secs(l.enumerate),
                secs(l.join),
                secs(l.dedup),
                secs(l.evaluate),
                secs(l.topk),
                secs(l.compact),
            ));
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"pool\":{{\"f64_reused\":{},\"f64_allocated\":{},\"u32_reused\":{},\
             \"u32_allocated\":{},\"u64_reused\":{},\"u64_allocated\":{},\"bytes_reused\":{},\
             \"bytes_outstanding\":{},\"bytes_high_water\":{}}}",
            self.pool.f64_reused,
            self.pool.f64_allocated,
            self.pool.u32_reused,
            self.pool.u32_allocated,
            self.pool.u64_reused,
            self.pool.u64_allocated,
            self.pool.bytes_reused,
            self.pool.bytes_outstanding,
            self.pool.bytes_high_water,
        ));
        out.push_str(&format!(
            ",\"simd\":{}",
            match self.simd {
                Some(s) => format!("\"{s}\""),
                None => "null".to_string(),
            }
        ));
        out.push('}');
        out
    }
}

/// Scratch-buffer pool: stacks of returned vectors plus activity counters.
#[derive(Debug, Default)]
struct BufferPool {
    enabled: AtomicBool,
    f64_bufs: Mutex<Vec<Vec<f64>>>,
    u32_bufs: Mutex<Vec<Vec<u32>>>,
    u64_bufs: Mutex<Vec<Vec<u64>>>,
    f64_reused: AtomicU64,
    f64_allocated: AtomicU64,
    u32_reused: AtomicU64,
    u32_allocated: AtomicU64,
    u64_reused: AtomicU64,
    u64_allocated: AtomicU64,
    bytes_reused: AtomicU64,
    bytes_outstanding: AtomicU64,
    bytes_high_water: AtomicU64,
}

impl BufferPool {
    fn new() -> Self {
        BufferPool {
            enabled: AtomicBool::new(true),
            ..Default::default()
        }
    }

    fn add_outstanding(&self, bytes: u64) {
        let now = self.bytes_outstanding.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.bytes_high_water.fetch_max(now, Ordering::Relaxed);
    }

    fn sub_outstanding(&self, bytes: u64) {
        // Saturating: callers may return buffers that were never checked
        // out here, or that grew after checkout.
        let _ = self
            .bytes_outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }
}

/// Telemetry sink: sharded per-thread level profiles (see
/// [`sliceline_obs::Collector`]), guarded by a flag so the disabled path
/// costs one atomic load.
#[derive(Debug, Default)]
struct Telemetry {
    enabled: AtomicBool,
    prepare_nanos: AtomicU64,
    levels: Collector<LevelProfile>,
}

#[derive(Debug, Default)]
struct CtxInner {
    pool: BufferPool,
    tracer: Tracer,
    metrics: MetricsRegistry,
    flight: FlightRecorder,
}

/// Shared execution context threaded through every kernel and level-loop
/// entry point. See the [module docs](self) for the full story.
///
/// The telemetry sink lives behind its own handle (separate from the
/// pool/tracer/metrics `Arc`) so [`ExecContext::run_scoped`] can derive a
/// view with a private sink: concurrent runs on one shared context each
/// collect their own level profiles instead of clobbering a global one.
#[derive(Debug, Clone)]
pub struct ExecContext {
    parallel: ParallelConfig,
    simd: SimdLevel,
    budget: MemoryBudget,
    inner: Arc<CtxInner>,
    telemetry: Arc<Telemetry>,
}

/// A soft memory budget for out-of-core execution: how many bytes of
/// input data an operator may keep resident before it must spill or
/// stream. `bytes == 0` means unlimited (the in-memory default).
///
/// The budget is advisory bookkeeping, not an allocator hook: chunked
/// drivers consult it to size their resident window, and the
/// counting-allocator tests pin that they respect it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: usize,
}

impl MemoryBudget {
    /// No limit — operators may materialize freely.
    pub const UNLIMITED: MemoryBudget = MemoryBudget { bytes: 0 };

    /// A budget of `bytes` bytes (0 = unlimited).
    pub fn from_bytes(bytes: usize) -> Self {
        MemoryBudget { bytes }
    }

    /// A budget of `mb` mebibytes (0 = unlimited).
    pub fn from_mb(mb: usize) -> Self {
        MemoryBudget { bytes: mb << 20 }
    }

    /// The budget in bytes; 0 means unlimited.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// `true` when a finite budget is set.
    pub fn is_limited(&self) -> bool {
        self.bytes > 0
    }

    /// `true` when keeping `resident` bytes would stay within budget.
    pub fn admits(&self, resident: usize) -> bool {
        !self.is_limited() || resident <= self.bytes
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::with_parallel(ParallelConfig::default())
    }
}

impl ExecContext {
    /// Context with `threads` worker threads.
    pub fn new(threads: usize) -> Self {
        ExecContext::with_parallel(ParallelConfig::new(threads))
    }

    /// Single-threaded context.
    pub fn serial() -> Self {
        ExecContext::with_parallel(ParallelConfig::serial())
    }

    /// Context wrapping an existing parallel configuration.
    pub fn with_parallel(parallel: ParallelConfig) -> Self {
        ExecContext {
            parallel,
            simd: simd::default_level(),
            budget: MemoryBudget::UNLIMITED,
            inner: Arc::new(CtxInner {
                pool: BufferPool::new(),
                tracer: Tracer::new(),
                metrics: MetricsRegistry::new(),
                flight: FlightRecorder::default(),
            }),
            telemetry: Arc::new(Telemetry::default()),
        }
    }

    /// A view with a different thread count that **shares** this
    /// context's buffer pool, telemetry sink, tracer, and metrics.
    pub fn with_threads(&self, threads: usize) -> Self {
        ExecContext {
            parallel: ParallelConfig::new(threads),
            simd: self.simd,
            budget: self.budget,
            inner: Arc::clone(&self.inner),
            telemetry: Arc::clone(&self.telemetry),
        }
    }

    /// A view with the given memory budget that shares this context's
    /// pool, telemetry sink, tracer, and metrics.
    pub fn with_budget(&self, budget: MemoryBudget) -> Self {
        let mut view = self.clone();
        view.budget = budget;
        view
    }

    /// The memory budget chunked/out-of-core operators should respect.
    pub fn budget(&self) -> MemoryBudget {
        self.budget
    }

    /// A view with the SIMD knob resolved from `kernel` that shares this
    /// context's pool, telemetry sink, tracer, and metrics. The knob
    /// selects a code path, never an answer: scalar and vector kernels
    /// are bit-for-bit identical, so views with different levels may
    /// safely coexist on one shared context.
    pub fn with_simd(&self, kernel: SimdKernel) -> Self {
        let mut view = self.clone();
        view.simd = simd::resolve(kernel);
        view
    }

    /// The SIMD level bitmap kernels dispatch to under this context.
    pub fn simd(&self) -> SimdLevel {
        self.simd
    }

    /// A per-run view that shares this context's buffer pool, tracer,
    /// and metrics registry but collects telemetry into a **fresh**
    /// private sink (inheriting the parent's enabled flag).
    ///
    /// This is what the level loop uses instead of a global
    /// [`ExecContext::reset_stats`]: concurrent runs on one shared
    /// context each get their own level profiles, while pooled buffers
    /// and manifest metrics still flow through the shared state. The
    /// parent's own `exec_stats()` snapshot is unaffected by work done
    /// under the scoped view.
    pub fn run_scoped(&self) -> ExecContext {
        let telemetry = Telemetry::default();
        telemetry
            .enabled
            .store(self.stats_enabled(), Ordering::Relaxed);
        ExecContext {
            parallel: self.parallel,
            simd: self.simd,
            budget: self.budget,
            inner: Arc::clone(&self.inner),
            telemetry: Arc::new(telemetry),
        }
    }

    /// The parallelism configuration kernels should fan out with.
    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.parallel.threads()
    }

    // ---- scratch-buffer pool -------------------------------------------

    /// Checks out a zeroed `Vec<f64>` of length `len` (reusing pooled
    /// capacity when available). Return it with [`ExecContext::put_f64`].
    pub fn take_f64(&self, len: usize) -> Vec<f64> {
        let pool = &self.inner.pool;
        if pool.enabled.load(Ordering::Relaxed) {
            if let Some(mut buf) = self.inner.pool.f64_bufs.lock().unwrap().pop() {
                pool.f64_reused.fetch_add(1, Ordering::Relaxed);
                pool.bytes_reused
                    .fetch_add(8 * buf.capacity().min(len) as u64, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, 0.0);
                pool.add_outstanding(8 * buf.capacity() as u64);
                return buf;
            }
        }
        pool.f64_allocated.fetch_add(1, Ordering::Relaxed);
        pool.add_outstanding(8 * len as u64);
        vec![0.0; len]
    }

    /// Returns a `Vec<f64>` to the pool for later reuse.
    pub fn put_f64(&self, buf: Vec<f64>) {
        let pool = &self.inner.pool;
        pool.sub_outstanding(8 * buf.capacity() as u64);
        if pool.enabled.load(Ordering::Relaxed) && buf.capacity() > 0 {
            let mut bufs = pool.f64_bufs.lock().unwrap();
            if bufs.len() < MAX_POOLED {
                bufs.push(buf);
            }
        }
    }

    /// Checks out a zeroed `Vec<u32>` of length `len`.
    pub fn take_u32(&self, len: usize) -> Vec<u32> {
        let pool = &self.inner.pool;
        if pool.enabled.load(Ordering::Relaxed) {
            if let Some(mut buf) = self.inner.pool.u32_bufs.lock().unwrap().pop() {
                pool.u32_reused.fetch_add(1, Ordering::Relaxed);
                pool.bytes_reused
                    .fetch_add(4 * buf.capacity().min(len) as u64, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, 0);
                pool.add_outstanding(4 * buf.capacity() as u64);
                return buf;
            }
        }
        pool.u32_allocated.fetch_add(1, Ordering::Relaxed);
        pool.add_outstanding(4 * len as u64);
        vec![0; len]
    }

    /// Returns a `Vec<u32>` to the pool for later reuse.
    pub fn put_u32(&self, buf: Vec<u32>) {
        let pool = &self.inner.pool;
        pool.sub_outstanding(4 * buf.capacity() as u64);
        if pool.enabled.load(Ordering::Relaxed) && buf.capacity() > 0 {
            let mut bufs = pool.u32_bufs.lock().unwrap();
            if bufs.len() < MAX_POOLED {
                bufs.push(buf);
            }
        }
    }

    /// Checks out a zeroed `Vec<u64>` of length `len` — the packed word
    /// buffers of the bitmap kernel.
    pub fn take_u64(&self, len: usize) -> Vec<u64> {
        let pool = &self.inner.pool;
        if pool.enabled.load(Ordering::Relaxed) {
            if let Some(mut buf) = self.inner.pool.u64_bufs.lock().unwrap().pop() {
                pool.u64_reused.fetch_add(1, Ordering::Relaxed);
                pool.bytes_reused
                    .fetch_add(8 * buf.capacity().min(len) as u64, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, 0);
                pool.add_outstanding(8 * buf.capacity() as u64);
                return buf;
            }
        }
        pool.u64_allocated.fetch_add(1, Ordering::Relaxed);
        pool.add_outstanding(8 * len as u64);
        vec![0; len]
    }

    /// Returns a `Vec<u64>` to the pool for later reuse.
    pub fn put_u64(&self, buf: Vec<u64>) {
        let pool = &self.inner.pool;
        pool.sub_outstanding(8 * buf.capacity() as u64);
        if pool.enabled.load(Ordering::Relaxed) && buf.capacity() > 0 {
            let mut bufs = pool.u64_bufs.lock().unwrap();
            if bufs.len() < MAX_POOLED {
                bufs.push(buf);
            }
        }
    }

    /// Enables or disables buffer pooling (enabled by default). When
    /// disabled, checkouts always allocate and returns drop the buffer —
    /// the fresh-allocation behaviour benches compare against.
    pub fn set_pooling(&self, enabled: bool) {
        self.inner.pool.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.inner.pool.f64_bufs.lock().unwrap().clear();
            self.inner.pool.u32_bufs.lock().unwrap().clear();
            self.inner.pool.u64_bufs.lock().unwrap().clear();
        }
    }

    /// Whether buffer pooling is active.
    pub fn pooling_enabled(&self) -> bool {
        self.inner.pool.enabled.load(Ordering::Relaxed)
    }

    /// Snapshot of pool activity counters.
    pub fn pool_stats(&self) -> PoolStats {
        let pool = &self.inner.pool;
        PoolStats {
            f64_reused: pool.f64_reused.load(Ordering::Relaxed),
            f64_allocated: pool.f64_allocated.load(Ordering::Relaxed),
            u32_reused: pool.u32_reused.load(Ordering::Relaxed),
            u32_allocated: pool.u32_allocated.load(Ordering::Relaxed),
            u64_reused: pool.u64_reused.load(Ordering::Relaxed),
            u64_allocated: pool.u64_allocated.load(Ordering::Relaxed),
            bytes_reused: pool.bytes_reused.load(Ordering::Relaxed),
            bytes_outstanding: pool.bytes_outstanding.load(Ordering::Relaxed),
            bytes_high_water: pool.bytes_high_water.load(Ordering::Relaxed),
        }
    }

    // ---- telemetry -----------------------------------------------------

    /// Turns the telemetry sink on or off (off by default).
    pub fn enable_stats(&self, on: bool) {
        self.telemetry.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether telemetry is being collected.
    pub fn stats_enabled(&self) -> bool {
        self.telemetry.enabled.load(Ordering::Relaxed)
    }

    /// Opens a fresh [`LevelProfile`] for lattice level `level`;
    /// subsequent [`ExecContext::record_level`] and
    /// [`ExecContext::time_stage`] calls attribute to it.
    pub fn begin_level(&self, level: usize) {
        if !self.stats_enabled() {
            return;
        }
        self.telemetry.levels.push_slot(LevelProfile {
            level,
            ..Default::default()
        });
    }

    /// Mutates the calling thread's delta for the current level profile
    /// (merged into the snapshot on flush — no locks on this path).
    /// No-op when telemetry is disabled or no level has been opened.
    pub fn record_level(&self, f: impl FnOnce(&mut LevelProfile)) {
        if !self.stats_enabled() {
            return;
        }
        self.telemetry.levels.with_current(f);
    }

    /// Runs `f`, attributing its wall time to `stage` of the current
    /// level and emitting a `stage` span on the tracer. When telemetry
    /// and tracing are both disabled this is a plain call.
    pub fn time_stage<R>(&self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let stats = self.stats_enabled();
        if !stats && !self.inner.tracer.enabled() {
            return f();
        }
        let _span = self.inner.tracer.span(stage.name(), "core");
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        if stats {
            self.record_level(|p| match stage {
                Stage::Enumerate => p.enumerate += elapsed,
                Stage::Evaluate => p.evaluate += elapsed,
                Stage::TopK => p.topk += elapsed,
                Stage::Compact => p.compact += elapsed,
            });
        }
        out
    }

    /// Adds wall time to the prepare-stage accumulator.
    pub fn add_prepare(&self, d: Duration) {
        if !self.stats_enabled() {
            return;
        }
        self.telemetry
            .prepare_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Snapshot of collected statistics (level profiles + pool counters).
    /// Also refreshes the derived gauges in [`ExecContext::metrics`]
    /// (pool high-water, bitmap cache hit rate, partition skew).
    pub fn exec_stats(&self) -> ExecStats {
        let stats = ExecStats {
            prepare: Duration::from_nanos(self.telemetry.prepare_nanos.load(Ordering::Relaxed)),
            levels: self.telemetry.levels.snapshot(),
            pool: self.pool_stats(),
            simd: Some(self.simd.name()),
        };
        let metrics = &self.inner.metrics;
        metrics
            .gauge("linalg.pool.bytes_high_water")
            .set(stats.pool.bytes_high_water as f64);
        metrics
            .gauge("linalg.pool.bytes_reused")
            .set(stats.pool.bytes_reused as f64);
        metrics
            .gauge("linalg.simd.level")
            .set(self.simd.code() as f64);
        // Surface span ring-buffer overflow: a truncated trace must be
        // visible in `--stats`, the manifest, and `/metrics` instead of
        // silently missing events.
        metrics
            .gauge("obs.trace.dropped_events")
            .set(self.inner.tracer.dropped() as f64);
        let evaluated = stats.total_evaluated();
        if evaluated > 0 {
            // Only overwrite the cache gauges from a snapshot that saw
            // evaluation: a levels-free view (e.g. the serve daemon's
            // shared base context) must not zero the last run's values.
            let cache_hits: u64 = stats.levels.iter().map(|l| l.cache_hits).sum();
            let cache_misses: u64 = stats.levels.iter().map(|l| l.cache_misses).sum();
            let cache_bypass: u64 = stats.levels.iter().map(|l| l.cache_bypass).sum();
            metrics
                .gauge("core.bitmap_cache.hits")
                .set(cache_hits as f64);
            metrics
                .gauge("core.bitmap_cache.misses")
                .set(cache_misses as f64);
            metrics
                .gauge("core.bitmap_cache.bypass")
                .set(cache_bypass as f64);
            metrics
                .gauge("core.bitmap_cache.hit_rate")
                .set(cache_hits as f64 / evaluated as f64);
        }
        let skew = stats.max_partition_skew();
        if skew > 0.0 {
            metrics.gauge("dist.partition_skew").max(skew);
        }
        stats
    }

    /// Clears collected level profiles and the prepare accumulator
    /// (pool counters are lifetime counters and are left alone; the
    /// tracer keeps its events — reset it separately via
    /// [`Tracer::reset`] if needed). Called at the start of each run so
    /// a reused context reports one run.
    pub fn reset_stats(&self) {
        self.telemetry.levels.reset();
        self.telemetry.prepare_nanos.store(0, Ordering::Relaxed);
    }

    // ---- tracing + metrics ---------------------------------------------

    /// The shared span tracer. Disabled by default; enable with
    /// [`Tracer::set_enabled`] (the cli does this for `--trace` /
    /// `SLICELINE_TRACE`).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The shared metrics registry backing the run manifest.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The shared per-job flight recorder. Like the pool and metrics it
    /// is owned by the root context and shared by every view
    /// ([`ExecContext::run_scoped`] included), so a record pushed at the
    /// end of a scoped run stays retrievable from the long-lived serving
    /// context after the scoped view is dropped.
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_capacity() {
        let ctx = ExecContext::serial();
        let mut a = ctx.take_f64(16);
        a[3] = 7.5;
        let cap = a.capacity();
        ctx.put_f64(a);
        let b = ctx.take_f64(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&v| v == 0.0), "pooled buffer must be zeroed");
        assert!(b.capacity() >= cap.min(8));
        let stats = ctx.pool_stats();
        assert_eq!(stats.f64_reused, 1);
        assert_eq!(stats.f64_allocated, 1);
        assert!(stats.bytes_reused >= 8 * 8);
    }

    #[test]
    fn pooling_disabled_always_allocates() {
        let ctx = ExecContext::serial();
        ctx.set_pooling(false);
        assert!(!ctx.pooling_enabled());
        ctx.put_f64(vec![1.0; 4]);
        let _ = ctx.take_f64(4);
        let stats = ctx.pool_stats();
        assert_eq!(stats.f64_reused, 0);
        assert_eq!(stats.f64_allocated, 1);
    }

    #[test]
    fn u32_pool_roundtrip() {
        let ctx = ExecContext::serial();
        ctx.put_u32(vec![9; 32]);
        let b = ctx.take_u32(10);
        assert_eq!(b, vec![0; 10]);
        assert_eq!(ctx.pool_stats().u32_reused, 1);
    }

    #[test]
    fn u64_pool_roundtrip() {
        let ctx = ExecContext::serial();
        ctx.put_u64(vec![u64::MAX; 16]);
        let b = ctx.take_u64(12);
        assert_eq!(b, vec![0u64; 12]);
        let stats = ctx.pool_stats();
        assert_eq!(stats.u64_reused, 1);
        assert!(stats.reused() >= 1);
        ctx.set_pooling(false);
        ctx.put_u64(vec![1; 4]);
        let _ = ctx.take_u64(4);
        assert_eq!(ctx.pool_stats().u64_allocated, 1);
    }

    #[test]
    fn outstanding_bytes_track_checkouts() {
        let ctx = ExecContext::serial();
        let a = ctx.take_f64(100); // 800 bytes out
        let stats = ctx.pool_stats();
        assert!(stats.bytes_outstanding >= 800);
        assert!(stats.bytes_high_water >= 800);
        ctx.put_f64(a);
        let stats = ctx.pool_stats();
        assert_eq!(stats.bytes_outstanding, 0);
        assert!(stats.bytes_high_water >= 800, "high water is sticky");
        // Returning a buffer that was never checked out saturates at 0.
        ctx.put_u64(vec![0; 64]);
        assert_eq!(ctx.pool_stats().bytes_outstanding, 0);
    }

    #[test]
    fn with_threads_shares_pool_and_telemetry() {
        let ctx = ExecContext::new(4);
        let view = ctx.with_threads(1);
        assert_eq!(view.threads(), 1);
        assert_eq!(ctx.threads(), 4);
        view.put_f64(vec![0.0; 8]);
        let _ = ctx.take_f64(8);
        assert_eq!(ctx.pool_stats().f64_reused, 1);
        ctx.enable_stats(true);
        ctx.begin_level(2);
        view.record_level(|p| p.partials += 3);
        assert_eq!(ctx.exec_stats().levels[0].partials, 3);
    }

    #[test]
    fn run_scoped_isolates_telemetry_but_shares_pool() {
        let ctx = ExecContext::new(2);
        ctx.enable_stats(true);
        let run = ctx.run_scoped();
        assert!(run.stats_enabled(), "scoped view inherits the enabled flag");
        assert_eq!(run.threads(), ctx.threads());
        run.begin_level(1);
        run.record_level(|p| p.evaluated += 5);
        assert_eq!(run.exec_stats().levels.len(), 1);
        assert!(
            ctx.exec_stats().levels.is_empty(),
            "parent sink must not see scoped-run profiles"
        );
        // Pool is shared both ways.
        run.put_f64(vec![0.0; 8]);
        let _ = ctx.take_f64(8);
        assert_eq!(ctx.pool_stats().f64_reused, 1);
        // Two concurrent scoped runs do not clobber each other.
        let a = ctx.run_scoped();
        let b = ctx.run_scoped();
        a.begin_level(1);
        b.begin_level(1);
        a.record_level(|p| p.evaluated += 1);
        b.record_level(|p| p.evaluated += 10);
        assert_eq!(a.exec_stats().levels[0].evaluated, 1);
        assert_eq!(b.exec_stats().levels[0].evaluated, 10);
        // Disabled parents hand out disabled scoped views.
        let cold = ExecContext::serial();
        assert!(!cold.run_scoped().stats_enabled());
    }

    #[test]
    fn worker_thread_records_merge_into_snapshot() {
        let ctx = ExecContext::new(2);
        ctx.enable_stats(true);
        ctx.begin_level(2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let view = ctx.with_threads(1);
                s.spawn(move || {
                    for _ in 0..50 {
                        view.record_level(|p| p.evaluated += 1);
                    }
                });
            }
        });
        ctx.record_level(|p| p.evaluated += 1);
        let stats = ctx.exec_stats();
        assert_eq!(stats.levels[0].evaluated, 201);
        assert_eq!(stats.levels[0].level, 2);
    }

    #[test]
    fn telemetry_disabled_is_noop() {
        let ctx = ExecContext::serial();
        ctx.begin_level(1);
        ctx.record_level(|p| p.candidates += 10);
        assert!(ctx.exec_stats().levels.is_empty());
    }

    #[test]
    fn stage_timing_accumulates() {
        let ctx = ExecContext::serial();
        ctx.enable_stats(true);
        ctx.begin_level(1);
        let out = ctx.time_stage(Stage::Evaluate, || 41 + 1);
        assert_eq!(out, 42);
        ctx.time_stage(Stage::Enumerate, || ());
        let stats = ctx.exec_stats();
        assert_eq!(stats.levels.len(), 1);
        // Durations are non-negative by construction; just check the level
        // profile exists and reset clears it.
        ctx.reset_stats();
        assert!(ctx.exec_stats().levels.is_empty());
    }

    #[test]
    fn time_stage_emits_spans_when_tracing() {
        let ctx = ExecContext::serial();
        ctx.tracer().set_enabled(true);
        // Tracing works even with stats disabled.
        let out = ctx.time_stage(Stage::Evaluate, || 7);
        assert_eq!(out, 7);
        let events = ctx.tracer().drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "evaluate");
        assert_eq!(events[0].cat, "core");
    }

    #[test]
    fn stats_json_and_table_render() {
        let ctx = ExecContext::serial();
        ctx.enable_stats(true);
        ctx.begin_level(1);
        ctx.record_level(|p| {
            p.candidates = 12;
            p.evaluated = 8;
            p.kernel = Some("fused");
            p.enum_kernel = Some("sharded");
            p.join = Duration::from_millis(5);
            p.dedup = Duration::from_millis(3);
        });
        ctx.begin_level(2);
        ctx.record_level(|p| {
            p.pairs = 40;
            p.candidates = 30;
            p.deduped = 4;
            p.pruned_size = 2;
            p.evaluated = 24;
            p.topk_entered = 3;
            p.rows_retained = 900;
            p.cols_retained = 17;
            p.compact = Duration::from_millis(2);
        });
        let stats = ctx.exec_stats();
        assert_eq!(stats.total_candidates(), 42);
        assert_eq!(stats.total_evaluated(), 32);
        let table = stats.render_table();
        assert!(table.contains("level"));
        assert!(table.contains("fused"));
        assert!(table.contains("sharded"));
        assert!(table.contains("join(s)"));
        assert!(table.contains("pairs"));
        let json = stats.to_json();
        assert!(json.contains("\"level\":2"));
        assert!(json.contains("\"kernel\":\"fused\""));
        assert!(json.contains("\"enum_kernel\":\"sharded\""));
        assert!(json.contains("\"join_secs\":0.005"));
        assert!(json.contains("\"dedup_secs\":0.003"));
        assert!(json.contains("\"pairs\":40"));
        assert!(json.contains("\"topk_entered\":3"));
        assert!(json.contains("\"rows_retained\":900"));
        assert!(json.contains("\"cols_retained\":17"));
        assert!(json.contains("\"compact_secs\":0.002"));
        assert!(json.contains("\"pool\":{"));
        assert!(json.contains("\"bytes_high_water\""));
        assert!(table.contains("rows_ret"));
        assert!(table.contains("compact(s)"));
    }

    #[test]
    fn retained_dims_merge_as_max() {
        let mut base = LevelProfile {
            rows_retained: 100,
            cols_retained: 9,
            ..Default::default()
        };
        base.merge(&LevelProfile {
            rows_retained: 80,
            cols_retained: 12,
            compact: Duration::from_millis(1),
            ..Default::default()
        });
        assert_eq!(base.rows_retained, 100);
        assert_eq!(base.cols_retained, 12);
        assert_eq!(base.compact, Duration::from_millis(1));
    }

    #[test]
    fn funnel_is_monotone() {
        let p = LevelProfile {
            level: 2,
            pairs: 100,
            candidates: 60,
            deduped: 10,
            pruned_score: 5,
            pruned_size: 3,
            pruned_parents: 2,
            evaluated: 40,
            ..Default::default()
        };
        let funnel = p.funnel();
        assert_eq!(funnel[0], ("pairs", 100));
        assert_eq!(funnel[1], ("merged", 60));
        assert_eq!(funnel[2], ("after_dedup", 50));
        assert_eq!(funnel[3], ("after_bound", 45));
        assert_eq!(funnel[4], ("after_filters", 40));
        assert_eq!(funnel[5], ("evaluated", 40));
        for w in funnel.windows(2) {
            assert!(w[0].1 >= w[1].1, "funnel must be monotone: {funnel:?}");
        }
    }

    #[test]
    fn exec_stats_refreshes_metric_gauges() {
        let ctx = ExecContext::serial();
        ctx.enable_stats(true);
        ctx.begin_level(1);
        ctx.record_level(|p| {
            p.evaluated = 10;
            p.cache_hits = 4;
        });
        let _ = ctx.take_f64(100);
        let _ = ctx.exec_stats();
        let flat = ctx.metrics().flat_values();
        let get = |name: &str| {
            flat.iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert!((get("core.bitmap_cache.hit_rate") - 0.4).abs() < 1e-12);
        assert!(get("linalg.pool.bytes_high_water") >= 800.0);
        assert_eq!(get("obs.trace.dropped_events"), 0.0);
    }

    #[test]
    fn flight_recorder_shared_across_scoped_views() {
        let ctx = ExecContext::serial();
        let scoped = ctx.run_scoped();
        scoped.flight().record(sliceline_obs::FlightRecord {
            job_id: 42,
            dataset: "abc".to_string(),
            outcome: "done".to_string(),
            error: None,
            queue_wait_secs: 0.0,
            run_secs: 0.5,
            config_json: "null".to_string(),
            stats_json: "null".to_string(),
            dropped_events: 0,
        });
        drop(scoped);
        // The record outlives the scoped view: the ring belongs to the
        // root context.
        assert_eq!(ctx.flight().get(42).unwrap().run_secs, 0.5);
    }

    #[test]
    fn pool_is_bounded() {
        let ctx = ExecContext::serial();
        for _ in 0..(MAX_POOLED + 10) {
            ctx.put_f64(vec![0.0; 1]);
        }
        assert!(ctx.inner.pool.f64_bufs.lock().unwrap().len() <= MAX_POOLED);
    }
}
