//! Small dense linear solvers for the ML substrate.
//!
//! The paper evaluates SliceLine on errors produced by linear regression
//! (`lm`) and multinomial logistic regression (`mlogit`). Linear regression
//! via normal equations needs a symmetric positive (semi-)definite solve
//! `(XᵀX + λI) w = Xᵀy`; this module provides the Cholesky factorization
//! and triangular solves for it.

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive definite
/// matrix, returning the lower-triangular factor `L` (upper part zeroed).
pub fn cholesky(a: &DenseMatrix) -> Result<DenseMatrix> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::NotSquare {
            op: "cholesky",
            rows: n,
            cols: m,
        });
    }
    let mut l = DenseMatrix::zeros(n, n);
    for j in 0..n {
        let mut diag = a.get(j, j);
        for k in 0..j {
            let v = l.get(j, k);
            diag -= v * v;
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: j });
        }
        let dsqrt = diag.sqrt();
        l.set(j, j, dsqrt);
        for i in (j + 1)..n {
            let mut v = a.get(i, j);
            for k in 0..j {
                v -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, v / dsqrt);
        }
    }
    Ok(l)
}

/// Solves `L x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = l.rows();
    if l.cols() != n {
        return Err(LinalgError::NotSquare {
            op: "solve_lower",
            rows: l.rows(),
            cols: l.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_lower",
            lhs: l.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for (j, xj) in x.iter().enumerate().take(i) {
            acc -= l.get(i, j) * xj;
        }
        x[i] = acc / l.get(i, i);
    }
    Ok(x)
}

/// Solves `Lᵀ x = b` for lower-triangular `L` (backward substitution on the
/// transpose).
#[allow(clippy::needless_range_loop)] // dual-index access reads better than zip here
pub fn solve_lower_transposed(l: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = l.rows();
    if l.cols() != n {
        return Err(LinalgError::NotSquare {
            op: "solve_lower_transposed",
            rows: l.rows(),
            cols: l.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_lower_transposed",
            lhs: l.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in (i + 1)..n {
            acc -= l.get(j, i) * x[j];
        }
        x[i] = acc / l.get(i, i);
    }
    Ok(x)
}

/// Solves the symmetric positive definite system `A x = b` via Cholesky.
pub fn solve_spd(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let l = cholesky(a)?;
    let y = solve_lower(&l, b)?;
    solve_lower_transposed(&l, &y)
}

#[allow(clippy::needless_range_loop)]
/// Solves the (ridge-regularized) normal equations
/// `(XᵀX + λI) w = Xᵀ y` for least squares regression.
///
/// `lambda > 0` guarantees positive definiteness even with collinear
/// features (which one-hot encoded data always has).
pub fn solve_normal_equations(x: &DenseMatrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_normal_equations",
            lhs: x.shape(),
            rhs: (y.len(), 1),
        });
    }
    let d = x.cols();
    // Gram matrix XᵀX, accumulated row by row to avoid materializing Xᵀ.
    let mut gram = DenseMatrix::zeros(d, d);
    let mut xty = vec![0.0; d];
    for r in 0..x.rows() {
        let row = x.row(r);
        for i in 0..d {
            let xi = row[i];
            if xi == 0.0 {
                continue;
            }
            xty[i] += xi * y[r];
            let grow = gram.row_mut(i);
            for (g, &xj) in grow.iter_mut().zip(row.iter()) {
                *g += xi * xj;
            }
        }
    }
    for i in 0..d {
        let v = gram.get(i, i) + lambda;
        gram.set(i, i, v);
    }
    solve_spd(&gram, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        // A = B Bᵀ + I for a simple B, guaranteed SPD.
        DenseMatrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 3.0, 1.0, 3.0, 7.0]).unwrap()
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn cholesky_rejects_not_square_and_not_spd() {
        assert!(cholesky(&DenseMatrix::zeros(2, 3)).is_err());
        let indef = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            cholesky(&indef),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn triangular_solves() {
        let l = DenseMatrix::from_vec(2, 2, vec![2.0, 0.0, 1.0, 3.0]).unwrap();
        let x = solve_lower(&l, &[4.0, 11.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
        // Lᵀ x = b
        let x = solve_lower_transposed(&l, &[7.0, 9.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
        assert!(solve_lower(&l, &[1.0]).is_err());
        assert!(solve_lower_transposed(&l, &[1.0]).is_err());
    }

    #[test]
    fn solve_spd_roundtrip() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        for (xs, xt) in x.iter().zip(x_true.iter()) {
            assert!((xs - xt).abs() < 1e-10);
        }
    }

    #[test]
    fn normal_equations_recover_exact_fit() {
        // y = 2*x1 - 3*x2 exactly; tiny ridge keeps SPD.
        let x = DenseMatrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 1.0]).unwrap();
        let y: Vec<f64> = (0..4)
            .map(|r| 2.0 * x.get(r, 0) - 3.0 * x.get(r, 1))
            .collect();
        let w = solve_normal_equations(&x, &y, 1e-9).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-4);
        assert!((w[1] + 3.0).abs() < 1e-4);
        assert!(solve_normal_equations(&x, &[1.0], 1e-9).is_err());
    }

    #[test]
    fn normal_equations_handle_collinearity_with_ridge() {
        // Two identical columns: singular Gram matrix, ridge must rescue it.
        let x = DenseMatrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        let y = vec![2.0, 4.0, 6.0];
        let w = solve_normal_equations(&x, &y, 1e-6).unwrap();
        // Prediction quality matters, not the individual weights.
        #[allow(clippy::needless_range_loop)]
        for r in 0..3 {
            let pred = w[0] * x.get(r, 0) + w[1] * x.get(r, 1);
            assert!((pred - y[r]).abs() < 1e-3);
        }
    }
}
