//! # sliceline-linalg
//!
//! Dense and sparse (CSR) linear algebra substrate for the SliceLine
//! reproduction.
//!
//! The SliceLine paper (Sagadeeva & Boehm, SIGMOD 2021) expresses slice
//! enumeration entirely in linear algebra so that ML systems such as Apache
//! SystemDS or R can compile it into efficient local or distributed plans.
//! This crate provides the operations that the paper's Algorithm 1 relies on:
//!
//! * [`DenseMatrix`] — row-major dense `f64` matrices with element-wise
//!   operations, aggregations and (parallel) matrix multiplication,
//! * [`CsrMatrix`] — compressed sparse row matrices used for the one-hot
//!   encoded feature matrix `X` and the slice matrix `S`,
//! * contingency tables (`table(rix, cix)`), `removeEmpty`, selection
//!   matrices and upper-triangle extraction ([`table`]),
//! * vector kernels: `cumsum`, `cumprod`, sequences ([`vector`]),
//! * sparse-sparse and sparse-dense products including the symmetric
//!   `S·Sᵀ` self-join used for pair enumeration ([`spgemm`]),
//! * SystemDS-style block-partitioned matrices ([`blocked`]) modelling
//!   the paper's distributed 1K×1K block storage,
//! * a small dense Cholesky solver for the ML substrate ([`solve`]),
//! * a scoped-thread parallel-for helper ([`parallel`]),
//! * a unified execution context — thread pool + scratch-buffer reuse +
//!   per-level telemetry — that every kernel entry point takes
//!   ([`context`]).
//!
//! Everything is implemented from scratch on `std` scoped threads; no
//! BLAS or external matrix crates are used.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod agg;
pub mod bitmap;
pub mod blocked;
pub mod context;
pub mod csr;
pub mod dense;
pub mod error;
pub mod parallel;
pub mod simd;
pub mod solve;
pub mod spgemm;
pub mod table;
pub mod vector;

pub use bitmap::BitMatrix;
pub use blocked::BlockedMatrix;
pub use context::{ExecContext, ExecStats, LevelProfile, MemoryBudget, PoolStats, Stage};
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{LinalgError, Result};
pub use parallel::ParallelConfig;
pub use simd::{SimdKernel, SimdLevel};
// Observability re-exports so downstream crates can spell tracer/metrics
// types without depending on `sliceline-obs` directly.
pub use sliceline_obs::{
    chrome_trace, sample_rss, secs, ArgValue, FlightRecord, FlightRecorder, Manifest,
    MetricsRegistry, SpanGuard, TraceEvent, Tracer,
};
// Whole-module re-exports for the JSON helpers and the OpenMetrics
// renderer/linter (used by `sliceline metrics-dump`).
pub use sliceline_obs::{json, openmetrics};
