//! Property tests: sparse kernels against their dense reference
//! implementations, and structural invariants of CSR construction.

use proptest::prelude::*;
use sliceline_linalg::agg;
use sliceline_linalg::spgemm::{self_overlap, self_overlap_pairs_eq, sp_dense, spgemm};
use sliceline_linalg::table::{selection_matrix, table_from_pairs, upper_tri_eq};
use sliceline_linalg::vector;
use sliceline_linalg::{CsrMatrix, DenseMatrix, ExecContext};

/// Random sparse matrix via triplets (duplicates intended — they test the
/// summing path).
fn csr_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(
            (
                0..r,
                0..c,
                prop_oneof![Just(-2.0), Just(-1.0), Just(1.0), Just(2.0), Just(0.5)],
            ),
            0..=(r * c),
        )
        .prop_map(move |trips| CsrMatrix::from_triplets(r, c, &trips).unwrap())
    })
}

/// Random binary matrix with sorted unique columns per row.
fn binary_strategy(max_rows: usize, cols: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..cols as u32, 0..=cols.min(5)),
        1..=max_rows,
    )
    .prop_map(move |rows| {
        let rows: Vec<Vec<u32>> = rows.into_iter().map(|s| s.into_iter().collect()).collect();
        CsrMatrix::from_binary_rows(cols, &rows).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_dense_roundtrip(m in csr_strategy(8, 8)) {
        let dense = m.to_dense();
        prop_assert_eq!(CsrMatrix::from_dense(&dense), m);
    }

    #[test]
    fn transpose_is_involution_and_matches_dense(m in csr_strategy(8, 8)) {
        let t = m.transpose();
        prop_assert_eq!(t.to_dense(), m.to_dense().transpose());
        prop_assert_eq!(t.transpose(), m.clone());
        prop_assert_eq!(t.nnz(), m.nnz());
    }

    #[test]
    fn spgemm_matches_dense_matmul(a in csr_strategy(6, 5), b in csr_strategy(5, 7)) {
        // Reshape b to match a's inner dimension.
        let bt = if b.rows() == a.cols() {
            b
        } else {
            let rows: Vec<usize> = (0..a.cols()).map(|i| i % b.rows()).collect();
            b.select_rows(&rows).unwrap()
        };
        let sparse = spgemm(&a, &bt).unwrap();
        let dense = a.to_dense().matmul(&bt.to_dense()).unwrap();
        prop_assert!(sparse.to_dense().approx_eq(&dense, 1e-9));
    }

    #[test]
    fn sp_dense_matches_dense_matmul(a in csr_strategy(6, 5)) {
        let b = DenseMatrix::from_vec(
            a.cols(),
            3,
            (0..a.cols() * 3).map(|i| (i % 7) as f64 - 3.0).collect(),
        ).unwrap();
        let got = sp_dense(&a, &b).unwrap();
        let want = a.to_dense().matmul(&b).unwrap();
        prop_assert!(got.approx_eq(&want, 1e-9));
    }

    #[test]
    fn aggregations_match_dense_reference(m in csr_strategy(8, 8)) {
        let d = m.to_dense();
        prop_assert_eq!(agg::col_sums_csr(&m), agg::col_sums_dense(&d));
        prop_assert_eq!(agg::row_sums_csr(&m), agg::row_sums_dense(&d));
        prop_assert_eq!(agg::col_maxs_csr(&m), agg::col_maxs_dense(&d));
        prop_assert_eq!(agg::row_maxs_csr(&m), agg::row_maxs_dense(&d));
    }

    #[test]
    fn parallel_col_sums_equal_serial(m in csr_strategy(16, 8), threads in 1usize..6) {
        let serial = agg::col_sums_csr(&m);
        let parallel = agg::col_sums_csr_parallel(&m, &ExecContext::new(threads));
        for (a, b) in serial.iter().zip(parallel.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_vecmat_match_dense(m in csr_strategy(8, 8)) {
        let v: Vec<f64> = (0..m.cols()).map(|i| (i % 5) as f64 - 2.0).collect();
        let w: Vec<f64> = (0..m.rows()).map(|i| (i % 3) as f64).collect();
        let d = m.to_dense();
        prop_assert_eq!(m.matvec(&v).unwrap(), d.matvec(&v).unwrap());
        prop_assert_eq!(m.vecmat(&w).unwrap(), d.vecmat(&w).unwrap());
    }

    #[test]
    fn self_overlap_matches_spgemm(s in binary_strategy(8, 6)) {
        let got = self_overlap(&s).unwrap();
        let want = spgemm(&s, &s.transpose()).unwrap();
        prop_assert_eq!(got.to_dense(), want.to_dense());
    }

    #[test]
    fn overlap_pairs_match_materialized_product(s in binary_strategy(8, 6), target in 0usize..4) {
        let pairs = self_overlap_pairs_eq(&s, target).unwrap();
        let product = spgemm(&s, &s.transpose()).unwrap();
        let expect = upper_tri_eq(&product, target as f64).unwrap();
        prop_assert_eq!(pairs, expect);
    }

    #[test]
    fn table_counts_every_pair(
        pairs in proptest::collection::vec((0usize..5, 0usize..7), 0..30)
    ) {
        let rix: Vec<usize> = pairs.iter().map(|&(r, _)| r).collect();
        let cix: Vec<usize> = pairs.iter().map(|&(_, c)| c).collect();
        let t = table_from_pairs(&rix, &cix, 5, 7).unwrap();
        // Total mass equals the number of pairs.
        let total: f64 = agg::col_sums_csr(&t).iter().sum();
        prop_assert_eq!(total, pairs.len() as f64);
        // Spot-check one cell against a direct count.
        if let Some(&(r, c)) = pairs.first() {
            let count = pairs.iter().filter(|&&p| p == (r, c)).count();
            prop_assert_eq!(t.get(r, c), count as f64);
        }
    }

    #[test]
    fn selection_matrix_extracts_rows(
        indices in proptest::collection::vec(0usize..6, 1..5),
        m in csr_strategy(6, 4),
    ) {
        let m = if m.rows() == 6 { m } else {
            let rows: Vec<usize> = (0..6).map(|i| i % m.rows()).collect();
            m.select_rows(&rows).unwrap()
        };
        let p = selection_matrix(&indices, 6).unwrap();
        let extracted = spgemm(&p, &m).unwrap();
        let direct = m.select_rows(&indices).unwrap();
        prop_assert_eq!(extracted.to_dense(), direct.to_dense());
    }

    #[test]
    fn remove_empty_rows_preserves_content(m in csr_strategy(8, 8)) {
        let (compact, kept) = m.remove_empty_rows();
        prop_assert_eq!(compact.rows(), kept.len());
        for (new_r, &old_r) in kept.iter().enumerate() {
            prop_assert_eq!(compact.row_cols(new_r), m.row_cols(old_r));
        }
        prop_assert_eq!(compact.nnz(), m.nnz());
    }

    #[test]
    fn cumsum_cumprod_invariants(v in proptest::collection::vec(0.0f64..4.0, 0..20)) {
        let cs = vector::cumsum(&v);
        if let Some(last) = cs.last() {
            let sum: f64 = v.iter().sum();
            prop_assert!((last - sum).abs() < 1e-9);
        }
        // cumsum is non-decreasing for non-negative input.
        for w in cs.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        let cp = vector::cumprod(&v);
        prop_assert_eq!(cp.len(), v.len());
    }

    #[test]
    fn order_desc_is_a_sorted_permutation(v in proptest::collection::vec(-5.0f64..5.0, 0..20)) {
        let idx = vector::order_desc(&v);
        prop_assert_eq!(idx.len(), v.len());
        let mut seen = idx.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..v.len()).collect::<Vec<_>>());
        for w in idx.windows(2) {
            prop_assert!(v[w[0]] >= v[w[1]]);
        }
    }

    #[test]
    fn rbind_select_roundtrip(a in csr_strategy(5, 6), b in csr_strategy(4, 6)) {
        prop_assume!(a.cols() == b.cols());
        let stacked = a.rbind(&b).unwrap();
        prop_assert_eq!(stacked.rows(), a.rows() + b.rows());
        let top = stacked.select_rows(&(0..a.rows()).collect::<Vec<_>>()).unwrap();
        prop_assert_eq!(top, a);
    }
}
