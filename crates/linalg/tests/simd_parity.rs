//! SIMD ≡ scalar parity for every bitmap hot-path kernel.
//!
//! The dispatch contract (`crate::simd` module docs) is that the vector
//! backends are **bit-for-bit identical** to the portable scalar loops:
//! integer reductions are associative, and the float error aggregation
//! keeps the scalar scan's exact ascending-row association. These tests
//! pin that contract at word counts straddling every lane and unroll
//! boundary of the AVX2 kernels (4 words per 256-bit vector, 4-vector
//! unroll, 4-word zero-skip blocks) — including the empty and sub-lane
//! tails — with full-precision random errors, so any reassociation in a
//! vector kernel shows up as an exact-equality failure, not rounding.
//!
//! On hardware without a vector backend `detect()` returns `Scalar` and
//! the comparisons are trivially true; the suite still exercises the
//! boundary lengths through the scalar paths.

use proptest::prelude::*;
use sliceline_linalg::bitmap::{
    and2_into_with, and_into_with, masked_stats_and2_multi, masked_stats_and2_with,
    masked_stats_with, popcount_with, MULTI_WAY,
};
use sliceline_linalg::simd;
use sliceline_linalg::SimdLevel;

/// Word counts straddling the AVX2 lane (4 words), unroll (16 words), and
/// zero-skip (4 words) boundaries, plus empty and sub-lane tails.
const BOUNDARY_LENS: &[usize] = &[
    0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 19, 31, 32, 33, 63, 64, 65, 127, 128, 129,
];

/// A bitmap of `words` words mixing dense, sparse, empty, and all-ones
/// regions (zero words exercise the 4-word skip blocks; all-ones words
/// exercise full-lane scans).
fn bitmap_strategy(words: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            3 => 0u64..=u64::MAX,
            2 => Just(0u64),
            1 => Just(u64::MAX),
            1 => (0u64..=u64::MAX).prop_map(|w| w & 0x8000_0000_0000_0001),
        ],
        words..=words,
    )
}

/// `(a, b, errors)` at a boundary word count, with one error per
/// coverable row at full f64 precision.
fn case_strategy() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<f64>)> {
    (0usize..BOUNDARY_LENS.len()).prop_flat_map(|i| {
        let words = BOUNDARY_LENS[i];
        (
            bitmap_strategy(words),
            bitmap_strategy(words),
            proptest::collection::vec(0.0f64..1.0, words * 64..=words * 64),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `and_into` and `and2_into` produce identical words at every level.
    #[test]
    fn and_kernels_agree((a, b, _e) in case_strategy()) {
        let vec_level = simd::detect();
        let mut scalar_acc = a.clone();
        and_into_with(SimdLevel::Scalar, &mut scalar_acc, &b);
        let mut vec_acc = a.clone();
        and_into_with(vec_level, &mut vec_acc, &b);
        prop_assert_eq!(&scalar_acc, &vec_acc);

        let mut scalar_dst = Vec::new();
        and2_into_with(SimdLevel::Scalar, &mut scalar_dst, &a, &b);
        let mut vec_dst = Vec::new();
        and2_into_with(vec_level, &mut vec_dst, &a, &b);
        prop_assert_eq!(&scalar_dst, &vec_dst);
        prop_assert_eq!(&scalar_acc, &scalar_dst);
    }

    /// Popcount agrees exactly (integer reduction, lane order free).
    #[test]
    fn popcount_agrees((a, _b, _e) in case_strategy()) {
        prop_assert_eq!(
            popcount_with(SimdLevel::Scalar, &a),
            popcount_with(simd::detect(), &a)
        );
    }

    /// The masked error scans agree bit-for-bit on full-precision floats:
    /// `masked_stats`, the fused `masked_stats_and2`, and the fused pair
    /// against a materialize-then-scan reference.
    #[test]
    fn masked_stats_agree((a, b, errors) in case_strategy()) {
        let vec_level = simd::detect();
        prop_assert_eq!(
            masked_stats_with(SimdLevel::Scalar, &a, &errors),
            masked_stats_with(vec_level, &a, &errors)
        );
        let fused_scalar = masked_stats_and2_with(SimdLevel::Scalar, &a, &b, &errors);
        let fused_vec = masked_stats_and2_with(vec_level, &a, &b, &errors);
        prop_assert_eq!(fused_scalar, fused_vec);
        // Fused AND+scan == materialized AND then scan, on either backend.
        let mut both = Vec::new();
        and2_into_with(SimdLevel::Scalar, &mut both, &a, &b);
        prop_assert_eq!(fused_scalar, masked_stats_with(vec_level, &both, &errors));
    }

    /// The interleaved multi-slice kernel returns, per sibling, exactly
    /// what the one-pair kernel returns at every group width 1..=MULTI_WAY.
    #[test]
    fn multi_matches_individual(
        (parent, _b, errors) in case_strategy(),
        seeds in proptest::collection::vec(0u64..=u64::MAX, MULTI_WAY..=MULTI_WAY),
        width in 1usize..=MULTI_WAY,
    ) {
        let words = parent.len();
        // Deterministic sibling columns derived from the seeds so widths
        // and lengths stay in lockstep with the parent.
        let cols: Vec<Vec<u64>> = seeds[..width]
            .iter()
            .map(|&s| {
                let mut state = s | 1;
                (0..words)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        if state & 7 == 0 { 0 } else { state }
                    })
                    .collect()
            })
            .collect();
        let col_refs: Vec<&[u64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut multi = vec![(0.0, 0.0, 0.0); width];
        masked_stats_and2_multi(&parent, &col_refs, &errors, &mut multi);
        for (j, col) in col_refs.iter().enumerate() {
            let single = masked_stats_and2_with(SimdLevel::Scalar, &parent, col, &errors);
            prop_assert_eq!(multi[j], single, "sibling {} of {}", j, width);
        }
    }
}

/// Deterministic boundary sweep that runs even where the proptest runner
/// is unavailable: all-ones bitmaps at every boundary length, checked
/// across every kernel.
#[test]
fn boundary_lengths_fixed() {
    let vec_level = simd::detect();
    for &words in BOUNDARY_LENS {
        let a = vec![u64::MAX; words];
        let b: Vec<u64> = (0..words as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
            .collect();
        let errors: Vec<f64> = (0..words * 64).map(|i| (i % 131) as f64 * 0.25).collect();
        assert_eq!(
            popcount_with(SimdLevel::Scalar, &b),
            popcount_with(vec_level, &b),
            "popcount at {words} words"
        );
        let mut scalar_dst = Vec::new();
        and2_into_with(SimdLevel::Scalar, &mut scalar_dst, &a, &b);
        let mut vec_dst = Vec::new();
        and2_into_with(vec_level, &mut vec_dst, &a, &b);
        assert_eq!(scalar_dst, vec_dst, "and2 at {words} words");
        assert_eq!(
            masked_stats_with(SimdLevel::Scalar, &b, &errors),
            masked_stats_with(vec_level, &b, &errors),
            "masked_stats at {words} words"
        );
        assert_eq!(
            masked_stats_and2_with(SimdLevel::Scalar, &a, &b, &errors),
            masked_stats_and2_with(vec_level, &a, &b, &errors),
            "masked_stats_and2 at {words} words"
        );
        // Interleaved multi-slice kernel vs the one-pair kernel, at every
        // sibling width, over the same boundary length.
        for width in 1..=MULTI_WAY {
            let cols: Vec<Vec<u64>> = (0..width as u64)
                .map(|j| {
                    (0..words as u64)
                        .map(|i| {
                            let w = (i + 1)
                                .wrapping_mul(j * 2 + 1)
                                .wrapping_mul(0xD134_2543_DE82_EF95);
                            if w & 15 == 0 {
                                0
                            } else {
                                w
                            }
                        })
                        .collect()
                })
                .collect();
            let col_refs: Vec<&[u64]> = cols.iter().map(|c| c.as_slice()).collect();
            let mut multi = vec![(0.0, 0.0, 0.0); width];
            masked_stats_and2_multi(&b, &col_refs, &errors, &mut multi);
            for (j, col) in col_refs.iter().enumerate() {
                assert_eq!(
                    multi[j],
                    masked_stats_and2_with(SimdLevel::Scalar, &b, col, &errors),
                    "multi sibling {j} of {width} at {words} words"
                );
            }
        }
    }
}
