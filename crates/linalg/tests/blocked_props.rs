//! Property tests for the SystemDS-style block-partitioned matrices.

use proptest::prelude::*;
use sliceline_linalg::{BlockedMatrix, CsrMatrix};

fn csr_strategy() -> impl Strategy<Value = CsrMatrix> {
    (1usize..=12, 1usize..=12).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r, 0..c, -3.0f64..3.0), 0..=(r * c)).prop_map(
            move |mut trips| {
                // Drop exact zeros to keep the nnz interpretation clean.
                trips.retain(|t| t.2.abs() > 1e-6);
                CsrMatrix::from_triplets(r, c, &trips).unwrap()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_any_block_size(m in csr_strategy(), bs in 1usize..16) {
        let blocked = BlockedMatrix::from_csr(&m, bs).unwrap();
        prop_assert_eq!(blocked.to_csr(), m.clone());
        prop_assert_eq!(blocked.rows(), m.rows());
        prop_assert_eq!(blocked.cols(), m.cols());
        // All mass is preserved: nnz of reassembly equals original.
        prop_assert!(blocked.num_blocks() <= blocked.block_slots());
    }

    #[test]
    fn matvec_matches_flat(m in csr_strategy(), bs in 1usize..16) {
        let v: Vec<f64> = (0..m.cols()).map(|i| (i as f64 * 0.7) - 1.0).collect();
        let blocked = BlockedMatrix::from_csr(&m, bs).unwrap();
        let got = blocked.matvec(&v).unwrap();
        let want = m.matvec(&v).unwrap();
        for (a, b) in got.iter().zip(want.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_matches_flat(a in csr_strategy(), b in csr_strategy(), bs in 1usize..8) {
        prop_assume!(a.cols() == b.rows());
        let ab = BlockedMatrix::from_csr(&a, bs).unwrap();
        let bb = BlockedMatrix::from_csr(&b, bs).unwrap();
        let got = ab.matmul(&bb).unwrap().to_csr().to_dense();
        let want = sliceline_linalg::spgemm::spgemm(&a, &b).unwrap().to_dense();
        prop_assert!(got.approx_eq(&want, 1e-9));
    }

    #[test]
    fn block_density_bounds(m in csr_strategy(), bs in 1usize..16) {
        let blocked = BlockedMatrix::from_csr(&m, bs).unwrap();
        let d = blocked.block_density();
        prop_assert!((0.0..=1.0).contains(&d));
        if m.nnz() == 0 {
            prop_assert_eq!(blocked.num_blocks(), 0);
        } else {
            prop_assert!(blocked.avg_nnz_per_block() >= 1.0);
        }
    }
}
