//! # sliceline-serve
//!
//! A multi-tenant slice-finding service built on the session-oriented
//! execution core ([`sliceline::DatasetSession`]):
//!
//! - [`registry`]: a content-hash-keyed **dataset registry**. Registering
//!   the same `(X, errors)` twice returns the same warm session, so every
//!   query after the first skips prepare/encode/pack entirely; swapping
//!   the error vector keeps the encoded matrix and bitmaps (delta
//!   re-slicing).
//! - [`jobs`]: a thread-per-worker **job queue** with explicit job states
//!   (`queued → running → done | failed`, `cancelled` from the queue) and
//!   cancellation of queued jobs.
//! - [`http`]: a minimal std-only HTTP front end. `/metrics` serves the
//!   shared [`MetricsRegistry`](sliceline_obs::MetricsRegistry) snapshot
//!   and `/manifest` a run manifest built with the existing
//!   [`Manifest`](sliceline_obs::Manifest) exporter, so the service emits
//!   the same machine-readable artifacts as `sliceline find
//!   --metrics-json`.
//!
//! The service never re-implements slice finding: jobs call
//! [`DatasetSession::query`](sliceline::DatasetSession::query), which runs
//! the same lattice runner as the one-shot API — results are bit-for-bit
//! identical to `sliceline find` on the same data and parameters.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod http;
pub mod jobs;
pub mod registry;

pub use http::{Server, ServerConfig};
pub use jobs::{JobQueue, JobState, JobStatus, SloConfig};
pub use registry::{content_hash, DatasetRegistry};

/// Service-layer error: an HTTP-ish status code plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Status code the HTTP layer maps this to (400/404/409/500).
    pub status: u16,
    /// Human-readable message (also sent as the JSON `error` field).
    pub message: String,
}

impl ServeError {
    /// Client error (HTTP 400).
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServeError {
            status: 400,
            message: message.into(),
        }
    }

    /// Unknown dataset or job (HTTP 404).
    pub fn not_found(message: impl Into<String>) -> Self {
        ServeError {
            status: 404,
            message: message.into(),
        }
    }

    /// Server-side failure (HTTP 500).
    pub fn internal(message: impl Into<String>) -> Self {
        ServeError {
            status: 500,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.status)
    }
}

impl std::error::Error for ServeError {}
