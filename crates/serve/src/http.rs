//! Minimal std-only HTTP/1.1 front end over the registry + job queue.
//!
//! Routes (all responses are JSON, connections close after one
//! request/response exchange):
//!
//! | Method & path            | Body                                   | Effect |
//! |--------------------------|----------------------------------------|--------|
//! | `GET /health`            | —                                      | liveness probe |
//! | `GET /metrics`           | —                                      | shared metrics registry snapshot |
//! | `GET /manifest`          | —                                      | service run manifest (same schema as `sliceline find --metrics-json`) |
//! | `GET /datasets`          | —                                      | registered dataset ids |
//! | `POST /datasets`         | `{"path", "errors", "bins"?, "drop"?}` | load a CSV from the server's disk, register a session, return its id |
//! | `POST /datasets/ID/errors` | `{"path", "errors"}`                 | swap the error vector (delta re-slicing) |
//! | `POST /jobs`             | `{"dataset", "k"?, "sigma"?, "trace"?, "priority"?, "budget_ms"?, "max_evals"?, ...}` | enqueue a query, return the job id |
//! | `GET /jobs/ID`           | —                                      | job state + result when done |
//! | `GET /jobs/ID/profile`   | —                                      | flight record of a finished job (funnel, counters, latency, outcome) |
//! | `GET /jobs/ID/trace`     | —                                      | Chrome trace of a job submitted with `"trace": true` |
//! | `GET /debug/flightrecorder` | —                                   | last N flight records, newest first (`?n=` caps the dump) |
//! | `POST /jobs/ID/cancel`   | —                                      | cancel a queued job |
//! | `POST /shutdown`         | —                                      | stop the accept loop |
//!
//! `GET /metrics?format=openmetrics` switches the metrics snapshot to
//! the OpenMetrics text exposition (quantile gauges, cumulative
//! `_bucket` series, per-dataset labels); the default stays JSON.

use crate::jobs::{JobQueue, JobStatus, SloConfig};
use crate::registry::DatasetRegistry;
use crate::ServeError;
use sliceline::{CompactKernel, EnumKernel, EvalKernel, MinSupport, SliceLineConfig, SliceQuery};
use sliceline_frame::{csv::read_csv_file, Column, DatasetEncoder, IntMatrix};
use sliceline_linalg::ExecContext;
use sliceline_obs::json::{escape, parse, Json};
use sliceline_obs::{openmetrics, Manifest};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Server settings (see `sliceline serve` in the CLI).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing jobs (0 = one per core).
    pub workers: usize,
    /// Latency/queue-depth objectives; burn-rate gauges appear in
    /// `/metrics` and the manifest when set.
    pub slo: SloConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            slo: SloConfig::default(),
        }
    }
}

/// The bound service: registry + job queue + listening socket.
pub struct Server {
    registry: Arc<DatasetRegistry>,
    queue: JobQueue,
    listener: TcpListener,
    stop: AtomicBool,
    slo: SloConfig,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl Server {
    /// Binds the listener and spawns the worker pool. The execution
    /// context (scratch pool, tracer, metrics) is shared by every
    /// session the server hosts.
    pub fn bind(config: &ServerConfig, exec: ExecContext) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        // Always-on telemetry: each query's scoped run folds its cache
        // hit/miss/bypass counters and SIMD level into the shared metrics
        // registry, so `/metrics` shows warm-session behavior. Counter
        // bumps are cheap relative to any query.
        exec.enable_stats(true);
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let registry = Arc::new(DatasetRegistry::new(exec));
        let queue = JobQueue::with_slo(Arc::clone(&registry), workers, config.slo);
        Ok(Server {
            registry,
            queue,
            listener,
            stop: AtomicBool::new(false),
            slo: config.slo,
        })
    }

    /// The actually-bound address (resolves `:0`).
    pub fn addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The dataset registry (for embedding the service without HTTP).
    pub fn registry(&self) -> &Arc<DatasetRegistry> {
        &self.registry
    }

    /// The job queue (for embedding the service without HTTP).
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// Accept loop: one request per connection, handled inline. Returns
    /// after a `POST /shutdown` request. Inline handling keeps ordering
    /// simple (register-then-submit from one client cannot race); the
    /// heavy lifting — the queries themselves — runs on the worker pool.
    pub fn run(&self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            let _ = self.handle(stream);
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        Ok(())
    }

    fn handle(&self, mut stream: TcpStream) -> std::io::Result<()> {
        self.registry
            .exec()
            .metrics()
            .counter("serve.http.requests")
            .inc();
        let request = match read_request(&mut stream) {
            Ok(r) => r,
            Err(e) => return write_response(&mut stream, 400, &error_json(&e), JSON_TYPE),
        };
        let (status, body, content_type) = self.route(&request);
        write_response(&mut stream, status, &body, content_type)
    }

    fn route(&self, req: &Request) -> (u16, String, &'static str) {
        // Split off the query string before segmenting the path.
        let (path, query) = match req.path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (req.path.as_str(), ""),
        };
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let mut content_type = JSON_TYPE;
        let result = match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["health"]) => Ok("{\"ok\":true}".to_string()),
            ("GET", ["metrics"]) => {
                // Refresh the derived gauges (pool high-water, SIMD
                // level, resident-set size) before serializing; cache
                // counters were folded by each query's own scoped
                // snapshot.
                let _ = self.registry.exec().exec_stats();
                let _ = sliceline_linalg::sample_rss(self.registry.exec().metrics());
                if query_param(query, "format") == Some("openmetrics") {
                    content_type = openmetrics::CONTENT_TYPE;
                    Ok(openmetrics::render(
                        &self.registry.exec().metrics().snapshot(),
                    ))
                } else {
                    Ok(self.registry.exec().metrics().to_json())
                }
            }
            ("GET", ["manifest"]) => Ok(self.manifest().to_json()),
            ("GET", ["datasets"]) => Ok(format!(
                "{{\"datasets\":[{}]}}",
                self.registry
                    .ids()
                    .iter()
                    .map(|id| format!("\"{id}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            )),
            ("POST", ["datasets"]) => self.register_dataset(&req.body),
            ("POST", ["datasets", id, "errors"]) => self.swap_errors(id, &req.body),
            ("POST", ["jobs"]) => self.submit_job(&req.body),
            ("GET", ["jobs", id]) => self.job_status(id),
            ("GET", ["jobs", id, "profile"]) => self.job_profile(id),
            ("GET", ["jobs", id, "trace"]) => self.job_trace(id),
            ("GET", ["debug", "flightrecorder"]) => {
                let n = query_param(query, "n")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(32);
                Ok(self.registry.exec().flight().to_json(n))
            }
            ("POST", ["jobs", id, "cancel"]) => self.cancel_job(id),
            ("POST", ["shutdown"]) => {
                self.stop.store(true, Ordering::SeqCst);
                Ok("{\"stopping\":true}".to_string())
            }
            _ => Err(ServeError::not_found(format!(
                "no route {} {}",
                req.method, req.path
            ))),
        };
        match result {
            Ok(body) => (200, body, content_type),
            Err(e) => (e.status, error_json(&e.message), JSON_TYPE),
        }
    }

    /// Service manifest: same required-key schema as the CLI's
    /// `--metrics-json` (validated by `trace_check --manifest`).
    fn manifest(&self) -> Manifest {
        let mut m = Manifest::new("sliceline-serve");
        m.set_str("git", &git_describe());
        let slo_latency = self
            .slo
            .latency_ms
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_string());
        let slo_depth = self
            .slo
            .queue_depth
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_string());
        m.set_raw(
            "config",
            format!(
                "{{\"workers\":{},\"slo_latency_ms\":{slo_latency},\"slo_queue_depth\":{slo_depth}}}",
                self.queue.workers()
            ),
        );
        m.set_raw(
            "dataset",
            format!(
                "{{\"resident\":{},\"ids\":[{}]}}",
                self.registry.len(),
                self.registry
                    .ids()
                    .iter()
                    .map(|id| format!("\"{id}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        m.set_raw("metrics", self.registry.exec().metrics().to_json());
        m
    }

    fn register_dataset(&self, body: &str) -> Result<String, ServeError> {
        let (x0, errors) = load_dataset(body)?;
        let id = self.registry.register(&x0, &errors)?;
        Ok(format!(
            "{{\"id\":\"{id}\",\"n\":{},\"m\":{}}}",
            x0.rows(),
            x0.cols()
        ))
    }

    fn swap_errors(&self, id: &str, body: &str) -> Result<String, ServeError> {
        let (_, errors) = load_dataset(body)?;
        let generation = self.registry.swap_errors(id, &errors)?;
        Ok(format!("{{\"id\":\"{id}\",\"generation\":{generation}}}"))
    }

    fn submit_job(&self, body: &str) -> Result<String, ServeError> {
        let doc = parse_body(body)?;
        let dataset = doc
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::bad_request("'dataset' (string) is required"))?
            .to_string();
        let query = parse_query(&doc)?;
        let trace = doc.get("trace").and_then(Json::as_bool).unwrap_or(false);
        let job = self.queue.submit_with(&dataset, query, trace)?;
        Ok(format!("{{\"job\":{job}}}"))
    }

    fn job_status(&self, id: &str) -> Result<String, ServeError> {
        let id: u64 = id
            .parse()
            .map_err(|_| ServeError::bad_request(format!("bad job id '{id}'")))?;
        let status = self
            .queue
            .status(id)
            .ok_or_else(|| ServeError::not_found(format!("unknown job {id}")))?;
        Ok(status_json(&status))
    }

    fn job_profile(&self, id: &str) -> Result<String, ServeError> {
        let id: u64 = id
            .parse()
            .map_err(|_| ServeError::bad_request(format!("bad job id '{id}'")))?;
        self.registry.exec().flight().get_json(id).ok_or_else(|| {
            ServeError::not_found(format!(
                "no flight record for job {id} (not finished, or evicted from the ring)"
            ))
        })
    }

    fn job_trace(&self, id: &str) -> Result<String, ServeError> {
        let id: u64 = id
            .parse()
            .map_err(|_| ServeError::bad_request(format!("bad job id '{id}'")))?;
        self.queue
            .trace_json(id)
            .map(|t| t.as_ref().clone())
            .ok_or_else(|| {
                ServeError::not_found(format!(
                    "no trace for job {id} (submit with \"trace\": true and wait for completion)"
                ))
            })
    }

    fn cancel_job(&self, id: &str) -> Result<String, ServeError> {
        let id: u64 = id
            .parse()
            .map_err(|_| ServeError::bad_request(format!("bad job id '{id}'")))?;
        Ok(format!(
            "{{\"job\":{id},\"cancelled\":{}}}",
            self.queue.cancel(id)
        ))
    }
}

/// Extracts one `key=value` pair from a raw query string.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Renders a job snapshot; the `result` field splices the existing
/// [`sliceline::export::result_to_json`] document when the job is done.
fn status_json(status: &JobStatus) -> String {
    let mut out = format!(
        "{{\"job\":{},\"dataset\":\"{}\",\"state\":\"{}\"",
        status.id,
        status.dataset,
        status.state.name()
    );
    if let Some(elapsed) = status.elapsed {
        out.push_str(&format!(",\"elapsed_s\":{:.6}", elapsed.as_secs_f64()));
    }
    if let Some(error) = &status.error {
        out.push_str(&format!(",\"error\":\"{}\"", escape(error)));
    }
    if let Some(result) = &status.result {
        out.push_str(",\"result\":");
        out.push_str(&sliceline::export::result_to_json(result.as_ref()));
    }
    out.push('}');
    out
}

// ---- request plumbing --------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: String,
}

fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 1 << 20 {
            return Err("request headers too large".to_string());
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > 1 << 26 {
        return Err("request body too large".to_string());
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Content-Type of every JSON response.
const JSON_TYPE: &str = "application/json";

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    content_type: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

fn error_json(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(message))
}

fn parse_body(body: &str) -> Result<Json, ServeError> {
    if body.trim().is_empty() {
        return Err(ServeError::bad_request("request body must be JSON"));
    }
    parse(body).map_err(|e| ServeError::bad_request(format!("bad JSON body: {e}")))
}

// ---- dataset + query parsing -------------------------------------------

/// Loads `{"path", "errors", "bins"?, "drop"?}`: reads the CSV from the
/// server's filesystem, splits off the numeric error column, and encodes
/// the rest with the same preprocessing as `sliceline find --errors`.
fn load_dataset(body: &str) -> Result<(IntMatrix, Vec<f64>), ServeError> {
    let doc = parse_body(body)?;
    let path = doc
        .get("path")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::bad_request("'path' (string) is required"))?;
    let errcol = doc
        .get("errors")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::bad_request("'errors' (string) is required"))?;
    let bins = doc.get("bins").and_then(Json::as_u64).unwrap_or(10) as u32;
    let mut drop: Vec<String> = doc
        .get("drop")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let df = read_csv_file(std::path::Path::new(path), ',', true)
        .map_err(|e| ServeError::bad_request(format!("reading {path}: {e}")))?;
    let errors = match df
        .column(errcol)
        .map_err(|e| ServeError::bad_request(e.to_string()))?
    {
        Column::Numeric(v) => v.clone(),
        Column::Categorical { .. } => {
            return Err(ServeError::bad_request(format!(
                "errors column '{errcol}' must be numeric"
            )))
        }
    };
    if errors.iter().any(|&v| !v.is_finite() || v < 0.0) {
        return Err(ServeError::bad_request(
            "errors column must be finite and non-negative",
        ));
    }
    drop.push(errcol.to_string());
    let encoder = DatasetEncoder {
        binning: sliceline_frame::BinningStrategy::EquiWidth(bins),
        recode_threshold: bins as usize,
        drop_columns: drop,
        label_column: None,
    };
    let encoded = encoder
        .encode(&df)
        .map_err(|e| ServeError::bad_request(format!("encoding failed: {e}")))?;
    Ok((encoded.x0, errors))
}

/// Builds a [`SliceQuery`] from the job JSON; unknown kernels and invalid
/// numbers surface as 400s at submit time.
fn parse_query(doc: &Json) -> Result<SliceQuery, ServeError> {
    let k = doc.get("k").and_then(Json::as_u64).unwrap_or(4) as usize;
    let alpha = doc.get("alpha").and_then(Json::as_f64).unwrap_or(0.95);
    let sigma = doc.get("sigma").and_then(Json::as_f64).unwrap_or(0.01);
    let max_level = doc
        .get("max_level")
        .and_then(Json::as_u64)
        .map(|v| v as usize)
        .unwrap_or(usize::MAX);
    let threads = doc.get("threads").and_then(Json::as_u64).unwrap_or(1) as usize;
    let kernel = match doc
        .get("kernel")
        .and_then(Json::as_str)
        .unwrap_or("blocked")
    {
        "blocked" => EvalKernel::Blocked { block_size: 16 },
        "fused" => EvalKernel::Fused,
        "bitmap" => EvalKernel::Bitmap,
        "auto" => EvalKernel::Auto {
            block_size: 16,
            fused_above: 4096,
        },
        other => return Err(ServeError::bad_request(format!("unknown kernel '{other}'"))),
    };
    let enum_kernel = match doc
        .get("enum_kernel")
        .and_then(Json::as_str)
        .unwrap_or("auto")
    {
        "serial" => EnumKernel::Serial,
        "sharded" => EnumKernel::Sharded { shards: 0 },
        "auto" => EnumKernel::default(),
        other => {
            return Err(ServeError::bad_request(format!(
                "unknown enum_kernel '{other}'"
            )))
        }
    };
    let compact = match doc.get("compact").and_then(Json::as_str).unwrap_or("off") {
        "off" => CompactKernel::Off,
        "on" => CompactKernel::On,
        "auto" => CompactKernel::auto(),
        other => {
            return Err(ServeError::bad_request(format!(
                "unknown compact policy '{other}'"
            )))
        }
    };
    // Anytime knobs: `budget_ms` alone routes the job through the
    // best-first engine; `priority` opts in without a deadline.
    let priority = doc.get("priority").and_then(Json::as_bool).unwrap_or(false);
    let budget_ms = doc.get("budget_ms").and_then(Json::as_u64).unwrap_or(0);
    let max_evals = doc.get("max_evals").and_then(Json::as_u64).unwrap_or(0) as usize;
    let mut config = SliceLineConfig::builder()
        .k(k)
        .alpha(alpha)
        .eval(kernel)
        .enum_kernel(enum_kernel)
        .compact(compact)
        .priority(priority)
        .budget_ms(budget_ms)
        .max_evals(max_evals)
        .max_level(max_level)
        .threads(if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        })
        .build()
        .map_err(|e| ServeError::bad_request(e.to_string()))?;
    config.min_support = if sigma >= 1.0 {
        MinSupport::Absolute(sigma as usize)
    } else {
        MinSupport::Fraction(sigma)
    };
    Ok(SliceQuery::new(config))
}

/// Current code revision (matches the CLI manifest's `git` field).
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_defaults_and_rejects_unknowns() {
        let doc = parse("{\"dataset\":\"x\"}").unwrap();
        let q = parse_query(&doc).unwrap();
        assert_eq!(q.config().k, 4);
        let doc = parse("{\"kernel\":\"gpu\"}").unwrap();
        assert!(parse_query(&doc).is_err());
        let doc = parse("{\"alpha\":7.0}").unwrap();
        assert!(parse_query(&doc).is_err());
    }

    #[test]
    fn parses_anytime_job_fields() {
        // Defaults: the anytime engine stays off.
        let doc = parse("{\"dataset\":\"x\"}").unwrap();
        let q = parse_query(&doc).unwrap();
        assert!(!q.config().is_priority());
        // budget_ms alone implies priority routing.
        let doc = parse("{\"dataset\":\"x\",\"budget_ms\":250}").unwrap();
        let q = parse_query(&doc).unwrap();
        assert!(q.config().is_priority());
        assert_eq!(q.config().budget_ms, 250);
        // Explicit opt-in with an eval cap.
        let doc = parse("{\"dataset\":\"x\",\"priority\":true,\"max_evals\":5000}").unwrap();
        let q = parse_query(&doc).unwrap();
        assert!(q.config().priority);
        assert_eq!(q.config().max_evals, 5000);
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"partial"), None);
    }

    #[test]
    fn error_json_escapes() {
        assert_eq!(error_json("a\"b"), "{\"error\":\"a\\\"b\"}");
    }

    #[test]
    fn query_param_extraction() {
        assert_eq!(
            query_param("format=openmetrics", "format"),
            Some("openmetrics")
        );
        assert_eq!(query_param("a=1&n=8", "n"), Some("8"));
        assert_eq!(query_param("a=1", "n"), None);
        assert_eq!(query_param("", "format"), None);
    }
}
