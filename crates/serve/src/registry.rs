//! Content-hash-keyed registry of warm [`DatasetSession`]s.
//!
//! The registry is the multi-tenant half of the session architecture:
//! every registered `(X, errors)` pair owns one session (encoded matrix,
//! basic statistics, packed bitmaps, pooled scratch), shared by all jobs
//! that target it. Registration is idempotent — the key is a content
//! hash of the data, so two tenants uploading the same dataset share one
//! warm session instead of preparing it twice.

use crate::ServeError;
use sliceline::session::DatasetSession;
use sliceline_frame::IntMatrix;
use sliceline_linalg::ExecContext;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit content hash of a dataset: shape, integer codes, and
/// error bits. Used as the registry key (hex string), so identical data
/// always maps to the same session.
pub fn content_hash(x0: &IntMatrix, errors: &[f64]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(x0.rows() as u64).to_le_bytes());
    eat(&(x0.cols() as u64).to_le_bytes());
    for r in 0..x0.rows() {
        for &code in x0.row(r) {
            eat(&code.to_le_bytes());
        }
    }
    for &e in errors {
        eat(&e.to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

/// Shared handle to one tenant's session. Jobs lock it for the duration
/// of a query; error swaps take the same lock, so a swap never tears a
/// running query.
pub type SharedSession = Arc<Mutex<DatasetSession>>;

/// Thread-safe registry mapping content hashes to warm sessions.
pub struct DatasetRegistry {
    exec: ExecContext,
    sessions: Mutex<HashMap<String, SharedSession>>,
}

impl std::fmt::Debug for DatasetRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetRegistry")
            .field("datasets", &self.len())
            .finish()
    }
}

impl DatasetRegistry {
    /// Creates an empty registry. All sessions share `exec`'s scratch
    /// pool, tracer, and metrics registry (each query still collects
    /// isolated telemetry via scoped stats).
    pub fn new(exec: ExecContext) -> Self {
        DatasetRegistry {
            exec,
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// The execution context shared by every session in this registry.
    pub fn exec(&self) -> &ExecContext {
        &self.exec
    }

    /// Registers a dataset and returns its content-hash id. Idempotent:
    /// re-registering identical data returns the existing warm session
    /// (counted in `serve.datasets.cache_hits`) without re-preparing.
    pub fn register(&self, x0: &IntMatrix, errors: &[f64]) -> Result<String, ServeError> {
        let id = content_hash(x0, errors);
        {
            let sessions = self.sessions.lock().unwrap();
            if sessions.contains_key(&id) {
                self.exec
                    .metrics()
                    .counter("serve.datasets.cache_hits")
                    .inc();
                return Ok(id);
            }
        }
        // Build outside the map lock: preparation can be expensive and
        // other tenants' lookups should not stall behind it. A racing
        // duplicate registration just wins the insert below (same data,
        // same id, either session is equally warm).
        let session = DatasetSession::new(x0, errors, &self.exec)
            .map_err(|e| ServeError::bad_request(e.to_string()))?;
        let mut sessions = self.sessions.lock().unwrap();
        sessions
            .entry(id.clone())
            .or_insert_with(|| Arc::new(Mutex::new(session)));
        self.exec
            .metrics()
            .counter("serve.datasets.registered")
            .inc();
        self.exec
            .metrics()
            .gauge("serve.datasets.resident")
            .set(sessions.len() as f64);
        Ok(id)
    }

    /// The session registered under `id`, if any.
    pub fn get(&self, id: &str) -> Option<SharedSession> {
        self.sessions.lock().unwrap().get(id).cloned()
    }

    /// Replaces the error vector of dataset `id` in place (delta
    /// re-slicing: the encoded matrix and packed bitmaps survive).
    /// Returns the session's new generation number.
    pub fn swap_errors(&self, id: &str, errors: &[f64]) -> Result<u64, ServeError> {
        let session = self
            .get(id)
            .ok_or_else(|| ServeError::not_found(format!("unknown dataset '{id}'")))?;
        let mut session = session.lock().unwrap();
        session
            .swap_errors(errors)
            .map_err(|e| ServeError::bad_request(e.to_string()))?;
        Ok(session.generation())
    }

    /// Registered dataset ids (sorted, for stable listings).
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.sessions.lock().unwrap().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Number of resident sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliceline::{SliceLineConfig, SliceQuery};

    fn fixture() -> (IntMatrix, Vec<f64>) {
        let rows: Vec<Vec<u32>> = (0..32)
            .map(|i| vec![1 + (i % 2) as u32, 1 + ((i / 2) % 2) as u32])
            .collect();
        let errors: Vec<f64> = (0..32)
            .map(|i| {
                if i % 2 == 0 && (i / 2) % 2 == 0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    #[test]
    fn register_is_idempotent_and_content_keyed() {
        let (x0, errors) = fixture();
        let reg = DatasetRegistry::new(ExecContext::serial());
        let a = reg.register(&x0, &errors).unwrap();
        let b = reg.register(&x0, &errors).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        // Different errors → different dataset identity.
        let mut e2 = errors.clone();
        e2[0] = 0.5;
        let c = reg.register(&x0, &e2).unwrap();
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.ids().len(), 2);
    }

    #[test]
    fn shared_session_answers_queries() {
        let (x0, errors) = fixture();
        let reg = DatasetRegistry::new(ExecContext::serial());
        let id = reg.register(&x0, &errors).unwrap();
        let session = reg.get(&id).unwrap();
        let config = SliceLineConfig::builder()
            .k(2)
            .min_support(2)
            .build()
            .unwrap();
        let got = session
            .lock()
            .unwrap()
            .query(&SliceQuery::new(config.clone()))
            .unwrap();
        let want = sliceline::SliceLine::new(config)
            .find_slices(&x0, &errors)
            .unwrap();
        assert_eq!(got.top_k.len(), want.top_k.len());
        for (a, b) in got.top_k.iter().zip(&want.top_k) {
            assert_eq!(a.predicates, b.predicates);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn swap_errors_bumps_generation_and_rejects_bad_input() {
        let (x0, errors) = fixture();
        let reg = DatasetRegistry::new(ExecContext::serial());
        let id = reg.register(&x0, &errors).unwrap();
        let mut e2 = errors.clone();
        e2.reverse();
        assert_eq!(reg.swap_errors(&id, &e2).unwrap(), 1);
        assert!(reg.swap_errors(&id, &e2[..3]).is_err());
        assert!(reg.swap_errors("missing", &e2).is_err());
    }
}
