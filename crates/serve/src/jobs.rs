//! Thread-per-worker job queue over the dataset registry.
//!
//! Jobs move through `queued → running → done | failed`; a queued job
//! can be cancelled (`cancelled` is terminal). Workers pull jobs FIFO,
//! lock the target session, and run [`DatasetSession::query`]
//! (sliceline::DatasetSession::query) — so concurrent jobs against
//! *different* datasets run in parallel while jobs against the *same*
//! dataset serialize on its session lock and all stay warm.

use crate::registry::DatasetRegistry;
use crate::ServeError;
use sliceline::{MinSupport, SliceLineConfig, SliceLineResult, SliceQuery};
use sliceline_obs::FlightRecord;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-level objectives declared in the serve config. Both are
/// optional; when unset the corresponding burn-rate gauges stay at 0.
///
/// Semantics (documented in DESIGN.md §Continuous observability):
/// * `latency_ms` — target end-to-end run latency per job. A job whose
///   execution (not queue wait) exceeds the objective is a *breach*;
///   `serve.slo.latency_burn_rate` is breaches ÷ finished jobs.
/// * `queue_depth` — target maximum pending-queue depth. A submission
///   that observes a deeper queue is a breach;
///   `serve.slo.queue_burn_rate` is breaches ÷ submissions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloConfig {
    /// Per-job run-latency objective in milliseconds (None = no SLO).
    pub latency_ms: Option<u64>,
    /// Pending-queue-depth objective (None = no SLO).
    pub queue_depth: Option<usize>,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing the query.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// The query returned an error.
    Failed,
    /// Cancelled while still queued (terminal).
    Cancelled,
}

impl JobState {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Lower-case name used in JSON payloads.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Snapshot of one job, returned by [`JobQueue::status`].
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id assigned at submit time.
    pub id: u64,
    /// Target dataset (content hash).
    pub dataset: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// The query result once `state == Done`.
    pub result: Option<Arc<SliceLineResult>>,
    /// The failure message once `state == Failed`.
    pub error: Option<String>,
    /// Wall time from submit to terminal state (terminal jobs only).
    pub elapsed: Option<Duration>,
}

struct JobEntry {
    dataset: String,
    query: SliceQuery,
    state: JobState,
    result: Option<Arc<SliceLineResult>>,
    error: Option<String>,
    submitted: Instant,
    elapsed: Option<Duration>,
    /// Caller asked for a per-job Perfetto trace.
    trace: bool,
    /// The rendered Chrome-trace JSON once a traced job finished.
    trace_json: Option<Arc<String>>,
}

struct QueueInner {
    registry: Arc<DatasetRegistry>,
    /// FIFO of job ids; guarded together with `work_cv`.
    pending: Mutex<VecDeque<u64>>,
    work_cv: Condvar,
    /// All jobs ever submitted (bounded by process lifetime; the service
    /// is a debugging tool, not a long-haul scheduler).
    jobs: Mutex<HashMap<u64, JobEntry>>,
    done_cv: Condvar,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    slo: SloConfig,
    /// Serializes traced jobs: the span tracer is shared by every
    /// session on the context, so only one job may own an
    /// enable→run→drain window at a time. Untraced jobs never touch it.
    trace_mu: Mutex<()>,
    /// SLO breach accumulators (see [`SloConfig`] for semantics).
    latency_breaches: AtomicU64,
    finished: AtomicU64,
    queue_breaches: AtomicU64,
    submissions: AtomicU64,
}

impl QueueInner {
    fn finish(
        &self,
        id: u64,
        state: JobState,
        result: Option<Arc<SliceLineResult>>,
        error: Option<String>,
        trace_json: Option<Arc<String>>,
    ) {
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(entry) = jobs.get_mut(&id) {
            entry.state = state;
            entry.result = result;
            entry.error = error;
            entry.elapsed = Some(entry.submitted.elapsed());
            entry.trace_json = trace_json;
        }
        drop(jobs);
        self.done_cv.notify_all();
    }

    fn queue_depth_gauge(&self, depth: usize) {
        self.registry
            .exec()
            .metrics()
            .gauge("serve.jobs.queue_depth")
            .set(depth as f64);
    }

    /// Folds one finished job's run latency into the SLO accounting and
    /// refreshes `serve.slo.latency_burn_rate`.
    fn slo_observe_latency(&self, run: Duration) {
        let Some(objective_ms) = self.slo.latency_ms else {
            return;
        };
        let finished = self.finished.fetch_add(1, Ordering::Relaxed) + 1;
        let breaches = if run.as_secs_f64() * 1000.0 > objective_ms as f64 {
            self.latency_breaches.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.latency_breaches.load(Ordering::Relaxed)
        };
        self.registry
            .exec()
            .metrics()
            .gauge("serve.slo.latency_burn_rate")
            .set(breaches as f64 / finished as f64);
    }

    /// Folds one submission's observed queue depth into the SLO
    /// accounting and refreshes `serve.slo.queue_burn_rate`.
    fn slo_observe_depth(&self, depth: usize) {
        let Some(objective) = self.slo.queue_depth else {
            return;
        };
        let submissions = self.submissions.fetch_add(1, Ordering::Relaxed) + 1;
        let breaches = if depth > objective {
            self.queue_breaches.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.queue_breaches.load(Ordering::Relaxed)
        };
        self.registry
            .exec()
            .metrics()
            .gauge("serve.slo.queue_burn_rate")
            .set(breaches as f64 / submissions as f64);
    }
}

/// The worker pool. Dropping the queue shuts the workers down after the
/// jobs already dequeued finish (queued-but-unstarted jobs stay queued).
pub struct JobQueue {
    inner: Arc<QueueInner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl JobQueue {
    /// Spawns `workers` worker threads (at least one) over `registry`
    /// with no service-level objectives.
    pub fn new(registry: Arc<DatasetRegistry>, workers: usize) -> Self {
        JobQueue::with_slo(registry, workers, SloConfig::default())
    }

    /// Spawns `workers` worker threads (at least one) over `registry`,
    /// tracking burn rates against the given objectives.
    pub fn with_slo(registry: Arc<DatasetRegistry>, workers: usize, slo: SloConfig) -> Self {
        let metrics = registry.exec().metrics();
        if let Some(ms) = slo.latency_ms {
            metrics
                .gauge("serve.slo.latency_objective_secs")
                .set(ms as f64 / 1000.0);
            metrics.gauge("serve.slo.latency_burn_rate").set(0.0);
        }
        if let Some(depth) = slo.queue_depth {
            metrics
                .gauge("serve.slo.queue_depth_objective")
                .set(depth as f64);
            metrics.gauge("serve.slo.queue_burn_rate").set(0.0);
        }
        let inner = Arc::new(QueueInner {
            registry,
            pending: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            slo,
            trace_mu: Mutex::new(()),
            latency_breaches: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            queue_breaches: AtomicU64::new(0),
            submissions: AtomicU64::new(0),
        });
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        JobQueue {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a query against dataset `dataset`. Fails fast when the
    /// dataset is unknown so clients get a 404 at submit time, not a
    /// failed job later.
    pub fn submit(&self, dataset: &str, query: SliceQuery) -> Result<u64, ServeError> {
        self.submit_with(dataset, query, false)
    }

    /// Enqueues a query; `trace` additionally captures a per-job
    /// Perfetto trace retrievable from [`JobQueue::trace_json`]
    /// (`GET /jobs/<id>/trace`). Traced jobs serialize on a shared
    /// tracer window; untraced jobs pay nothing.
    pub fn submit_with(
        &self,
        dataset: &str,
        query: SliceQuery,
        trace: bool,
    ) -> Result<u64, ServeError> {
        if self.inner.registry.get(dataset).is_none() {
            return Err(ServeError::not_found(format!(
                "unknown dataset '{dataset}'"
            )));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.jobs.lock().unwrap().insert(
            id,
            JobEntry {
                dataset: dataset.to_string(),
                query,
                state: JobState::Queued,
                result: None,
                error: None,
                submitted: Instant::now(),
                elapsed: None,
                trace,
                trace_json: None,
            },
        );
        let mut pending = self.inner.pending.lock().unwrap();
        pending.push_back(id);
        let depth = pending.len();
        self.inner.queue_depth_gauge(depth);
        drop(pending);
        self.inner.slo_observe_depth(depth);
        self.inner.work_cv.notify_one();
        let metrics = self.inner.registry.exec().metrics();
        metrics.counter("serve.jobs.submitted").inc();
        metrics
            .counter(&format!("serve.jobs.submitted#dataset={dataset}"))
            .inc();
        Ok(id)
    }

    /// The rendered Chrome-trace JSON of a traced, finished job.
    /// `None` when the job is unknown, still running, or was not
    /// submitted with tracing.
    pub fn trace_json(&self, id: u64) -> Option<Arc<String>> {
        self.inner
            .jobs
            .lock()
            .unwrap()
            .get(&id)
            .and_then(|entry| entry.trace_json.clone())
    }

    /// Snapshot of job `id`, if it exists.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let jobs = self.inner.jobs.lock().unwrap();
        jobs.get(&id).map(|entry| JobStatus {
            id,
            dataset: entry.dataset.clone(),
            state: entry.state,
            result: entry.result.clone(),
            error: entry.error.clone(),
            elapsed: entry.elapsed,
        })
    }

    /// Cancels job `id`. Only queued jobs can be cancelled; returns
    /// `true` when the job transitioned to [`JobState::Cancelled`],
    /// `false` when it was already running or terminal (or unknown).
    pub fn cancel(&self, id: u64) -> bool {
        let mut jobs = self.inner.jobs.lock().unwrap();
        match jobs.get_mut(&id) {
            Some(entry) if entry.state == JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.elapsed = Some(entry.submitted.elapsed());
                drop(jobs);
                self.inner.done_cv.notify_all();
                let metrics = self.inner.registry.exec().metrics();
                metrics.counter("serve.jobs.cancelled").inc();
                true
            }
            _ => false,
        }
    }

    /// Blocks until job `id` reaches a terminal state and returns its
    /// final snapshot (`None` for unknown ids).
    pub fn wait(&self, id: u64) -> Option<JobStatus> {
        let mut jobs = self.inner.jobs.lock().unwrap();
        loop {
            match jobs.get(&id) {
                None => return None,
                Some(entry) if entry.state.is_terminal() => {
                    let status = JobStatus {
                        id,
                        dataset: entry.dataset.clone(),
                        state: entry.state,
                        result: entry.result.clone(),
                        error: entry.error.clone(),
                        elapsed: entry.elapsed,
                    };
                    return Some(status);
                }
                Some(_) => jobs = self.inner.done_cv.wait(jobs).unwrap(),
            }
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Compact JSON of the per-request knobs, embedded in flight records.
fn config_json(config: &SliceLineConfig) -> String {
    let sigma = match config.min_support {
        MinSupport::Absolute(v) => format!("{v}"),
        MinSupport::Fraction(f) => format!("{f}"),
        MinSupport::PaperDefault => "\"paper-default\"".to_string(),
    };
    format!(
        "{{\"k\":{},\"alpha\":{},\"sigma\":{sigma},\"max_level\":{},\"threads\":{},\
         \"priority\":{},\"budget_ms\":{},\"max_evals\":{}}}",
        config.k,
        config.alpha,
        if config.max_level == usize::MAX {
            -1i64
        } else {
            config.max_level as i64
        },
        config.parallel.threads(),
        config.is_priority(),
        config.budget_ms,
        config.max_evals,
    )
}

/// Funnel + counters JSON for a finished run: headline run shape plus
/// the full `ExecStats` document when stats collection was on.
fn stats_json(result: &SliceLineResult) -> String {
    let exec = result
        .stats
        .exec
        .as_ref()
        .map(|e| e.to_json())
        .unwrap_or_else(|| "null".to_string());
    let anytime = result
        .stats
        .anytime
        .as_ref()
        .map(sliceline::export::anytime_to_json)
        .unwrap_or_else(|| "null".to_string());
    format!(
        "{{\"n\":{},\"m\":{},\"l\":{},\"sigma\":{},\"total_elapsed_secs\":{},\"top_k\":{},\"exec\":{exec},\"anytime\":{anytime}}}",
        result.stats.n,
        result.stats.m,
        result.stats.l,
        result.stats.sigma,
        sliceline_obs::secs(result.stats.total_elapsed),
        result.top_k.len(),
    )
}

fn worker_loop(inner: &QueueInner) {
    loop {
        let id = {
            let mut pending = inner.pending.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = pending.pop_front() {
                    inner.queue_depth_gauge(pending.len());
                    break id;
                }
                pending = inner.work_cv.wait(pending).unwrap();
            }
        };
        // Claim the job; a cancel that landed while it sat in the queue
        // wins and the worker moves on.
        let (dataset, query, queue_wait, trace) = {
            let mut jobs = inner.jobs.lock().unwrap();
            match jobs.get_mut(&id) {
                Some(entry) if entry.state == JobState::Queued => {
                    entry.state = JobState::Running;
                    (
                        entry.dataset.clone(),
                        entry.query.clone(),
                        entry.submitted.elapsed(),
                        entry.trace,
                    )
                }
                _ => continue,
            }
        };
        let exec = inner.registry.exec();
        let metrics = exec.metrics();
        let wait_micros = queue_wait.as_micros() as u64;
        metrics
            .histogram("serve.jobs.queue_wait_micros")
            .record(wait_micros);
        metrics
            .histogram(&format!("serve.jobs.queue_wait_micros#dataset={dataset}"))
            .record(wait_micros);
        let Some(session) = inner.registry.get(&dataset) else {
            metrics.counter("serve.jobs.failed").inc();
            inner.finish(
                id,
                JobState::Failed,
                None,
                Some(format!("dataset '{dataset}' disappeared")),
                None,
            );
            continue;
        };
        // Traced jobs own the shared tracer for their whole run window;
        // the tracer stays disabled otherwise, keeping the serving path
        // inside the <2% observability budget.
        let trace_guard = trace.then(|| inner.trace_mu.lock().unwrap());
        if trace_guard.is_some() {
            exec.tracer().reset();
            exec.tracer().set_enabled(true);
        }
        let dropped_before = exec.tracer().dropped();
        let spilled_before = metrics.gauge("core.oocore.spilled_bytes").value();
        let run_start = Instant::now();
        // Deadline-budgeted (or explicitly priority) jobs run through the
        // anytime best-first engine; its budget outcome and certified gap
        // travel inside `result.stats.anytime` into the flight record and
        // the job-status JSON.
        let outcome = {
            let mut session = session.lock().unwrap();
            if query.config().is_priority() {
                session.query_priority(&query).map(|out| out.result)
            } else {
                session.query(&query)
            }
        };
        let run = run_start.elapsed();
        let trace_json = trace_guard.map(|guard| {
            exec.tracer().set_enabled(false);
            let events = exec.tracer().drain();
            drop(guard);
            Arc::new(sliceline_obs::chrome_trace(&events, "sliceline-serve"))
        });
        let run_micros = run.as_micros() as u64;
        metrics
            .histogram("serve.jobs.run_micros")
            .record(run_micros);
        metrics
            .histogram(&format!("serve.jobs.run_micros#dataset={dataset}"))
            .record(run_micros);
        let spilled_delta = metrics.gauge("core.oocore.spilled_bytes").value() - spilled_before;
        if spilled_delta > 0.0 {
            metrics
                .counter(&format!("serve.tenant.bytes_spilled#dataset={dataset}"))
                .add(spilled_delta as u64);
        }
        inner.slo_observe_latency(run);
        let dropped = exec.tracer().dropped().saturating_sub(dropped_before);
        let mut record = FlightRecord {
            job_id: id,
            dataset: dataset.clone(),
            outcome: String::new(),
            error: None,
            queue_wait_secs: sliceline_obs::secs(queue_wait),
            run_secs: sliceline_obs::secs(run),
            config_json: config_json(query.config()),
            stats_json: "null".to_string(),
            dropped_events: dropped,
        };
        match outcome {
            Ok(result) => {
                let rows_scanned: u64 = result
                    .stats
                    .exec
                    .as_ref()
                    .map(|e| e.levels.iter().map(|l| l.rows_retained).sum())
                    .unwrap_or(result.stats.n as u64);
                metrics
                    .counter(&format!("serve.tenant.rows_scanned#dataset={dataset}"))
                    .add(rows_scanned);
                record.outcome = "done".to_string();
                record.stats_json = stats_json(&result);
                exec.flight().record(record);
                // Counters and the flight record land before `finish`
                // wakes waiters, so a client that polled a terminal
                // state observes consistent accounting.
                metrics.counter("serve.jobs.completed").inc();
                metrics
                    .counter(&format!("serve.jobs.completed#dataset={dataset}"))
                    .inc();
                inner.finish(id, JobState::Done, Some(Arc::new(result)), None, trace_json);
            }
            Err(e) => {
                record.outcome = "failed".to_string();
                record.error = Some(e.to_string());
                exec.flight().record(record);
                metrics.counter("serve.jobs.failed").inc();
                metrics
                    .counter(&format!("serve.jobs.failed#dataset={dataset}"))
                    .inc();
                inner.finish(id, JobState::Failed, None, Some(e.to_string()), trace_json);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliceline::{SliceLine, SliceLineConfig};
    use sliceline_frame::IntMatrix;
    use sliceline_linalg::ExecContext;

    fn fixture(shift: u32) -> (IntMatrix, Vec<f64>) {
        let rows: Vec<Vec<u32>> = (0..48)
            .map(|i| {
                vec![
                    1 + ((i + shift as usize) % 2) as u32,
                    1 + ((i / 2) % 3) as u32,
                ]
            })
            .collect();
        let errors: Vec<f64> = (0..48)
            .map(|i| {
                if (i + shift as usize).is_multiple_of(2) && (i / 2) % 3 == 0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn query(k: usize) -> SliceQuery {
        SliceQuery::new(
            SliceLineConfig::builder()
                .k(k)
                .min_support(2)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn jobs_run_to_done_and_match_one_shot() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 2);
        let job = queue.submit(&id, query(3)).unwrap();
        let status = queue.wait(job).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert!(status.error.is_none());
        let got = status.result.unwrap();
        let want = SliceLine::new(query(3).config().clone())
            .find_slices(&x0, &errors)
            .unwrap();
        assert_eq!(got.top_k.len(), want.top_k.len());
        for (a, b) in got.top_k.iter().zip(&want.top_k) {
            assert_eq!(a.predicates, b.predicates);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn concurrent_jobs_against_two_datasets() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (xa, ea) = fixture(0);
        let (xb, eb) = fixture(1);
        let a = reg.register(&xa, &ea).unwrap();
        let b = reg.register(&xb, &eb).unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 4);
        let jobs: Vec<u64> = (0..8)
            .map(|i| {
                queue
                    .submit(if i % 2 == 0 { &a } else { &b }, query(2))
                    .unwrap()
            })
            .collect();
        for job in jobs {
            let status = queue.wait(job).unwrap();
            assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        }
    }

    #[test]
    fn unknown_dataset_rejected_at_submit() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let queue = JobQueue::new(reg, 1);
        let err = queue.submit("nope", query(2)).unwrap_err();
        assert_eq!(err.status, 404);
    }

    #[test]
    fn queued_jobs_can_be_cancelled() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        // Hold the session lock so the worker stalls and later jobs stay
        // queued long enough to cancel deterministically.
        let session = reg.get(&id).unwrap();
        let guard = session.lock().unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 1);
        let first = queue.submit(&id, query(2)).unwrap();
        let second = queue.submit(&id, query(2)).unwrap();
        // The single worker is blocked on the session lock inside job 1;
        // job 2 is still queued and must cancel.
        assert!(queue.cancel(second));
        assert!(!queue.cancel(second), "cancel is not idempotent-true");
        let status = queue.status(second).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        drop(guard);
        let status = queue.wait(first).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert!(!queue.cancel(first), "terminal jobs cannot be cancelled");
    }

    #[test]
    fn finished_jobs_leave_flight_records_and_tenant_series() {
        let exec = ExecContext::serial();
        exec.enable_stats(true);
        let reg = Arc::new(DatasetRegistry::new(exec));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 1);
        let job = queue.submit(&id, query(3)).unwrap();
        let status = queue.wait(job).unwrap();
        assert_eq!(status.state, JobState::Done);
        let record = reg.exec().flight().get(job).expect("flight record");
        assert_eq!(record.outcome, "done");
        assert_eq!(record.dataset, id);
        assert!(record.run_secs > 0.0);
        assert!(record.stats_json.contains("\"exec\""));
        // Per-tenant accounting landed under the dataset label.
        let metrics = reg.exec().metrics();
        assert_eq!(
            metrics
                .counter(&format!("serve.jobs.completed#dataset={id}"))
                .value(),
            1
        );
        assert_eq!(
            metrics
                .histogram(&format!("serve.jobs.run_micros#dataset={id}"))
                .count(),
            1
        );
        assert!(
            metrics
                .counter(&format!("serve.tenant.rows_scanned#dataset={id}"))
                .value()
                > 0
        );
    }

    #[test]
    fn traced_job_yields_chrome_trace() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 2);
        let traced = queue.submit_with(&id, query(2), true).unwrap();
        let plain = queue.submit(&id, query(2)).unwrap();
        assert_eq!(queue.wait(traced).unwrap().state, JobState::Done);
        assert_eq!(queue.wait(plain).unwrap().state, JobState::Done);
        let trace = queue.trace_json(traced).expect("trace for traced job");
        assert!(trace.contains("traceEvents"));
        assert!(trace.contains("session.query"), "missing run span");
        assert!(queue.trace_json(plain).is_none(), "untraced job has none");
        // The shared tracer is off again after the traced window.
        assert!(!reg.exec().tracer().enabled());
    }

    #[test]
    fn slo_burn_rates_track_breaches() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        // latency_ms: 0 => every finished job breaches the objective.
        let queue = JobQueue::with_slo(
            Arc::clone(&reg),
            1,
            SloConfig {
                latency_ms: Some(0),
                queue_depth: Some(1000),
            },
        );
        let metrics = reg.exec().metrics();
        assert_eq!(
            metrics.gauge("serve.slo.latency_objective_secs").value(),
            0.0
        );
        assert_eq!(
            metrics.gauge("serve.slo.queue_depth_objective").value(),
            1000.0
        );
        let job = queue.submit(&id, query(2)).unwrap();
        queue.wait(job).unwrap();
        assert_eq!(metrics.gauge("serve.slo.latency_burn_rate").value(), 1.0);
        // A generous queue objective is never breached.
        assert_eq!(metrics.gauge("serve.slo.queue_burn_rate").value(), 0.0);
    }

    #[test]
    fn priority_jobs_report_certified_gap() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 1);
        // Explicit priority, unlimited budget: exact with a zero gap,
        // bit-for-bit equal to the level-wise job result.
        let mut config = SliceLineConfig::builder()
            .k(3)
            .min_support(2)
            .build()
            .unwrap();
        config.priority = true;
        let job = queue.submit(&id, SliceQuery::new(config.clone())).unwrap();
        let status = queue.wait(job).unwrap();
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        let got = status.result.unwrap();
        let anytime = got.stats.anytime.as_ref().expect("anytime telemetry");
        assert!(anytime.exact);
        assert_eq!(anytime.gap, 0.0);
        let want = SliceLine::new(query(3).config().clone())
            .find_slices(&x0, &errors)
            .unwrap();
        for (a, b) in got.top_k.iter().zip(&want.top_k) {
            assert_eq!(a.predicates, b.predicates);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // The flight record carries the gap certificate and the budget
        // knobs for postmortems.
        let record = reg.exec().flight().get(job).expect("flight record");
        assert!(
            record
                .stats_json
                .contains("\"anytime\":{\"exact\":true,\"gap\":0"),
            "stats_json: {}",
            record.stats_json
        );
        assert!(
            record.config_json.contains("\"priority\":true"),
            "config_json: {}",
            record.config_json
        );
        // A deadline budget alone routes through the anytime engine too
        // (generous deadline: the run finishes exhaustively).
        let mut config = SliceLineConfig::builder()
            .k(3)
            .min_support(2)
            .build()
            .unwrap();
        config.budget_ms = 60_000;
        let job = queue.submit(&id, SliceQuery::new(config)).unwrap();
        let status = queue.wait(job).unwrap();
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        let got = status.result.unwrap();
        assert!(got.stats.anytime.is_some());
        let record = reg.exec().flight().get(job).unwrap();
        assert!(
            record.config_json.contains("\"budget_ms\":60000"),
            "config_json: {}",
            record.config_json
        );
        // Level-wise jobs export an explicit null anytime block.
        let job = queue.submit(&id, query(2)).unwrap();
        queue.wait(job).unwrap();
        let record = reg.exec().flight().get(job).unwrap();
        assert!(record.stats_json.contains("\"anytime\":null"));
    }

    #[test]
    fn failed_jobs_carry_the_error() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 1);
        // alpha outside (0,1] fails config validation inside the query.
        let mut config = SliceLineConfig::builder().k(2).build().unwrap();
        config.alpha = 2.0;
        let job = queue.submit(&id, SliceQuery::new(config)).unwrap();
        let status = queue.wait(job).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert!(status.error.is_some());
        assert!(status.result.is_none());
    }
}
