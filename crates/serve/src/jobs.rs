//! Thread-per-worker job queue over the dataset registry.
//!
//! Jobs move through `queued → running → done | failed`; a queued job
//! can be cancelled (`cancelled` is terminal). Workers pull jobs FIFO,
//! lock the target session, and run [`DatasetSession::query`]
//! (sliceline::DatasetSession::query) — so concurrent jobs against
//! *different* datasets run in parallel while jobs against the *same*
//! dataset serialize on its session lock and all stay warm.

use crate::registry::DatasetRegistry;
use crate::ServeError;
use sliceline::{SliceLineResult, SliceQuery};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing the query.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// The query returned an error.
    Failed,
    /// Cancelled while still queued (terminal).
    Cancelled,
}

impl JobState {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Lower-case name used in JSON payloads.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Snapshot of one job, returned by [`JobQueue::status`].
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id assigned at submit time.
    pub id: u64,
    /// Target dataset (content hash).
    pub dataset: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// The query result once `state == Done`.
    pub result: Option<Arc<SliceLineResult>>,
    /// The failure message once `state == Failed`.
    pub error: Option<String>,
    /// Wall time from submit to terminal state (terminal jobs only).
    pub elapsed: Option<Duration>,
}

struct JobEntry {
    dataset: String,
    query: SliceQuery,
    state: JobState,
    result: Option<Arc<SliceLineResult>>,
    error: Option<String>,
    submitted: Instant,
    elapsed: Option<Duration>,
}

struct QueueInner {
    registry: Arc<DatasetRegistry>,
    /// FIFO of job ids; guarded together with `work_cv`.
    pending: Mutex<VecDeque<u64>>,
    work_cv: Condvar,
    /// All jobs ever submitted (bounded by process lifetime; the service
    /// is a debugging tool, not a long-haul scheduler).
    jobs: Mutex<HashMap<u64, JobEntry>>,
    done_cv: Condvar,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl QueueInner {
    fn finish(
        &self,
        id: u64,
        state: JobState,
        result: Option<Arc<SliceLineResult>>,
        error: Option<String>,
    ) {
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(entry) = jobs.get_mut(&id) {
            entry.state = state;
            entry.result = result;
            entry.error = error;
            entry.elapsed = Some(entry.submitted.elapsed());
        }
        drop(jobs);
        self.done_cv.notify_all();
    }

    fn queue_depth_gauge(&self, depth: usize) {
        self.registry
            .exec()
            .metrics()
            .gauge("serve.jobs.queue_depth")
            .set(depth as f64);
    }
}

/// The worker pool. Dropping the queue shuts the workers down after the
/// jobs already dequeued finish (queued-but-unstarted jobs stay queued).
pub struct JobQueue {
    inner: Arc<QueueInner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl JobQueue {
    /// Spawns `workers` worker threads (at least one) over `registry`.
    pub fn new(registry: Arc<DatasetRegistry>, workers: usize) -> Self {
        let inner = Arc::new(QueueInner {
            registry,
            pending: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        JobQueue {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a query against dataset `dataset`. Fails fast when the
    /// dataset is unknown so clients get a 404 at submit time, not a
    /// failed job later.
    pub fn submit(&self, dataset: &str, query: SliceQuery) -> Result<u64, ServeError> {
        if self.inner.registry.get(dataset).is_none() {
            return Err(ServeError::not_found(format!(
                "unknown dataset '{dataset}'"
            )));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.jobs.lock().unwrap().insert(
            id,
            JobEntry {
                dataset: dataset.to_string(),
                query,
                state: JobState::Queued,
                result: None,
                error: None,
                submitted: Instant::now(),
                elapsed: None,
            },
        );
        let mut pending = self.inner.pending.lock().unwrap();
        pending.push_back(id);
        self.inner.queue_depth_gauge(pending.len());
        drop(pending);
        self.inner.work_cv.notify_one();
        let metrics = self.inner.registry.exec().metrics();
        metrics.counter("serve.jobs.submitted").inc();
        Ok(id)
    }

    /// Snapshot of job `id`, if it exists.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let jobs = self.inner.jobs.lock().unwrap();
        jobs.get(&id).map(|entry| JobStatus {
            id,
            dataset: entry.dataset.clone(),
            state: entry.state,
            result: entry.result.clone(),
            error: entry.error.clone(),
            elapsed: entry.elapsed,
        })
    }

    /// Cancels job `id`. Only queued jobs can be cancelled; returns
    /// `true` when the job transitioned to [`JobState::Cancelled`],
    /// `false` when it was already running or terminal (or unknown).
    pub fn cancel(&self, id: u64) -> bool {
        let mut jobs = self.inner.jobs.lock().unwrap();
        match jobs.get_mut(&id) {
            Some(entry) if entry.state == JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.elapsed = Some(entry.submitted.elapsed());
                drop(jobs);
                self.inner.done_cv.notify_all();
                let metrics = self.inner.registry.exec().metrics();
                metrics.counter("serve.jobs.cancelled").inc();
                true
            }
            _ => false,
        }
    }

    /// Blocks until job `id` reaches a terminal state and returns its
    /// final snapshot (`None` for unknown ids).
    pub fn wait(&self, id: u64) -> Option<JobStatus> {
        let mut jobs = self.inner.jobs.lock().unwrap();
        loop {
            match jobs.get(&id) {
                None => return None,
                Some(entry) if entry.state.is_terminal() => {
                    let status = JobStatus {
                        id,
                        dataset: entry.dataset.clone(),
                        state: entry.state,
                        result: entry.result.clone(),
                        error: entry.error.clone(),
                        elapsed: entry.elapsed,
                    };
                    return Some(status);
                }
                Some(_) => jobs = self.inner.done_cv.wait(jobs).unwrap(),
            }
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &QueueInner) {
    loop {
        let id = {
            let mut pending = inner.pending.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = pending.pop_front() {
                    inner.queue_depth_gauge(pending.len());
                    break id;
                }
                pending = inner.work_cv.wait(pending).unwrap();
            }
        };
        // Claim the job; a cancel that landed while it sat in the queue
        // wins and the worker moves on.
        let (dataset, query) = {
            let mut jobs = inner.jobs.lock().unwrap();
            match jobs.get_mut(&id) {
                Some(entry) if entry.state == JobState::Queued => {
                    entry.state = JobState::Running;
                    (entry.dataset.clone(), entry.query.clone())
                }
                _ => continue,
            }
        };
        let metrics = inner.registry.exec().metrics();
        let Some(session) = inner.registry.get(&dataset) else {
            inner.finish(
                id,
                JobState::Failed,
                None,
                Some(format!("dataset '{dataset}' disappeared")),
            );
            metrics.counter("serve.jobs.failed").inc();
            continue;
        };
        let outcome = session.lock().unwrap().query(&query);
        match outcome {
            Ok(result) => {
                inner.finish(id, JobState::Done, Some(Arc::new(result)), None);
                metrics.counter("serve.jobs.completed").inc();
            }
            Err(e) => {
                inner.finish(id, JobState::Failed, None, Some(e.to_string()));
                metrics.counter("serve.jobs.failed").inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliceline::{SliceLine, SliceLineConfig};
    use sliceline_frame::IntMatrix;
    use sliceline_linalg::ExecContext;

    fn fixture(shift: u32) -> (IntMatrix, Vec<f64>) {
        let rows: Vec<Vec<u32>> = (0..48)
            .map(|i| {
                vec![
                    1 + ((i + shift as usize) % 2) as u32,
                    1 + ((i / 2) % 3) as u32,
                ]
            })
            .collect();
        let errors: Vec<f64> = (0..48)
            .map(|i| {
                if (i + shift as usize).is_multiple_of(2) && (i / 2) % 3 == 0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn query(k: usize) -> SliceQuery {
        SliceQuery::new(
            SliceLineConfig::builder()
                .k(k)
                .min_support(2)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn jobs_run_to_done_and_match_one_shot() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 2);
        let job = queue.submit(&id, query(3)).unwrap();
        let status = queue.wait(job).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert!(status.error.is_none());
        let got = status.result.unwrap();
        let want = SliceLine::new(query(3).config().clone())
            .find_slices(&x0, &errors)
            .unwrap();
        assert_eq!(got.top_k.len(), want.top_k.len());
        for (a, b) in got.top_k.iter().zip(&want.top_k) {
            assert_eq!(a.predicates, b.predicates);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn concurrent_jobs_against_two_datasets() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (xa, ea) = fixture(0);
        let (xb, eb) = fixture(1);
        let a = reg.register(&xa, &ea).unwrap();
        let b = reg.register(&xb, &eb).unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 4);
        let jobs: Vec<u64> = (0..8)
            .map(|i| {
                queue
                    .submit(if i % 2 == 0 { &a } else { &b }, query(2))
                    .unwrap()
            })
            .collect();
        for job in jobs {
            let status = queue.wait(job).unwrap();
            assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        }
    }

    #[test]
    fn unknown_dataset_rejected_at_submit() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let queue = JobQueue::new(reg, 1);
        let err = queue.submit("nope", query(2)).unwrap_err();
        assert_eq!(err.status, 404);
    }

    #[test]
    fn queued_jobs_can_be_cancelled() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        // Hold the session lock so the worker stalls and later jobs stay
        // queued long enough to cancel deterministically.
        let session = reg.get(&id).unwrap();
        let guard = session.lock().unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 1);
        let first = queue.submit(&id, query(2)).unwrap();
        let second = queue.submit(&id, query(2)).unwrap();
        // The single worker is blocked on the session lock inside job 1;
        // job 2 is still queued and must cancel.
        assert!(queue.cancel(second));
        assert!(!queue.cancel(second), "cancel is not idempotent-true");
        let status = queue.status(second).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        drop(guard);
        let status = queue.wait(first).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert!(!queue.cancel(first), "terminal jobs cannot be cancelled");
    }

    #[test]
    fn failed_jobs_carry_the_error() {
        let reg = Arc::new(DatasetRegistry::new(ExecContext::serial()));
        let (x0, errors) = fixture(0);
        let id = reg.register(&x0, &errors).unwrap();
        let queue = JobQueue::new(Arc::clone(&reg), 1);
        // alpha outside (0,1] fails config validation inside the query.
        let mut config = SliceLineConfig::builder().k(2).build().unwrap();
        config.alpha = 2.0;
        let job = queue.submit(&id, SliceQuery::new(config)).unwrap();
        let status = queue.wait(job).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert!(status.error.is_some());
        assert!(status.result.is_none());
    }
}
