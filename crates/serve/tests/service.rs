//! End-to-end exercise of the HTTP front end: register datasets over the
//! wire, run concurrent jobs, swap errors for delta re-slicing, and
//! check the observability endpoints — all against a real socket.

use sliceline::{SliceLine, SliceLineConfig};
use sliceline_frame::IntMatrix;
use sliceline_linalg::ExecContext;
use sliceline_obs::json::{parse, Json};
use sliceline_serve::{Server, ServerConfig, SloConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// One HTTP exchange against `addr`; returns (status, body).
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// Planted-slice CSV: rows with a=1 & b=1 carry all the error.
fn write_csv(name: &str, flip: bool) -> (std::path::PathBuf, IntMatrix, Vec<f64>) {
    let dir = std::env::temp_dir().join("sliceline_serve_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut csv = String::from("a,b,err\n");
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for i in 0..60usize {
        let a = 1 + (i % 2) as u32;
        let b = 1 + ((i / 2) % 3) as u32;
        let hot = if flip {
            a == 2 && b == 2
        } else {
            a == 1 && b == 1
        };
        let err = if hot { 1.0 } else { 0.0 };
        csv.push_str(&format!("{a},{b},{err}\n"));
        rows.push(vec![a, b]);
        errors.push(err);
    }
    std::fs::write(&path, csv).unwrap();
    (path, IntMatrix::from_rows(&rows).unwrap(), errors)
}

fn start_server() -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        slo: SloConfig {
            latency_ms: Some(60_000),
            queue_depth: Some(1_000),
        },
    };
    let server = Arc::new(Server::bind(&config, ExecContext::serial()).unwrap());
    let addr = server.addr().unwrap().to_string();
    let runner = Arc::clone(&server);
    let handle = std::thread::spawn(move || runner.run().unwrap());
    (server, addr, handle)
}

fn wait_done(addr: &str, job: u64) -> Json {
    for _ in 0..500 {
        let (status, body) = request(addr, "GET", &format!("/jobs/{job}"), "");
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).unwrap();
        let state = doc.get("state").and_then(Json::as_str).unwrap().to_string();
        match state.as_str() {
            "done" => return doc,
            "failed" | "cancelled" => panic!("job {job} ended {state}: {body}"),
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    panic!("job {job} did not finish");
}

/// Top-K as (predicates, score-bits) pairs from the job-status JSON.
fn topk_shape(doc: &Json) -> Vec<(String, u64)> {
    doc.get("result")
        .and_then(|r| r.get("top_k"))
        .and_then(Json::as_arr)
        .expect("result.top_k")
        .iter()
        .map(|slice| {
            let preds = slice
                .get("predicates")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|p| {
                    format!(
                        "{}={}",
                        p.get("feature").and_then(Json::as_u64).unwrap(),
                        p.get("code").and_then(Json::as_u64).unwrap()
                    )
                })
                .collect::<Vec<_>>()
                .join("&");
            let score = slice.get("score").and_then(Json::as_f64).unwrap();
            (preds, score.to_bits())
        })
        .collect()
}

fn expected_shape(x0: &IntMatrix, errors: &[f64]) -> Vec<(String, u64)> {
    let config = SliceLineConfig::builder()
        .k(3)
        .min_support(2)
        .build()
        .unwrap();
    let result = SliceLine::new(config).find_slices(x0, errors).unwrap();
    result
        .top_k
        .iter()
        .map(|s| {
            let preds = s
                .predicates
                .iter()
                .map(|(f, v)| format!("{f}={v}"))
                .collect::<Vec<_>>()
                .join("&");
            (preds, s.score.to_bits())
        })
        .collect()
}

#[test]
fn full_service_flow() {
    let (_server, addr, handle) = start_server();
    let (path_a, xa, ea) = write_csv("tenant_a.csv", false);
    let (path_b, xb, eb) = write_csv("tenant_b.csv", true);

    // Health + empty registry.
    let (status, body) = request(&addr, "GET", "/health", "");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));
    let (_, body) = request(&addr, "GET", "/datasets", "");
    assert_eq!(body, "{\"datasets\":[]}");

    // Register two tenants; re-registering tenant A returns the same id.
    let reg_body =
        |p: &std::path::Path| format!("{{\"path\":\"{}\",\"errors\":\"err\"}}", p.display());
    let (status, body) = request(&addr, "POST", "/datasets", &reg_body(&path_a));
    assert_eq!(status, 200, "{body}");
    let id_a = parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let (_, body) = request(&addr, "POST", "/datasets", &reg_body(&path_a));
    assert!(body.contains(&id_a), "idempotent register: {body}");
    let (_, body) = request(&addr, "POST", "/datasets", &reg_body(&path_b));
    let id_b = parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_ne!(id_a, id_b);

    // Concurrent jobs against both tenants; results must match one-shot
    // runs bit-for-bit.
    let job_body = |id: &str| format!("{{\"dataset\":\"{id}\",\"k\":3,\"sigma\":2}}");
    let jobs: Vec<(u64, &IntMatrix, &Vec<f64>)> = (0..6)
        .map(|i| {
            let (id, x, e) = if i % 2 == 0 {
                (&id_a, &xa, &ea)
            } else {
                (&id_b, &xb, &eb)
            };
            let (status, body) = request(&addr, "POST", "/jobs", &job_body(id));
            assert_eq!(status, 200, "{body}");
            let job = parse(&body)
                .unwrap()
                .get("job")
                .and_then(Json::as_u64)
                .unwrap();
            (job, x, e)
        })
        .collect();
    for (job, x, e) in jobs {
        let doc = wait_done(&addr, job);
        assert_eq!(topk_shape(&doc), expected_shape(x, e), "job {job}");
    }

    // Delta re-slice: swap tenant A's errors to tenant B's pattern; the
    // same session (same id) must now produce tenant-B-shaped results.
    let (status, body) = request(
        &addr,
        "POST",
        &format!("/datasets/{id_a}/errors"),
        &reg_body(&path_b),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":1"), "{body}");
    let (_, body) = request(&addr, "POST", "/jobs", &job_body(&id_a));
    let job = parse(&body)
        .unwrap()
        .get("job")
        .and_then(Json::as_u64)
        .unwrap();
    let doc = wait_done(&addr, job);
    assert_eq!(topk_shape(&doc), expected_shape(&xa, &eb), "post-swap job");

    // Unknown dataset → 404 at submit; bad JSON → 400.
    let (status, _) = request(&addr, "POST", "/jobs", &job_body("deadbeef"));
    assert_eq!(status, 404);
    let (status, _) = request(&addr, "POST", "/jobs", "not json");
    assert_eq!(status, 400);
    let (status, _) = request(&addr, "GET", "/jobs/99999", "");
    assert_eq!(status, 404);
    let (status, _) = request(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    // Observability: metrics snapshot carries serve.* counters alongside
    // the core funnel; the manifest parses with all required keys.
    let (status, body) = request(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for key in [
        "serve.jobs.submitted",
        "serve.jobs.completed",
        "serve.datasets.registered",
        "serve.http.requests",
        "core.session.queries",
        "core.funnel.evaluated",
    ] {
        assert!(body.contains(key), "metrics missing {key}:\n{body}");
    }
    let (status, body) = request(&addr, "GET", "/manifest", "");
    assert_eq!(status, 200);
    let doc = parse(&body).unwrap();
    for key in [
        "schema_version",
        "tool",
        "git",
        "config",
        "dataset",
        "metrics",
    ] {
        assert!(
            !matches!(doc.get(key), None | Some(Json::Null)),
            "manifest missing {key}:\n{body}"
        );
    }
    assert_eq!(
        doc.get("tool").and_then(Json::as_str),
        Some("sliceline-serve")
    );

    // Shutdown stops the accept loop.
    let (status, _) = request(&addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
}

#[test]
fn observability_flow() {
    let (_server, addr, handle) = start_server();
    let (path, _x, _e) = write_csv("tenant_obs.csv", false);

    let reg_body = format!("{{\"path\":\"{}\",\"errors\":\"err\"}}", path.display());
    let (status, body) = request(&addr, "POST", "/datasets", &reg_body);
    assert_eq!(status, 200, "{body}");
    let id = parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // One plain job and one traced job against the same tenant.
    let submit = |extra: &str| {
        let (status, body) = request(
            &addr,
            "POST",
            "/jobs",
            &format!("{{\"dataset\":\"{id}\",\"k\":3,\"sigma\":2{extra}}}"),
        );
        assert_eq!(status, 200, "{body}");
        parse(&body)
            .unwrap()
            .get("job")
            .and_then(Json::as_u64)
            .unwrap()
    };
    let plain = submit("");
    let traced = submit(",\"trace\":true");
    wait_done(&addr, plain);
    wait_done(&addr, traced);

    // The profile endpoint returns the complete flight record for a
    // finished job: identity, outcome, latency split, config and the
    // per-level execution stats.
    let (status, body) = request(&addr, "GET", &format!("/jobs/{plain}/profile"), "");
    assert_eq!(status, 200, "{body}");
    let doc = parse(&body).unwrap();
    assert_eq!(doc.get("job_id").and_then(Json::as_u64), Some(plain));
    assert_eq!(doc.get("dataset").and_then(Json::as_str), Some(id.as_str()));
    assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("done"));
    assert!(doc.get("error").unwrap().as_str().is_none());
    assert!(doc.get("queue_wait_secs").and_then(Json::as_f64).is_some());
    assert!(doc.get("run_secs").and_then(Json::as_f64).is_some());
    assert_eq!(
        doc.get("config")
            .and_then(|c| c.get("k"))
            .and_then(Json::as_u64),
        Some(3),
        "{body}"
    );
    let stats = doc.get("stats").expect("stats object");
    assert_eq!(stats.get("n").and_then(Json::as_u64), Some(60), "{body}");
    assert!(
        stats
            .get("exec")
            .and_then(|e| e.get("levels"))
            .and_then(Json::as_arr)
            .is_some(),
        "flight record missing per-level stats:\n{body}"
    );
    assert_eq!(doc.get("dropped_events").and_then(Json::as_u64), Some(0));
    // Unknown jobs have no profile.
    let (status, _) = request(&addr, "GET", "/jobs/99999/profile", "");
    assert_eq!(status, 404);

    // The flight-recorder dump lists both jobs newest first; ?n= caps it.
    let (status, body) = request(&addr, "GET", "/debug/flightrecorder", "");
    assert_eq!(status, 200);
    let doc = parse(&body).unwrap();
    let records = doc.get("records").and_then(Json::as_arr).unwrap();
    assert!(records.len() >= 2, "{body}");
    assert_eq!(
        records[0].get("job_id").and_then(Json::as_u64),
        Some(traced)
    );
    let (_, body) = request(&addr, "GET", "/debug/flightrecorder?n=1", "");
    let doc = parse(&body).unwrap();
    assert_eq!(
        doc.get("records").and_then(Json::as_arr).map(<[Json]>::len),
        Some(1)
    );

    // The traced job serves a Chrome trace; the plain one has none.
    let (status, body) = request(&addr, "GET", &format!("/jobs/{traced}/trace"), "");
    assert_eq!(status, 200);
    assert!(body.contains("\"traceEvents\""), "{body}");
    assert!(body.contains("session.query"), "{body}");
    let (status, _) = request(&addr, "GET", &format!("/jobs/{plain}/trace"), "");
    assert_eq!(status, 404);

    // The OpenMetrics exposition passes the linter and carries the
    // per-tenant series and SLO gauges.
    let (status, text) = request(&addr, "GET", "/metrics?format=openmetrics", "");
    assert_eq!(status, 200);
    let violations = sliceline_obs::openmetrics::lint(&text);
    assert!(violations.is_empty(), "lint violations: {violations:?}");
    assert!(text.ends_with("# EOF\n"), "missing terminator:\n{text}");
    for needle in [
        "serve_jobs_run_micros_bucket",
        &format!("dataset=\"{id}\""),
        "serve_tenant_rows_scanned_total",
        "serve_slo_latency_burn_rate",
        "serve_slo_queue_burn_rate",
        "serve_jobs_run_micros_p95",
    ] {
        assert!(text.contains(needle), "missing {needle}:\n{text}");
    }
    // Objectives from the server config are exported as gauges.
    assert!(
        text.contains("serve_slo_latency_objective_secs 60"),
        "{text}"
    );

    let (status, _) = request(&addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
}
