//! The CLI pipelines: `find` (CSV → encode → model/errors → SliceLine →
//! report) and `generate` (synthetic dataset → CSV).

use crate::args::{
    CompactChoice, EnumKernelChoice, FindArgs, GenerateArgs, KernelChoice, MetricsDumpArgs,
    OutputFormat, ServeArgs, SimdChoice, TaskKind,
};
use crate::report;
use crate::CliError;
use sliceline::{
    CompactKernel, EnumKernel, EvalKernel, MinSupport, SimdKernel, SimdLevel, SliceLine,
    SliceLineConfig, SliceLineResult,
};
use sliceline_datagen::GenConfig;
use sliceline_dist::{ClusterConfig, DistSliceLine, Strategy};
use sliceline_frame::csv::read_csv_file;
use sliceline_frame::{Column, DatasetEncoder, EncodedDataset, MemorySource};
use sliceline_linalg::{chrome_trace, DenseMatrix, ExecContext, Manifest};
use sliceline_ml::logreg::LogisticConfig;
use sliceline_ml::{inaccuracy, squared_loss, LinearRegression, MultinomialLogistic};

/// Runs `sliceline find`, returning the rendered output.
pub fn run_find(args: &FindArgs) -> Result<String, CliError> {
    let df = read_csv_file(std::path::Path::new(&args.input), ',', true)
        .map_err(|e| CliError::runtime(format!("reading {}: {e}", args.input)))?;
    if df.nrows() == 0 {
        return Err(CliError::runtime("input has no rows".to_string()));
    }
    // Split off the error column (if given) before encoding.
    let mut drop = args.drop.clone();
    let mut raw_errors: Option<Vec<f64>> = None;
    if let Some(errcol) = &args.errors {
        let col = df
            .column(errcol)
            .map_err(|e| CliError::runtime(e.to_string()))?;
        let values = match col {
            Column::Numeric(v) => v.clone(),
            Column::Categorical { .. } => {
                return Err(CliError::runtime(format!(
                    "--errors column '{errcol}' must be numeric"
                )))
            }
        };
        raw_errors = Some(values);
        drop.push(errcol.clone());
    }
    let encoder = DatasetEncoder {
        binning: sliceline_frame::BinningStrategy::EquiWidth(args.bins),
        recode_threshold: args.bins as usize,
        drop_columns: drop,
        label_column: args.label.clone(),
    };
    let encoded = encoder
        .encode(&df)
        .map_err(|e| CliError::runtime(format!("encoding failed: {e}")))?;
    let errors = match raw_errors {
        Some(e) => {
            if e.iter().any(|&v| !v.is_finite() || v < 0.0) {
                return Err(CliError::runtime(
                    "--errors column must be finite and non-negative".to_string(),
                ));
            }
            e
        }
        None => train_and_score(&encoded, args)?,
    };
    // The CLI kernel names map onto the library's evaluation plans with
    // their default tuning parameters.
    let kernel = match args.kernel {
        KernelChoice::Blocked => EvalKernel::Blocked { block_size: 16 },
        KernelChoice::Fused => EvalKernel::Fused,
        KernelChoice::Bitmap => EvalKernel::Bitmap,
        KernelChoice::Auto => EvalKernel::Auto {
            block_size: 16,
            fused_above: 4096,
        },
    };
    let enum_kernel = match args.enum_kernel {
        EnumKernelChoice::Serial => EnumKernel::Serial,
        EnumKernelChoice::Sharded => EnumKernel::Sharded { shards: 0 },
        EnumKernelChoice::Auto => EnumKernel::default(),
    };
    let compact = match args.compact {
        CompactChoice::Off => CompactKernel::Off,
        CompactChoice::On => CompactKernel::On,
        CompactChoice::Auto => CompactKernel::auto(),
    };
    let simd = match args.simd {
        SimdChoice::Scalar => SimdKernel::Scalar,
        // `auto` keeps the env-aware process default (SLICELINE_SIMD or
        // runtime detection) rather than forcing re-detection.
        SimdChoice::Auto => SimdKernel::Auto,
        SimdChoice::Avx2 => SimdKernel::Forced(SimdLevel::Avx2),
        SimdChoice::Neon => SimdKernel::Forced(SimdLevel::Neon),
    };
    if args.simd != SimdChoice::Auto {
        // An explicit flag overrides the env for exec-less helpers too.
        sliceline_linalg::simd::set_default(simd);
    }
    let mut config = SliceLineConfig::builder()
        .k(args.k)
        .alpha(args.alpha)
        .eval(kernel)
        .enum_kernel(enum_kernel)
        .simd(simd)
        .compact(compact)
        .chunk_rows(args.chunk_rows)
        .mem_budget_bytes(args.mem_budget_mb << 20)
        .priority(args.priority)
        .budget_ms(args.budget_ms)
        .max_evals(args.max_evals)
        .frontier_bytes(args.frontier_mb << 20)
        .priority_batch(args.batch_size)
        .max_level(args.max_level)
        .threads(if args.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            args.threads
        })
        .build()
        .map_err(|e| CliError::usage(e.to_string()))?;
    config.min_support = if args.sigma >= 1.0 {
        MinSupport::Absolute(args.sigma as usize)
    } else {
        MinSupport::Fraction(args.sigma)
    };
    // One execution context for the whole run: thread pool, scratch
    // buffers, tracer/metrics, and (with --stats) per-level telemetry.
    let exec = config.exec_context();
    // The manifest's final metrics (partition skew, cache hit rate) come
    // from the telemetry snapshot, so --metrics-json implies collection.
    exec.enable_stats(args.stats || args.metrics_json.is_some());
    let trace_path = args.trace.clone().or_else(|| {
        std::env::var("SLICELINE_TRACE")
            .ok()
            .filter(|s| !s.is_empty())
    });
    exec.tracer().set_enabled(trace_path.is_some());
    let result = if args.nodes > 0 {
        let cluster = ClusterConfig {
            nodes: args.nodes,
            ..Default::default()
        };
        DistSliceLine::new(config, Strategy::DistParfor(cluster)).find_slices_in(
            &encoded.x0,
            &errors,
            &exec,
        )
    } else if config.is_priority() {
        // Anytime best-first engine: bound-ordered bitmap frontier with
        // deadline / eval / memory budgets and a certified optimality
        // gap in `stats.anytime` (`exact` + `gap` ride along inside the
        // result, so every output format reports the same certificate).
        sliceline::PrioritySliceLine::new(config.clone())
            .find_slices_in(&encoded.x0, &errors, &exec)
            .map(|out| out.result)
    } else if args.chunk_rows > 0 || args.mem_budget_mb > 0 {
        // Out-of-core path: stream the (already parsed) rows through the
        // chunked driver so evaluation memory stays within the budget.
        let mut source = MemorySource::new(encoded.x0.clone(), errors.clone())
            .map_err(|e| CliError::runtime(e.to_string()))?;
        sliceline::find_slices_streamed_in(&mut source, &config, &exec)
    } else {
        SliceLine::new(config).find_slices_in(&encoded.x0, &errors, &exec)
    }
    .map_err(|e| CliError::runtime(e.to_string()))?;
    // End-of-run resident-set sample: keeps the RSS/peak gauges fresh for
    // the manifest and the --stats memory section (no-op off Linux).
    let _ = sliceline_linalg::sample_rss(exec.metrics());
    if let Some(path) = &trace_path {
        // All worker threads have joined inside find_slices_in, so the
        // drain below sees every thread-local buffer.
        let trace = chrome_trace(&exec.tracer().drain(), "sliceline");
        std::fs::write(path, trace)
            .map_err(|e| CliError::runtime(format!("writing trace {path}: {e}")))?;
    }
    if let Some(path) = &args.metrics_json {
        let manifest = build_manifest(args, &result, &exec);
        std::fs::write(path, manifest.to_json())
            .map_err(|e| CliError::runtime(format!("writing manifest {path}: {e}")))?;
    }
    Ok(match args.format {
        OutputFormat::Text => {
            let mut text = report::render_text(&result, &encoded.features, &errors);
            if args.stats {
                text.push_str(&report::render_registry_gauges(exec.metrics()));
            }
            text
        }
        OutputFormat::Json => sliceline::export::result_to_json(&result),
        OutputFormat::Csv => sliceline::export::top_k_to_csv(&result),
    })
}

/// Builds the machine-readable run manifest (`--metrics-json`): effective
/// configuration, code revision, dataset shape, and the final metrics
/// registry snapshot. All durations inside `metrics` follow the
/// float-seconds schema (see `sliceline::export`).
fn build_manifest(args: &FindArgs, result: &SliceLineResult, exec: &ExecContext) -> Manifest {
    let mut m = Manifest::new("sliceline");
    m.set_str("git", &git_describe());
    m.set_raw(
        "config",
        format!(
            "{{\"k\":{},\"sigma\":{},\"alpha\":{},\"max_level\":{},\"threads\":{},\
             \"bins\":{},\"kernel\":\"{:?}\",\"enum_kernel\":\"{:?}\",\"simd\":\"{:?}\",\
             \"compact\":\"{:?}\",\"nodes\":{},\"mem_budget_mb\":{},\"chunk_rows\":{},\
             \"priority\":{},\"budget_ms\":{},\"max_evals\":{},\"frontier_mb\":{},\
             \"batch_size\":{}}}",
            args.k,
            args.sigma,
            args.alpha,
            args.max_level,
            args.threads,
            args.bins,
            args.kernel,
            args.enum_kernel,
            args.simd,
            args.compact,
            args.nodes,
            args.mem_budget_mb,
            args.chunk_rows,
            args.priority || args.budget_ms > 0,
            args.budget_ms,
            args.max_evals,
            args.frontier_mb,
            args.batch_size,
        ),
    );
    if let Some(a) = &result.stats.anytime {
        m.set_raw("anytime", sliceline::export::anytime_to_json(a));
    }
    m.set_raw(
        "dataset",
        format!(
            "{{\"input\":\"{}\",\"n\":{},\"m\":{},\"l\":{},\"sigma\":{}}}",
            json_escape(&args.input),
            result.stats.n,
            result.stats.m,
            result.stats.l,
            result.stats.sigma,
        ),
    );
    // exec_stats() folds the final telemetry snapshot into the registry
    // gauges (pool high-water, bitmap cache hit rate, partition skew)
    // before the registry is serialized.
    let _ = exec.exec_stats();
    m.set_raw("metrics", exec.metrics().to_json());
    m
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Current code revision via `git describe --always --dirty`; "unknown"
/// when git or the repository is unavailable (e.g. a release tarball).
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Trains the requested model on the encoded dataset and returns the
/// per-row error vector.
fn train_and_score(encoded: &EncodedDataset, args: &FindArgs) -> Result<Vec<f64>, CliError> {
    let y = encoded
        .labels
        .clone()
        .ok_or_else(|| CliError::usage("--label column missing from input".to_string()))?;
    // Train on the integer codes as a dense design matrix (the model only
    // needs to produce a plausible error vector; see the paper's §2.1).
    let x = DenseMatrix::from_rows(
        &(0..encoded.x0.rows())
            .map(|r| encoded.x0.row(r).iter().map(|&c| c as f64).collect())
            .collect::<Vec<_>>(),
    )
    .map_err(|e| CliError::runtime(e.to_string()))?;
    match args.task {
        TaskKind::Regression => {
            let model = LinearRegression::fit(&x, &y, 1e-6)
                .map_err(|e| CliError::runtime(format!("lm failed: {e}")))?;
            let yhat = model
                .predict(&x)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            squared_loss(&y, &yhat).map_err(|e| CliError::runtime(e.to_string()))
        }
        TaskKind::Classification => {
            for &v in &y {
                if v < 0.0 || v.fract() != 0.0 {
                    return Err(CliError::runtime(
                        "classification labels must be non-negative integers \
                         (categorical label columns are recoded automatically)"
                            .to_string(),
                    ));
                }
            }
            let model = MultinomialLogistic::fit(&x, &y, &LogisticConfig::default())
                .map_err(|e| CliError::runtime(format!("mlogit failed: {e}")))?;
            let yhat = model
                .predict(&x)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            inaccuracy(&y, &yhat).map_err(|e| CliError::runtime(e.to_string()))
        }
    }
}

/// Runs `sliceline serve`: binds the multi-tenant slice-finding daemon
/// and blocks in its accept loop until `POST /shutdown`. The bound
/// address is printed to stderr (stdout stays clean for scripting).
pub fn run_serve(args: &ServeArgs) -> Result<(), CliError> {
    let threads = if args.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        args.threads
    };
    let config = SliceLineConfig::builder()
        .threads(threads)
        .build()
        .map_err(|e| CliError::usage(e.to_string()))?;
    let server_config = sliceline_serve::ServerConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        slo: sliceline_serve::SloConfig {
            latency_ms: args.slo_latency_ms,
            queue_depth: args.slo_queue_depth,
        },
    };
    let server = sliceline_serve::Server::bind(&server_config, config.exec_context())
        .map_err(|e| CliError::runtime(format!("binding {}: {e}", args.addr)))?;
    let addr = server
        .addr()
        .map_err(|e| CliError::runtime(e.to_string()))?;
    eprintln!("sliceline serve listening on {addr}");
    server
        .run()
        .map_err(|e| CliError::runtime(format!("serve: {e}")))
}

/// Runs `sliceline metrics-dump`: converts a metrics snapshot — fetched
/// live from a daemon's `/metrics` endpoint (`--addr`) or read from a
/// JSON artifact on disk (`--input`) — into the OpenMetrics text
/// exposition printed to stdout.
pub fn run_metrics_dump(args: &MetricsDumpArgs) -> Result<String, CliError> {
    let body = match (&args.addr, &args.input) {
        (Some(addr), None) => http_get_body(addr, "/metrics")?,
        (None, Some(path)) => std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("reading {path}: {e}")))?,
        // The parser enforces exactly one source.
        _ => return Err(CliError::usage("metrics-dump: one of --addr or --input")),
    };
    let doc = sliceline_linalg::json::parse(&body)
        .map_err(|e| CliError::runtime(format!("parsing metrics JSON: {e}")))?;
    // A `--metrics-json` manifest nests the registry under "metrics";
    // a raw `/metrics` response is the registry object itself.
    let metrics = doc.get("metrics").unwrap_or(&doc);
    let snapshot =
        sliceline_linalg::openmetrics::snapshot_from_json(metrics).map_err(CliError::runtime)?;
    Ok(sliceline_linalg::openmetrics::render(&snapshot))
}

/// Minimal `GET` over a raw `TcpStream` (the daemon speaks plain
/// HTTP/1.1 with `Content-Length`-delimited bodies; no client library
/// is needed just to read one JSON document).
fn http_get_body(addr: &str, path: &str) -> Result<String, CliError> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError::runtime(format!("connecting {addr}: {e}")))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| CliError::runtime(format!("sending request to {addr}: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| CliError::runtime(format!("reading response from {addr}: {e}")))?;
    let status = response.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(CliError::runtime(format!(
            "GET {path} from {addr} failed: {status}"
        )));
    }
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| CliError::runtime(format!("malformed response from {addr}")))
}

/// Runs `sliceline generate`, returning the CSV text (the caller writes it
/// to the output target).
pub fn run_generate(args: &GenerateArgs) -> Result<String, CliError> {
    let config = GenConfig {
        seed: args.seed,
        scale: args.scale,
    };
    if args.dataset == "salaries" {
        return Ok(dataframe_to_csv(&sliceline_datagen::salaries()));
    }
    let d = match args.dataset.as_str() {
        "adult" => sliceline_datagen::adult_like(&config),
        "covtype" => sliceline_datagen::covtype_like(&config),
        "kdd98" => sliceline_datagen::kdd98_like(&config),
        "census" => sliceline_datagen::census_like(&config),
        "criteo" => sliceline_datagen::criteo_like(&config),
        other => {
            return Err(CliError::usage(format!(
                "generate: unknown dataset '{other}'"
            )))
        }
    };
    // Integer codes plus the simulated error column.
    let mut out = String::new();
    for j in 0..d.m() {
        out.push_str(&format!("f{j},"));
    }
    out.push_str("error\n");
    for r in 0..d.n() {
        for &code in d.x0.row(r) {
            out.push_str(&format!("{code},"));
        }
        out.push_str(&format!("{}\n", d.errors[r]));
    }
    Ok(out)
}

fn dataframe_to_csv(df: &sliceline_frame::DataFrame) -> String {
    let mut out = df.names().join(",");
    out.push('\n');
    for r in 0..df.nrows() {
        let row: Vec<String> = (0..df.ncols())
            .map(|c| df.column_at(c).display_value(r))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::FindArgs;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sliceline_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    /// A CSV with a planted bad slice (city=B & plan=free) and an
    /// explicit error column.
    fn biased_csv() -> String {
        let mut s = String::from("city,plan,age,err\n");
        for i in 0..240 {
            let city = if i % 2 == 0 { "A" } else { "B" };
            let plan = if (i / 2) % 2 == 0 { "paid" } else { "free" };
            let age = 20 + (i % 40);
            let err = if city == "B" && plan == "free" {
                0.9
            } else {
                0.05
            };
            s.push_str(&format!("{city},{plan},{age},{err}\n"));
        }
        s
    }

    #[test]
    fn find_with_errors_column_text() {
        let path = write_temp("biased.csv", &biased_csv());
        let args = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            ..Default::default()
        };
        let out = run_find(&args).unwrap();
        assert!(out.contains("city = B"), "report:\n{out}");
        assert!(out.contains("plan = free"));
        assert!(out.contains("score"));
    }

    #[test]
    fn find_with_stats_prints_execution_table() {
        let path = write_temp("biased_stats.csv", &biased_csv());
        let args = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 2,
            stats: true,
            ..Default::default()
        };
        let out = run_find(&args).unwrap();
        assert!(out.contains("Execution statistics"), "report:\n{out}");
        assert!(out.contains("kernel"));
        // Without the flag the table is absent.
        let args = FindArgs {
            stats: false,
            ..args
        };
        let out = run_find(&args).unwrap();
        assert!(!out.contains("Execution statistics"));
    }

    #[test]
    fn find_streamed_matches_in_memory_report() {
        let path = write_temp("biased_oocore.csv", &biased_csv());
        let base = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            ..Default::default()
        };
        let slices = |report: String| {
            report
                .split("\nEnumeration statistics:")
                .next()
                .unwrap()
                .to_string()
        };
        let in_memory = slices(run_find(&base).unwrap());
        for (chunk_rows, mem_budget_mb) in [(16usize, 0usize), (1000, 0), (0, 64), (7, 1)] {
            let out = slices(
                run_find(&FindArgs {
                    chunk_rows,
                    mem_budget_mb,
                    ..base.clone()
                })
                .unwrap(),
            );
            assert_eq!(
                out, in_memory,
                "streamed report diverged (chunk_rows={chunk_rows}, budget={mem_budget_mb}MiB)"
            );
        }
    }

    #[test]
    fn find_streamed_stats_prints_memory_gauges() {
        let path = write_temp("biased_oocore_stats.csv", &biased_csv());
        let args = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            stats: true,
            chunk_rows: 32,
            ..Default::default()
        };
        let out = run_find(&args).unwrap();
        assert!(out.contains("Memory and streaming"), "report:\n{out}");
        assert!(out.contains("core.oocore.chunk_rows"), "report:\n{out}");
        #[cfg(target_os = "linux")]
        assert!(out.contains("obs.mem.rss_peak_bytes"), "report:\n{out}");
    }

    #[test]
    fn find_priority_matches_levelwise_report() {
        let path = write_temp("biased_priority.csv", &biased_csv());
        let base = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            format: OutputFormat::Csv,
            ..Default::default()
        };
        let levelwise = run_find(&base).unwrap();
        // Unlimited budget: the anytime engine returns the identical
        // top-K, at any batch size and thread count.
        for (batch_size, threads) in [(1usize, 1usize), (8, 1), (64, 2)] {
            let out = run_find(&FindArgs {
                priority: true,
                batch_size,
                threads,
                ..base.clone()
            })
            .unwrap();
            assert_eq!(
                out, levelwise,
                "priority (batch={batch_size}, threads={threads}) diverged"
            );
        }
    }

    #[test]
    fn find_priority_json_reports_certificate() {
        let path = write_temp("biased_priority_json.csv", &biased_csv());
        let base = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            format: OutputFormat::Json,
            priority: true,
            ..Default::default()
        };
        // Exhaustive run: exact with a zero gap.
        let json = run_find(&base).unwrap();
        assert!(
            json.contains("\"anytime\":{\"exact\":true,\"gap\":0"),
            "json:\n{json}"
        );
        // Starved eval budget: still valid output, sound gap fields.
        let json = run_find(&FindArgs {
            max_evals: 1,
            ..base.clone()
        })
        .unwrap();
        assert!(json.contains("\"anytime\":{\"exact\":"), "json:\n{json}");
        assert!(json.contains("\"evaluated\":"), "json:\n{json}");
        // The text report surfaces the certificate when inexact.
        let text = run_find(&FindArgs {
            max_evals: 1,
            format: OutputFormat::Text,
            ..base.clone()
        })
        .unwrap();
        assert!(
            text.contains("certified gap") || text.contains("exact top-"),
            "report:\n{text}"
        );
        // The run manifest carries the anytime block and the config knobs.
        let dir = std::env::temp_dir().join("sliceline_cli_tests");
        let manifest_path = dir.join("priority_manifest.json");
        run_find(&FindArgs {
            metrics_json: Some(manifest_path.to_string_lossy().into_owned()),
            ..base
        })
        .unwrap();
        let manifest = std::fs::read_to_string(&manifest_path).unwrap();
        assert!(
            manifest.contains("\"anytime\":{\"exact\":true"),
            "manifest:\n{manifest}"
        );
        assert!(
            manifest.contains("\"priority\":true"),
            "manifest:\n{manifest}"
        );
        assert!(
            manifest.contains("\"batch_size\":64"),
            "manifest:\n{manifest}"
        );
    }

    #[test]
    fn find_kernels_render_identical_reports() {
        let path = write_temp("biased_kernels.csv", &biased_csv());
        let base = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            ..Default::default()
        };
        // The trailing statistics tables contain wall-clock timings, so
        // only the slice report proper is comparable across runs.
        let slices = |report: String| {
            report
                .split("\nEnumeration statistics:")
                .next()
                .unwrap()
                .to_string()
        };
        let blocked = slices(run_find(&base).unwrap());
        for kernel in [
            KernelChoice::Fused,
            KernelChoice::Bitmap,
            KernelChoice::Auto,
        ] {
            let out = slices(
                run_find(&FindArgs {
                    kernel,
                    ..base.clone()
                })
                .unwrap(),
            );
            assert_eq!(out, blocked, "{kernel:?} report diverged");
        }
        // Candidate-generation engines must not change the report either
        // (2 threads so Sharded/Auto actually exercise the parallel path).
        let serial = slices(
            run_find(&FindArgs {
                enum_kernel: EnumKernelChoice::Serial,
                threads: 2,
                ..base.clone()
            })
            .unwrap(),
        );
        for enum_kernel in [EnumKernelChoice::Sharded, EnumKernelChoice::Auto] {
            let out = slices(
                run_find(&FindArgs {
                    enum_kernel,
                    threads: 2,
                    ..base.clone()
                })
                .unwrap(),
            );
            assert_eq!(out, serial, "{enum_kernel:?} report diverged");
        }
    }

    #[test]
    fn find_compact_modes_render_identical_reports() {
        let path = write_temp("biased_compact.csv", &biased_csv());
        let base = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            format: OutputFormat::Csv,
            ..Default::default()
        };
        let off = run_find(&base).unwrap();
        for (compact, kernel) in [
            (CompactChoice::On, KernelChoice::Blocked),
            (CompactChoice::On, KernelChoice::Bitmap),
            (CompactChoice::Auto, KernelChoice::Fused),
        ] {
            let out = run_find(&FindArgs {
                compact,
                kernel,
                ..base.clone()
            })
            .unwrap();
            assert_eq!(out, off, "--compact {compact:?} ({kernel:?}) diverged");
        }
    }

    #[test]
    fn find_writes_trace_and_manifest() {
        let path = write_temp("biased_trace.csv", &biased_csv());
        let dir = std::env::temp_dir().join("sliceline_cli_tests");
        let trace_path = dir.join("trace_out.json");
        let manifest_path = dir.join("manifest_out.json");
        let args = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 2,
            trace: Some(trace_path.to_string_lossy().into_owned()),
            metrics_json: Some(manifest_path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        run_find(&args).unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        // Spans from the core level loop and the linalg kernels are
        // present in one trace (the dist layer is covered below).
        assert!(trace.contains("\"find_slices\""), "trace:\n{trace}");
        assert!(trace.contains("\"level\""));
        assert!(trace.contains("\"cat\":\"linalg\""));
        assert!(trace.contains("\"pruning_funnel\""));
        let manifest = std::fs::read_to_string(&manifest_path).unwrap();
        for key in [
            "schema_version",
            "tool",
            "git",
            "config",
            "dataset",
            "metrics",
        ] {
            assert!(
                manifest.contains(&format!("\"{key}\":")),
                "manifest:\n{manifest}"
            );
        }
        assert!(manifest.contains("\"tool\":\"sliceline\""));
        assert!(manifest.contains("core.funnel.evaluated"));
        // Compaction telemetry reaches the manifest even with the
        // default-off policy (the gauge reports the working-set size).
        assert!(manifest.contains("core.compact.rows_retained"));
        assert!(manifest.contains("\"compact\":\"Off\""));
    }

    #[test]
    fn find_on_simulated_cluster_matches_local() {
        let path = write_temp("biased_dist.csv", &biased_csv());
        let dir = std::env::temp_dir().join("sliceline_cli_tests");
        let trace_path = dir.join("dist_trace.json");
        let base = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            format: OutputFormat::Csv,
            ..Default::default()
        };
        let local = run_find(&base).unwrap();
        let dist = run_find(&FindArgs {
            nodes: 3,
            trace: Some(trace_path.to_string_lossy().into_owned()),
            ..base.clone()
        })
        .unwrap();
        // Per-node aggregation reorders float sums, so scores may differ
        // in the last ulp; ranks, predicates, and sizes must agree.
        let shape = |csv: &str| -> Vec<(String, String, String)> {
            csv.lines()
                .skip(1)
                .map(|l| {
                    let f: Vec<&str> = l.split(',').collect();
                    (f[0].to_string(), f[1].to_string(), f[3].to_string())
                })
                .collect()
        };
        assert_eq!(
            shape(&local),
            shape(&dist),
            "distributed top-K diverged from local:\n{local}\n{dist}"
        );
        // The distributed run's trace carries per-node spans.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"node.eval\""), "trace:\n{trace}");
        assert!(trace.contains("\"cat\":\"dist\""));
    }

    #[test]
    fn tracing_does_not_change_results() {
        let path = write_temp("biased_parity.csv", &biased_csv());
        let dir = std::env::temp_dir().join("sliceline_cli_tests");
        let trace_path = dir.join("parity_trace.json");
        let base = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 2,
            format: OutputFormat::Csv,
            ..Default::default()
        };
        let off = run_find(&base).unwrap();
        let on = run_find(&FindArgs {
            trace: Some(trace_path.to_string_lossy().into_owned()),
            ..base.clone()
        })
        .unwrap();
        // Bit-for-bit: tracing must observe, never perturb.
        assert_eq!(off, on);
    }

    #[test]
    fn find_json_and_csv_formats() {
        let path = write_temp("biased2.csv", &biased_csv());
        let mut args = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 2,
            sigma: 10.0,
            threads: 1,
            ..Default::default()
        };
        args.format = OutputFormat::Json;
        let json = run_find(&args).unwrap();
        assert!(json.starts_with('{'));
        assert!(json.contains("\"top_k\""));
        args.format = OutputFormat::Csv;
        let csv = run_find(&args).unwrap();
        assert!(csv.starts_with("rank,predicates"));
    }

    #[test]
    fn find_trains_regression_model() {
        // salary = base + penalty for (city B, plan free): lm misses the
        // interaction, SliceLine finds it.
        // Unbalanced cell sizes (40/30/20/10%): a balanced 2x2 would let
        // OLS spread the interaction evenly over all cells and no slice
        // would stand out.
        let mut s = String::from("city,plan,salary\n");
        for i in 0..300 {
            let (city, plan) = match i % 10 {
                0..=3 => ("A", "paid"),
                4..=6 => ("B", "paid"),
                7 | 8 => ("A", "free"),
                _ => ("B", "free"),
            };
            let noise = ((i * 37) % 11) as f64 * 10.0;
            let salary = 1000.0
                + if city == "B" { 100.0 } else { 0.0 }
                + if plan == "free" { -50.0 } else { 0.0 }
                + if city == "B" && plan == "free" {
                    -600.0
                } else {
                    0.0
                }
                + noise;
            s.push_str(&format!("{city},{plan},{salary}\n"));
        }
        let path = write_temp("salary.csv", &s);
        let args = FindArgs {
            input: path.to_string_lossy().into_owned(),
            label: Some("salary".to_string()),
            task: TaskKind::Regression,
            k: 2,
            sigma: 10.0,
            threads: 1,
            ..Default::default()
        };
        let out = run_find(&args).unwrap();
        assert!(
            out.contains("city = B") && out.contains("plan = free"),
            "report:\n{out}"
        );
    }

    #[test]
    fn find_rejects_bad_inputs() {
        let args = FindArgs {
            input: "/nonexistent/nope.csv".to_string(),
            errors: Some("e".to_string()),
            ..Default::default()
        };
        assert!(run_find(&args).is_err());
        // Categorical error column rejected.
        let path = write_temp("cat_err.csv", "a,e\n1,x\n2,y\n");
        let args = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("e".to_string()),
            ..Default::default()
        };
        let err = run_find(&args).unwrap_err();
        assert!(err.message.contains("numeric"));
        // Negative errors rejected.
        let path = write_temp("neg_err.csv", "a,e\n1,-0.5\n2,0.5\n");
        let args = FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("e".to_string()),
            sigma: 1.0,
            ..Default::default()
        };
        assert!(run_find(&args).is_err());
    }

    #[test]
    fn metrics_dump_converts_manifest_to_openmetrics() {
        let path = write_temp("biased_dump.csv", &biased_csv());
        let dir = std::env::temp_dir().join("sliceline_cli_tests");
        let manifest_path = dir.join("dump_manifest.json");
        run_find(&FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            metrics_json: Some(manifest_path.to_string_lossy().into_owned()),
            ..Default::default()
        })
        .unwrap();
        let out = run_metrics_dump(&MetricsDumpArgs {
            addr: None,
            input: Some(manifest_path.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert!(out.contains("# TYPE"), "exposition:\n{out}");
        assert!(out.ends_with("# EOF\n"), "exposition:\n{out}");
        assert!(
            out.contains("core_funnel_evaluated_total"),
            "exposition:\n{out}"
        );
        let violations = sliceline_linalg::openmetrics::lint(&out);
        assert!(violations.is_empty(), "lint violations: {violations:?}");
        // Missing files and non-JSON inputs surface as runtime errors.
        assert!(run_metrics_dump(&MetricsDumpArgs {
            addr: None,
            input: Some("/nonexistent/nope.json".to_string()),
        })
        .is_err());
        let bad = write_temp("dump_bad.json", "not json");
        assert!(run_metrics_dump(&MetricsDumpArgs {
            addr: None,
            input: Some(bad.to_string_lossy().into_owned()),
        })
        .is_err());
    }

    #[test]
    fn stats_report_surfaces_trace_drop_gauge() {
        let path = write_temp("biased_dropgauge.csv", &biased_csv());
        let out = run_find(&FindArgs {
            input: path.to_string_lossy().into_owned(),
            errors: Some("err".to_string()),
            k: 3,
            sigma: 10.0,
            threads: 1,
            stats: true,
            ..Default::default()
        })
        .unwrap();
        // The tracer drop counter is surfaced with the other gauges so a
        // truncated trace is visible from the CLI (0 on a healthy run).
        assert!(out.contains("obs.trace.dropped_events"), "report:\n{out}");
    }

    #[test]
    fn generate_emits_csv() {
        let out = run_generate(&GenerateArgs {
            dataset: "adult".to_string(),
            scale: 0.002,
            seed: 1,
            output: "-".to_string(),
        })
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("f0,"));
        assert!(lines[0].ends_with("error"));
        assert!(lines.len() > 16);
        // Generated errors are parseable numbers.
        let last = lines[1].rsplit(',').next().unwrap();
        last.parse::<f64>().unwrap();
    }

    #[test]
    fn generate_salaries_is_raw_frame() {
        let out = run_generate(&GenerateArgs {
            dataset: "salaries".to_string(),
            ..Default::default()
        })
        .unwrap();
        assert!(out.starts_with("rank,discipline"));
        assert_eq!(out.lines().count(), 398);
    }

    #[test]
    fn generate_unknown_dataset() {
        let err = run_generate(&GenerateArgs {
            dataset: "nope".to_string(),
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err.code, 2);
    }
}
