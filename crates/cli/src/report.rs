//! Human-readable debugging report rendering.

use sliceline::{SliceInfo, SliceLineResult};
use sliceline_frame::FeatureSet;

/// Renders the full text report: headline, per-slice sections, and the
/// enumeration statistics table.
pub fn render_text(result: &SliceLineResult, features: &FeatureSet, errors: &[f64]) -> String {
    let n = result.stats.n as f64;
    let avg_error = if n > 0.0 {
        errors.iter().sum::<f64>() / n
    } else {
        0.0
    };
    let mut out = String::new();
    out.push_str(&format!(
        "SliceLine report — {} rows, {} features ({} one-hot columns), sigma={}, avg error {:.4}\n\n",
        result.stats.n, result.stats.m, result.stats.l, result.stats.sigma, avg_error
    ));
    if result.top_k.is_empty() {
        out.push_str(
            "No slice satisfies |S| >= sigma with score > 0: the model's errors \
             are not concentrated in any feature conjunction at this support \
             level. Try lowering --sigma or checking the error column.\n",
        );
        return out;
    }
    for (rank, s) in result.top_k.iter().enumerate() {
        out.push_str(&render_slice(rank + 1, s, features, avg_error));
        out.push('\n');
    }
    out.push_str("Enumeration statistics:\n");
    out.push_str(&result.stats.render_table());
    if let Some(exec) = &result.stats.exec {
        out.push('\n');
        out.push_str(&render_exec_stats(exec));
    }
    match &result.stats.anytime {
        // A budget stopped the anytime engine early: surface the
        // certificate instead of claiming exactness.
        Some(a) if !a.exact => out.push_str(&format!(
            "\ntotal: {:.3}s over {} evaluated slices (anytime top-{}, \
             certified gap {:.6}: no unseen slice scores above kth + gap).\n",
            result.stats.total_elapsed.as_secs_f64(),
            a.evaluated,
            result.top_k.len(),
            a.gap,
        )),
        _ => out.push_str(&format!(
            "\ntotal: {:.3}s over {} evaluated slices (exact top-{}).\n",
            result.stats.total_elapsed.as_secs_f64(),
            result.stats.total_evaluated(),
            result.top_k.len(),
        )),
    }
    out
}

/// Renders the execution-layer telemetry collected under `--stats`:
/// per-level counters, kernel choices, stage timings, and pool reuse.
pub fn render_exec_stats(exec: &sliceline_linalg::ExecStats) -> String {
    format!("Execution statistics (--stats):\n{}", exec.render_table())
}

/// Registry gauge prefixes surfaced in the `--stats` memory section:
/// resident-set samples, the simulated cluster's virtual exchange clock,
/// the out-of-core chunk/spill accounting, and the tracer's dropped-event
/// counter (non-zero means the span buffer truncated the trace).
const STATS_GAUGE_PREFIXES: [&str; 4] = ["obs.mem.", "dist.virtual.", "core.oocore.", "obs.trace."];

/// Renders the memory and streaming gauges from the metrics registry
/// (`--stats` section below the execution table). Byte-valued gauges are
/// scaled to MiB for readability; empty when none were recorded.
pub fn render_registry_gauges(metrics: &sliceline_linalg::MetricsRegistry) -> String {
    let mut rows: Vec<(String, f64)> = metrics
        .flat_values()
        .into_iter()
        .filter(|(name, _)| STATS_GAUGE_PREFIXES.iter().any(|p| name.starts_with(p)))
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("\nMemory and streaming (--stats):\n");
    for (name, value) in rows {
        if name.ends_with("_bytes") {
            out.push_str(&format!(
                "  {name:<32} {:>12.1} MiB\n",
                value / (1 << 20) as f64
            ));
        } else {
            out.push_str(&format!("  {name:<32} {value:>12.3}\n"));
        }
    }
    out
}

/// Renders one slice section.
fn render_slice(rank: usize, s: &SliceInfo, features: &FeatureSet, avg_error: f64) -> String {
    let lift = if avg_error > 0.0 {
        s.avg_error / avg_error
    } else {
        0.0
    };
    format!(
        "#{rank} {}\n    score {:.4} | {} rows | avg error {:.4} ({:.1}x overall) | max error {:.4}\n",
        s.describe(features),
        s.score,
        s.size as u64,
        s.avg_error,
        lift,
        s.max_error,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliceline::stats::RunStats;

    fn features() -> FeatureSet {
        FeatureSet::opaque_from_domains(&[2, 3])
    }

    fn result(top_k: Vec<SliceInfo>) -> SliceLineResult {
        SliceLineResult {
            top_k,
            stats: RunStats {
                n: 100,
                m: 2,
                l: 5,
                sigma: 5,
                ..Default::default()
            },
        }
    }

    #[test]
    fn renders_slices_with_lift() {
        let r = result(vec![SliceInfo {
            predicates: vec![(0, 2), (1, 1)],
            score: 1.25,
            size: 20.0,
            error: 10.0,
            max_error: 1.0,
            avg_error: 0.5,
        }]);
        let errors = vec![0.1; 100];
        let text = render_text(&r, &features(), &errors);
        assert!(text.contains("f0 = 2 AND f1 = 1"));
        assert!(text.contains("score 1.2500"));
        assert!(text.contains("5.0x overall"));
        assert!(text.contains("Enumeration statistics"));
    }

    #[test]
    fn renders_exec_stats_when_present() {
        let mut r = result(vec![SliceInfo {
            predicates: vec![(0, 1)],
            score: 0.5,
            size: 10.0,
            error: 5.0,
            max_error: 1.0,
            avg_error: 0.5,
        }]);
        let exec = sliceline_linalg::ExecContext::serial();
        exec.enable_stats(true);
        exec.begin_level(1);
        exec.record_level(|p| {
            p.candidates += 5;
            p.evaluated += 5;
        });
        r.stats.exec = Some(exec.exec_stats());
        let text = render_text(&r, &features(), &[0.1; 100]);
        assert!(text.contains("Execution statistics"), "report:\n{text}");
        assert!(text.contains("evaluated"));
    }

    #[test]
    fn renders_anytime_gap_when_budget_stopped() {
        let mut r = result(vec![SliceInfo {
            predicates: vec![(0, 1)],
            score: 1.0,
            size: 20.0,
            error: 10.0,
            max_error: 1.0,
            avg_error: 0.5,
        }]);
        r.stats.anytime = Some(sliceline::AnytimeStats {
            exact: false,
            gap: 0.25,
            evaluated: 17,
            ..Default::default()
        });
        let text = render_text(&r, &features(), &[0.1; 100]);
        assert!(text.contains("certified gap 0.250000"), "report:\n{text}");
        assert!(text.contains("anytime top-1"));
        assert!(!text.contains("exact top-1"));
        // An exhaustive anytime run keeps the exact wording.
        r.stats.anytime.as_mut().unwrap().exact = true;
        let text = render_text(&r, &features(), &[0.1; 100]);
        assert!(text.contains("exact top-1"), "report:\n{text}");
    }

    #[test]
    fn renders_empty_result_guidance() {
        let r = result(vec![]);
        let text = render_text(&r, &features(), &[0.1; 100]);
        assert!(text.contains("No slice satisfies"));
        assert!(text.contains("--sigma"));
    }

    #[test]
    fn zero_rows_no_panic() {
        let mut r = result(vec![]);
        r.stats.n = 0;
        let text = render_text(&r, &features(), &[]);
        assert!(text.contains("0 rows"));
    }
}
