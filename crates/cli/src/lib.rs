//! # sliceline-cli
//!
//! The `sliceline` command-line tool: point it at a CSV, tell it which
//! column is the label (or which column already holds per-row errors),
//! and get back the top-K problematic slices with human-readable
//! predicates — the full paper pipeline (§5.1 preprocessing → model →
//! error vector → Algorithm 1) as one command.
//!
//! ```text
//! sliceline find --input data.csv --label salary --task regression --k 4
//! sliceline find --input scored.csv --errors err_col --format json
//! sliceline generate --dataset adult --scale 0.1 --output adult.csv
//! ```
//!
//! The library half hosts the argument parser, pipeline, and report
//! rendering so everything is unit-testable without spawning processes;
//! `main.rs` is a thin shim.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod pipeline;
pub mod report;

pub use args::{
    Cli, Command, FindArgs, GenerateArgs, MetricsDumpArgs, OutputFormat, ServeArgs, TaskKind,
};
pub use pipeline::{run_find, run_generate, run_metrics_dump, run_serve};

/// CLI error: message plus the exit code `main` should use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message printed to stderr.
    pub message: String,
    /// Process exit code (2 = usage, 1 = runtime failure).
    pub code: i32,
}

impl CliError {
    /// Usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    /// Runtime error (exit code 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}
