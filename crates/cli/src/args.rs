//! Hand-rolled argument parsing (the dependency policy keeps clap out).

use crate::CliError;

/// Output rendering for `find`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable report (default).
    #[default]
    Text,
    /// JSON object with top-K and run statistics.
    Json,
    /// CSV rows of the top-K.
    Csv,
}

/// Which slice-evaluation kernel `find` runs (maps onto
/// [`sliceline::EvalKernel`] in the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Block-partitioned sparse-float kernel (the library default).
    #[default]
    Blocked,
    /// Fused single-pass sparse-float kernel.
    Fused,
    /// Packed u64 bitmap kernel with incremental parent-bitmap reuse.
    Bitmap,
    /// Per-level choice between the blocked and bitmap plans.
    Auto,
}

/// Which candidate-generation engine `find` runs (maps onto
/// [`sliceline::EnumKernel`] in the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnumKernelChoice {
    /// Single-threaded streaming join + one dedup table.
    Serial,
    /// Parallel row-blocked join into hash-sharded dedup tables.
    Sharded,
    /// Per-level choice by parent count (the library default).
    #[default]
    Auto,
}

/// SIMD backend for the bitmap kernels (maps onto
/// [`sliceline::SimdKernel`] in the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdChoice {
    /// Portable scalar loops.
    Scalar,
    /// Runtime feature detection (the library default).
    #[default]
    Auto,
    /// Force AVX2 (degrades to scalar where unsupported).
    Avx2,
    /// Force NEON (degrades to scalar where unsupported).
    Neon,
}

/// Adaptive input-compaction policy (maps onto
/// [`sliceline::CompactKernel`] in the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactChoice {
    /// Never gather (the library default).
    #[default]
    Off,
    /// Gather whenever the retained fraction drops below the threshold.
    On,
    /// Gather only above the built-in row floor (small inputs skip it).
    Auto,
}

/// How the error vector is produced when `--errors` is not given.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Train linear regression on `--label`, squared-loss errors.
    Regression,
    /// Train multinomial logistic regression on `--label`, 0/1 errors.
    Classification,
}

/// Arguments of `sliceline find`.
#[derive(Debug, Clone, PartialEq)]
pub struct FindArgs {
    /// Input CSV path.
    pub input: String,
    /// Label column to train a model on (mutually exclusive with
    /// `errors`).
    pub label: Option<String>,
    /// Column already containing non-negative per-row errors.
    pub errors: Option<String>,
    /// Task kind when training (defaults to regression).
    pub task: TaskKind,
    /// Top-K.
    pub k: usize,
    /// Minimum support: absolute when ≥ 1, fraction of n when < 1.
    pub sigma: f64,
    /// Error/size weight α.
    pub alpha: f64,
    /// Maximum lattice level.
    pub max_level: usize,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Columns to drop (IDs etc.).
    pub drop: Vec<String>,
    /// Equi-width bins for continuous features.
    pub bins: u32,
    /// Output format.
    pub format: OutputFormat,
    /// Slice-evaluation kernel.
    pub kernel: KernelChoice,
    /// Candidate-generation (enumeration) engine.
    pub enum_kernel: EnumKernelChoice,
    /// SIMD backend for the bitmap kernels.
    pub simd: SimdChoice,
    /// Adaptive level-wise input compaction policy.
    pub compact: CompactChoice,
    /// Collect and print execution-layer statistics (per-level counters,
    /// stage timings, scratch-pool reuse).
    pub stats: bool,
    /// Write a Chrome trace-event JSON file (Perfetto-loadable) covering
    /// the whole run. `None` = tracing off (also settable via the
    /// `SLICELINE_TRACE` environment variable).
    pub trace: Option<String>,
    /// Write a machine-readable run manifest (config + git + dataset
    /// shape + final metrics) as JSON to this path.
    pub metrics_json: Option<String>,
    /// Simulated cluster nodes for distributed evaluation (0 = local).
    pub nodes: usize,
    /// Memory budget in MiB for the out-of-core path (0 = unlimited,
    /// fully materialized execution).
    pub mem_budget_mb: usize,
    /// Rows per streamed chunk (0 = derive from the budget, or stay
    /// in-memory when no budget is set either).
    pub chunk_rows: usize,
    /// Run the anytime best-first engine instead of the level-wise
    /// lattice (implied by `budget_ms > 0`).
    pub priority: bool,
    /// Wall-clock deadline in milliseconds for the anytime engine
    /// (0 = unlimited; any positive value implies `priority`).
    pub budget_ms: u64,
    /// Candidate-evaluation cap for the anytime engine (0 = unlimited).
    pub max_evals: usize,
    /// Byte cap (in MiB) on materialized frontier bitmaps
    /// (0 = unlimited; drops are folded into the certified gap).
    pub frontier_mb: usize,
    /// Frontier nodes expanded per batched round.
    pub batch_size: usize,
}

impl Default for FindArgs {
    fn default() -> Self {
        FindArgs {
            input: String::new(),
            label: None,
            errors: None,
            task: TaskKind::Regression,
            k: 4,
            sigma: 0.01,
            alpha: 0.95,
            max_level: usize::MAX,
            threads: 0,
            drop: Vec::new(),
            bins: 10,
            format: OutputFormat::Text,
            kernel: KernelChoice::Blocked,
            enum_kernel: EnumKernelChoice::Auto,
            simd: SimdChoice::Auto,
            compact: CompactChoice::Off,
            stats: false,
            trace: None,
            metrics_json: None,
            nodes: 0,
            mem_budget_mb: 0,
            chunk_rows: 0,
            priority: false,
            budget_ms: 0,
            max_evals: 0,
            frontier_mb: 0,
            batch_size: 64,
        }
    }
}

/// Arguments of `sliceline generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Generator name: adult | covtype | kdd98 | census | criteo | salaries.
    pub dataset: String,
    /// Row-count scale.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Output CSV path (`-` = stdout).
    pub output: String,
}

impl Default for GenerateArgs {
    fn default() -> Self {
        GenerateArgs {
            dataset: "adult".to_string(),
            scale: 0.05,
            seed: 42,
            output: "-".to_string(),
        }
    }
}

/// Arguments of `sliceline serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Job-queue worker threads (0 = one per core).
    pub workers: usize,
    /// Shared execution-context thread-pool size (0 = all cores).
    /// Individual jobs can still request fewer threads per query.
    pub threads: usize,
    /// Per-job latency objective in milliseconds. When set, the daemon
    /// exports `serve.slo.latency_*` burn-rate gauges (fraction of
    /// finished jobs over the objective).
    pub slo_latency_ms: Option<u64>,
    /// Queue-depth objective observed at submission. When set, the
    /// daemon exports `serve.slo.queue_*` burn-rate gauges.
    pub slo_queue_depth: Option<usize>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            threads: 0,
            slo_latency_ms: None,
            slo_queue_depth: None,
        }
    }
}

/// Arguments of `sliceline metrics-dump`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsDumpArgs {
    /// Fetch the live `/metrics` snapshot from a running daemon at this
    /// address (mutually exclusive with `input`).
    pub addr: Option<String>,
    /// Convert a JSON metrics artifact from this file instead: either a
    /// `/metrics` response or a `--metrics-json` manifest.
    pub input: Option<String>,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Which subcommand to run.
    pub command: Command,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Find slices in a CSV.
    Find(FindArgs),
    /// Emit a synthetic dataset as CSV.
    Generate(GenerateArgs),
    /// Run the multi-tenant slice-finding daemon.
    Serve(ServeArgs),
    /// Render a metrics snapshot as OpenMetrics text exposition.
    MetricsDump(MetricsDumpArgs),
    /// Print usage and exit 0.
    Help,
}

/// Usage text shown by `--help` and on usage errors.
pub const USAGE: &str = "\
sliceline — find the data slices where your model fails (SIGMOD'21)

USAGE:
  sliceline find --input FILE (--label COL | --errors COL) [options]
  sliceline generate [--dataset NAME] [--scale F] [--seed N] [--output FILE]
  sliceline serve [--addr HOST:PORT] [--workers N] [--threads N]
                  [--slo-latency-ms N] [--slo-queue-depth N]
  sliceline metrics-dump (--addr HOST:PORT | --input FILE)
  sliceline help

FIND OPTIONS:
  --input FILE        input CSV with a header row
  --label COL         train a model on COL and slice on its errors
  --errors COL        use COL directly as the per-row error vector
  --task KIND         regression | classification   (default: regression)
  --k N               top-K slices                   (default: 4)
  --sigma X           min support: rows if X >= 1, fraction of n if X < 1
                                                     (default: 0.01)
  --alpha X           error-vs-size weight in (0,1]  (default: 0.95)
  --max-level N       max predicates per slice       (default: unbounded)
  --threads N         worker threads, 0 = all cores  (default: 0)
  --drop COL          drop a column (repeatable)
  --bins N            equi-width bins for continuous features (default: 10)
  --format FMT        text | json | csv              (default: text)
  --kernel K          blocked | fused | bitmap | auto (default: blocked)
  --enum-kernel E     serial | sharded | auto        (default: auto)
                      candidate-generation engine: sharded runs the
                      parallel streaming join + sharded dedup
  --simd S            scalar | auto                  (default: auto)
                      SIMD backend for the bitmap kernels; auto detects
                      CPU features at runtime (AVX2/NEON), scalar forces
                      the portable loops. Results are bit-for-bit
                      identical either way. The SLICELINE_SIMD env var
                      sets the same choice
  --compact C         off | on | auto                (default: off)
                      adaptive level-wise input compaction: gather X,
                      bitmaps and errors down to surviving-candidate
                      coverage when it drops below 70%; auto skips
                      small inputs. Results are identical either way
  --stats             collect and print per-level execution statistics
                      (candidates, pruning, kernel choice, stage timings)
  --trace FILE        write a Chrome trace-event JSON (open in Perfetto)
                      covering kernels, level loop and cluster nodes;
                      the SLICELINE_TRACE env var sets the same path
  --metrics-json FILE write a machine-readable run manifest: config,
                      git revision, dataset shape, final metrics
  --nodes N           evaluate slices on an N-node simulated cluster
                      (default: 0 = local evaluation)
  --mem-budget-mb N   bound resident memory to N MiB and stream the
                      input through the chunked out-of-core path;
                      level-2 chunks spill to a temp file within the
                      budget (default: 0 = fully materialized)
  --chunk-rows N      rows per streamed chunk on the out-of-core path
                      (default: 0 = derived from the memory budget)
  --priority          run the anytime best-first engine: candidates are
                      expanded from a bound-ordered bitmap frontier in
                      parallel batches; without budgets the result is
                      exact and bit-identical to the level-wise path
  --budget-ms N       wall-clock deadline for the anytime engine in
                      milliseconds (implies --priority). On an early
                      stop the best top-K so far is returned with a
                      certified optimality gap: no unseen slice can
                      score above kth + gap (default: 0 = unlimited)
  --max-evals N       stop the anytime engine after N candidate
                      evaluations (default: 0 = unlimited)
  --frontier-mb N     cap materialized frontier bitmaps at N MiB;
                      capacity drops are folded into the certified gap
                      (default: 0 = unlimited)
  --batch-size N      frontier nodes expanded per batched round of the
                      anytime engine (default: 64)

GENERATE OPTIONS:
  --dataset NAME      adult | covtype | kdd98 | census | criteo | salaries
  --scale F           row-count scale                (default: 0.05)
  --seed N            generator seed                 (default: 42)
  --output FILE       output path, '-' = stdout      (default: -)

SERVE OPTIONS:
  --addr HOST:PORT    bind address; port 0 picks a free port
                                                     (default: 127.0.0.1:7878)
  --workers N         job-queue worker threads, 0 = one per core
                                                     (default: 0)
  --threads N         shared execution-pool size, 0 = all cores; jobs
                      can still request fewer per query (default: 0)
  --slo-latency-ms N  per-job latency objective in milliseconds; the
                      fraction of finished jobs over the objective is
                      exported as the serve.slo.latency_* gauges
  --slo-queue-depth N queue-depth objective observed at submission;
                      exported as the serve.slo.queue_* gauges
  The daemon keeps one warm session per registered dataset (keyed by
  content hash), so repeat queries skip prepare/encode/pack and error
  swaps re-slice without re-encoding. Endpoints: POST /datasets,
  POST /datasets/ID/errors, POST /jobs, GET /jobs/ID,
  GET /jobs/ID/profile, GET /jobs/ID/trace, POST /jobs/ID/cancel,
  GET /metrics (JSON; ?format=openmetrics for text exposition),
  GET /debug/flightrecorder, GET /manifest, GET /health,
  POST /shutdown.

METRICS-DUMP OPTIONS:
  --addr HOST:PORT    fetch the live snapshot from a running daemon
  --input FILE        convert a JSON metrics artifact instead: either a
                      /metrics response or a --metrics-json manifest
  Exactly one of --addr/--input is required; the OpenMetrics text
  exposition (counters, gauges, histogram buckets and quantiles) is
  printed to stdout.
";

/// Parses the full argument list (without the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, CliError> {
    let mut it = args.into_iter();
    let command = match it.next().as_deref() {
        Some("find") => Command::Find(parse_find(it)?),
        Some("generate") => Command::Generate(parse_generate(it)?),
        Some("serve") => Command::Serve(parse_serve(it)?),
        Some("metrics-dump") => Command::MetricsDump(parse_metrics_dump(it)?),
        Some("help") | Some("--help") | Some("-h") | None => Command::Help,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown command '{other}'\n\n{USAGE}"
            )))
        }
    };
    Ok(Cli { command })
}

fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    it.next()
        .ok_or_else(|| CliError::usage(format!("{flag} requires a value")))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| CliError::usage(format!("{flag}: cannot parse '{value}'")))
}

fn parse_find(mut it: impl Iterator<Item = String>) -> Result<FindArgs, CliError> {
    let mut out = FindArgs::default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--input" => out.input = next_value(&mut it, "--input")?,
            "--label" => out.label = Some(next_value(&mut it, "--label")?),
            "--errors" => out.errors = Some(next_value(&mut it, "--errors")?),
            "--task" => {
                let v = next_value(&mut it, "--task")?;
                out.task = match v.as_str() {
                    "regression" | "reg" => TaskKind::Regression,
                    "classification" | "class" => TaskKind::Classification,
                    other => {
                        return Err(CliError::usage(format!("--task: unknown kind '{other}'")))
                    }
                };
            }
            "--k" => out.k = parse_num(&next_value(&mut it, "--k")?, "--k")?,
            "--sigma" => out.sigma = parse_num(&next_value(&mut it, "--sigma")?, "--sigma")?,
            "--alpha" => out.alpha = parse_num(&next_value(&mut it, "--alpha")?, "--alpha")?,
            "--max-level" => {
                out.max_level = parse_num(&next_value(&mut it, "--max-level")?, "--max-level")?
            }
            "--threads" => {
                out.threads = parse_num(&next_value(&mut it, "--threads")?, "--threads")?
            }
            "--drop" => out.drop.push(next_value(&mut it, "--drop")?),
            "--bins" => out.bins = parse_num(&next_value(&mut it, "--bins")?, "--bins")?,
            "--stats" => out.stats = true,
            "--trace" => out.trace = Some(next_value(&mut it, "--trace")?),
            "--metrics-json" => out.metrics_json = Some(next_value(&mut it, "--metrics-json")?),
            "--nodes" => out.nodes = parse_num(&next_value(&mut it, "--nodes")?, "--nodes")?,
            "--mem-budget-mb" => {
                out.mem_budget_mb =
                    parse_num(&next_value(&mut it, "--mem-budget-mb")?, "--mem-budget-mb")?
            }
            "--chunk-rows" => {
                out.chunk_rows = parse_num(&next_value(&mut it, "--chunk-rows")?, "--chunk-rows")?
            }
            "--priority" => out.priority = true,
            "--budget-ms" => {
                out.budget_ms = parse_num(&next_value(&mut it, "--budget-ms")?, "--budget-ms")?
            }
            "--max-evals" => {
                out.max_evals = parse_num(&next_value(&mut it, "--max-evals")?, "--max-evals")?
            }
            "--frontier-mb" => {
                out.frontier_mb =
                    parse_num(&next_value(&mut it, "--frontier-mb")?, "--frontier-mb")?
            }
            "--batch-size" => {
                let v: usize = parse_num(&next_value(&mut it, "--batch-size")?, "--batch-size")?;
                if v == 0 {
                    return Err(CliError::usage("--batch-size must be >= 1"));
                }
                out.batch_size = v;
            }
            "--format" => {
                let v = next_value(&mut it, "--format")?;
                out.format = match v.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    "csv" => OutputFormat::Csv,
                    other => {
                        return Err(CliError::usage(format!(
                            "--format: unknown format '{other}'"
                        )))
                    }
                };
            }
            "--kernel" => {
                let v = next_value(&mut it, "--kernel")?;
                out.kernel = match v.as_str() {
                    "blocked" => KernelChoice::Blocked,
                    "fused" => KernelChoice::Fused,
                    "bitmap" => KernelChoice::Bitmap,
                    "auto" => KernelChoice::Auto,
                    other => {
                        return Err(CliError::usage(format!(
                            "--kernel: unknown kernel '{other}'"
                        )))
                    }
                };
            }
            "--enum-kernel" => {
                let v = next_value(&mut it, "--enum-kernel")?;
                out.enum_kernel = match v.as_str() {
                    "serial" => EnumKernelChoice::Serial,
                    "sharded" => EnumKernelChoice::Sharded,
                    "auto" => EnumKernelChoice::Auto,
                    other => {
                        return Err(CliError::usage(format!(
                            "--enum-kernel: unknown engine '{other}'"
                        )))
                    }
                };
            }
            "--simd" => {
                let v = next_value(&mut it, "--simd")?;
                out.simd = match v.as_str() {
                    "scalar" => SimdChoice::Scalar,
                    "auto" => SimdChoice::Auto,
                    "avx2" => SimdChoice::Avx2,
                    "neon" => SimdChoice::Neon,
                    other => {
                        return Err(CliError::usage(format!(
                            "--simd: unknown backend '{other}'"
                        )))
                    }
                };
            }
            "--compact" => {
                let v = next_value(&mut it, "--compact")?;
                out.compact = match v.as_str() {
                    "off" => CompactChoice::Off,
                    "on" => CompactChoice::On,
                    "auto" => CompactChoice::Auto,
                    other => {
                        return Err(CliError::usage(format!(
                            "--compact: unknown policy '{other}'"
                        )))
                    }
                };
            }
            other => return Err(CliError::usage(format!("find: unknown flag '{other}'"))),
        }
    }
    if out.input.is_empty() {
        return Err(CliError::usage("find: --input is required"));
    }
    match (&out.label, &out.errors) {
        (None, None) => {
            return Err(CliError::usage(
                "find: one of --label or --errors is required",
            ))
        }
        (Some(_), Some(_)) => {
            return Err(CliError::usage(
                "find: --label and --errors are mutually exclusive",
            ))
        }
        _ => {}
    }
    if out.nodes > 0 && (out.mem_budget_mb > 0 || out.chunk_rows > 0) {
        return Err(CliError::usage(
            "find: --nodes cannot be combined with --mem-budget-mb/--chunk-rows",
        ));
    }
    let priority = out.priority || out.budget_ms > 0;
    if priority && out.nodes > 0 {
        return Err(CliError::usage(
            "find: --priority/--budget-ms cannot be combined with --nodes",
        ));
    }
    if priority && (out.mem_budget_mb > 0 || out.chunk_rows > 0) {
        return Err(CliError::usage(
            "find: --priority/--budget-ms cannot be combined with \
             --mem-budget-mb/--chunk-rows (the frontier needs resident bitmaps)",
        ));
    }
    Ok(out)
}

fn parse_serve(mut it: impl Iterator<Item = String>) -> Result<ServeArgs, CliError> {
    let mut out = ServeArgs::default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = next_value(&mut it, "--addr")?,
            "--workers" => {
                out.workers = parse_num(&next_value(&mut it, "--workers")?, "--workers")?
            }
            "--threads" => {
                out.threads = parse_num(&next_value(&mut it, "--threads")?, "--threads")?
            }
            "--slo-latency-ms" => {
                out.slo_latency_ms = Some(parse_num(
                    &next_value(&mut it, "--slo-latency-ms")?,
                    "--slo-latency-ms",
                )?)
            }
            "--slo-queue-depth" => {
                out.slo_queue_depth = Some(parse_num(
                    &next_value(&mut it, "--slo-queue-depth")?,
                    "--slo-queue-depth",
                )?)
            }
            other => return Err(CliError::usage(format!("serve: unknown flag '{other}'"))),
        }
    }
    Ok(out)
}

fn parse_metrics_dump(mut it: impl Iterator<Item = String>) -> Result<MetricsDumpArgs, CliError> {
    let mut out = MetricsDumpArgs::default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = Some(next_value(&mut it, "--addr")?),
            "--input" => out.input = Some(next_value(&mut it, "--input")?),
            other => {
                return Err(CliError::usage(format!(
                    "metrics-dump: unknown flag '{other}'"
                )))
            }
        }
    }
    match (&out.addr, &out.input) {
        (None, None) => Err(CliError::usage(
            "metrics-dump: one of --addr or --input is required",
        )),
        (Some(_), Some(_)) => Err(CliError::usage(
            "metrics-dump: --addr and --input are mutually exclusive",
        )),
        _ => Ok(out),
    }
}

fn parse_generate(mut it: impl Iterator<Item = String>) -> Result<GenerateArgs, CliError> {
    let mut out = GenerateArgs::default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dataset" => out.dataset = next_value(&mut it, "--dataset")?,
            "--scale" => out.scale = parse_num(&next_value(&mut it, "--scale")?, "--scale")?,
            "--seed" => out.seed = parse_num(&next_value(&mut it, "--seed")?, "--seed")?,
            "--output" => out.output = next_value(&mut it, "--output")?,
            other => return Err(CliError::usage(format!("generate: unknown flag '{other}'"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_find_with_label() {
        let cli = parse(sv(&[
            "find", "--input", "a.csv", "--label", "y", "--k", "7", "--alpha", "0.9", "--sigma",
            "32", "--drop", "id", "--drop", "name", "--format", "json",
        ]))
        .unwrap();
        let Command::Find(f) = cli.command else {
            panic!("expected find")
        };
        assert_eq!(f.input, "a.csv");
        assert_eq!(f.label.as_deref(), Some("y"));
        assert_eq!(f.k, 7);
        assert_eq!(f.alpha, 0.9);
        assert_eq!(f.sigma, 32.0);
        assert_eq!(f.drop, vec!["id", "name"]);
        assert_eq!(f.format, OutputFormat::Json);
    }

    #[test]
    fn parses_find_with_errors_column() {
        let cli = parse(sv(&["find", "--input", "a.csv", "--errors", "e"])).unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert_eq!(f.errors.as_deref(), Some("e"));
        assert!(f.label.is_none());
        assert!(!f.stats);
    }

    #[test]
    fn parses_stats_flag() {
        let cli = parse(sv(&[
            "find", "--input", "a.csv", "--errors", "e", "--stats",
        ]))
        .unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert!(f.stats);
    }

    #[test]
    fn parses_oocore_flags() {
        let cli = parse(sv(&[
            "find",
            "--input",
            "a.csv",
            "--errors",
            "e",
            "--mem-budget-mb",
            "512",
            "--chunk-rows",
            "4096",
        ]))
        .unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert_eq!(f.mem_budget_mb, 512);
        assert_eq!(f.chunk_rows, 4096);

        let defaults = parse(sv(&["find", "--input", "a.csv", "--errors", "e"])).unwrap();
        let Command::Find(f) = defaults.command else {
            panic!()
        };
        assert_eq!(f.mem_budget_mb, 0);
        assert_eq!(f.chunk_rows, 0);

        assert!(parse(sv(&[
            "find",
            "--input",
            "a.csv",
            "--errors",
            "e",
            "--mem-budget-mb",
            "abc",
        ]))
        .is_err());
        assert!(parse(sv(&[
            "find",
            "--input",
            "a.csv",
            "--errors",
            "e",
            "--nodes",
            "2",
            "--chunk-rows",
            "64",
        ]))
        .is_err());
    }

    #[test]
    fn parses_anytime_flags() {
        let cli = parse(sv(&[
            "find",
            "--input",
            "a.csv",
            "--errors",
            "e",
            "--priority",
            "--budget-ms",
            "250",
            "--max-evals",
            "5000",
            "--frontier-mb",
            "64",
            "--batch-size",
            "32",
        ]))
        .unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert!(f.priority);
        assert_eq!(f.budget_ms, 250);
        assert_eq!(f.max_evals, 5000);
        assert_eq!(f.frontier_mb, 64);
        assert_eq!(f.batch_size, 32);

        // Defaults when absent: anytime engine off, unlimited budgets.
        let cli = parse(sv(&["find", "--input", "a.csv", "--errors", "e"])).unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert!(!f.priority);
        assert_eq!(f.budget_ms, 0);
        assert_eq!(f.max_evals, 0);
        assert_eq!(f.frontier_mb, 0);
        assert_eq!(f.batch_size, 64);

        // --budget-ms alone implies priority and still conflicts with
        // the distributed and out-of-core paths; batch 0 is rejected.
        assert!(parse(sv(&[
            "find",
            "--input",
            "a",
            "--errors",
            "e",
            "--budget-ms",
            "10",
            "--nodes",
            "2",
        ]))
        .is_err());
        assert!(parse(sv(&[
            "find",
            "--input",
            "a",
            "--errors",
            "e",
            "--priority",
            "--mem-budget-mb",
            "128",
        ]))
        .is_err());
        assert!(parse(sv(&[
            "find",
            "--input",
            "a",
            "--errors",
            "e",
            "--priority",
            "--chunk-rows",
            "512",
        ]))
        .is_err());
        assert!(parse(sv(&[
            "find",
            "--input",
            "a",
            "--errors",
            "e",
            "--batch-size",
            "0",
        ]))
        .is_err());
    }

    #[test]
    fn parses_kernel_choices() {
        for (v, expect) in [
            ("blocked", KernelChoice::Blocked),
            ("fused", KernelChoice::Fused),
            ("bitmap", KernelChoice::Bitmap),
            ("auto", KernelChoice::Auto),
        ] {
            let cli = parse(sv(&[
                "find", "--input", "a.csv", "--errors", "e", "--kernel", v,
            ]))
            .unwrap();
            let Command::Find(f) = cli.command else {
                panic!()
            };
            assert_eq!(f.kernel, expect);
        }
        // Default when the flag is absent, error on unknown values.
        let cli = parse(sv(&["find", "--input", "a.csv", "--errors", "e"])).unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert_eq!(f.kernel, KernelChoice::Blocked);
        assert!(parse(sv(&[
            "find", "--input", "a", "--errors", "e", "--kernel", "gpu"
        ]))
        .is_err());
    }

    #[test]
    fn parses_simd_choices() {
        for (v, expect) in [
            ("scalar", SimdChoice::Scalar),
            ("auto", SimdChoice::Auto),
            ("avx2", SimdChoice::Avx2),
            ("neon", SimdChoice::Neon),
        ] {
            let cli = parse(sv(&[
                "find", "--input", "a.csv", "--errors", "e", "--simd", v,
            ]))
            .unwrap();
            let Command::Find(f) = cli.command else {
                panic!()
            };
            assert_eq!(f.simd, expect);
        }
        let cli = parse(sv(&["find", "--input", "a.csv", "--errors", "e"])).unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert_eq!(f.simd, SimdChoice::Auto);
        assert!(parse(sv(&[
            "find", "--input", "a", "--errors", "e", "--simd", "sse9"
        ]))
        .is_err());
    }

    #[test]
    fn parses_enum_kernel_choices() {
        for (v, expect) in [
            ("serial", EnumKernelChoice::Serial),
            ("sharded", EnumKernelChoice::Sharded),
            ("auto", EnumKernelChoice::Auto),
        ] {
            let cli = parse(sv(&[
                "find",
                "--input",
                "a.csv",
                "--errors",
                "e",
                "--enum-kernel",
                v,
            ]))
            .unwrap();
            let Command::Find(f) = cli.command else {
                panic!()
            };
            assert_eq!(f.enum_kernel, expect);
        }
        // Default when the flag is absent, error on unknown values.
        let cli = parse(sv(&["find", "--input", "a.csv", "--errors", "e"])).unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert_eq!(f.enum_kernel, EnumKernelChoice::Auto);
        assert!(parse(sv(&[
            "find",
            "--input",
            "a",
            "--errors",
            "e",
            "--enum-kernel",
            "distributed"
        ]))
        .is_err());
    }

    #[test]
    fn parses_compact_choices() {
        for (v, expect) in [
            ("off", CompactChoice::Off),
            ("on", CompactChoice::On),
            ("auto", CompactChoice::Auto),
        ] {
            let cli = parse(sv(&[
                "find",
                "--input",
                "a.csv",
                "--errors",
                "e",
                "--compact",
                v,
            ]))
            .unwrap();
            let Command::Find(f) = cli.command else {
                panic!()
            };
            assert_eq!(f.compact, expect);
        }
        // Default when the flag is absent, error on unknown values.
        let cli = parse(sv(&["find", "--input", "a.csv", "--errors", "e"])).unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert_eq!(f.compact, CompactChoice::Off);
        assert!(parse(sv(&[
            "find",
            "--input",
            "a",
            "--errors",
            "e",
            "--compact",
            "always"
        ]))
        .is_err());
    }

    #[test]
    fn parses_observability_flags() {
        let cli = parse(sv(&[
            "find",
            "--input",
            "a.csv",
            "--errors",
            "e",
            "--trace",
            "out.json",
            "--metrics-json",
            "run.json",
            "--nodes",
            "4",
        ]))
        .unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert_eq!(f.trace.as_deref(), Some("out.json"));
        assert_eq!(f.metrics_json.as_deref(), Some("run.json"));
        assert_eq!(f.nodes, 4);
        // Defaults when absent; --trace/--metrics-json need a value.
        let cli = parse(sv(&["find", "--input", "a.csv", "--errors", "e"])).unwrap();
        let Command::Find(f) = cli.command else {
            panic!()
        };
        assert!(f.trace.is_none());
        assert!(f.metrics_json.is_none());
        assert_eq!(f.nodes, 0);
        assert!(parse(sv(&["find", "--input", "a", "--errors", "e", "--trace"])).is_err());
        assert!(parse(sv(&[
            "find", "--input", "a", "--errors", "e", "--nodes", "many"
        ]))
        .is_err());
    }

    #[test]
    fn find_requires_input_and_signal() {
        assert!(parse(sv(&["find", "--label", "y"])).is_err());
        assert!(parse(sv(&["find", "--input", "a.csv"])).is_err());
        assert!(parse(sv(&[
            "find", "--input", "a.csv", "--label", "y", "--errors", "e"
        ]))
        .is_err());
    }

    #[test]
    fn task_kinds() {
        for (v, expect) in [
            ("regression", TaskKind::Regression),
            ("class", TaskKind::Classification),
        ] {
            let cli = parse(sv(&[
                "find", "--input", "a.csv", "--label", "y", "--task", v,
            ]))
            .unwrap();
            let Command::Find(f) = cli.command else {
                panic!()
            };
            assert_eq!(f.task, expect);
        }
        assert!(parse(sv(&[
            "find", "--input", "a", "--label", "y", "--task", "nope"
        ]))
        .is_err());
    }

    #[test]
    fn parses_generate() {
        let cli = parse(sv(&[
            "generate",
            "--dataset",
            "census",
            "--scale",
            "0.2",
            "--seed",
            "7",
            "--output",
            "x.csv",
        ]))
        .unwrap();
        let Command::Generate(g) = cli.command else {
            panic!()
        };
        assert_eq!(g.dataset, "census");
        assert_eq!(g.scale, 0.2);
        assert_eq!(g.seed, 7);
        assert_eq!(g.output, "x.csv");
    }

    #[test]
    fn parses_serve() {
        let cli = parse(sv(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "3",
            "--threads",
            "2",
        ]))
        .unwrap();
        let Command::Serve(s) = cli.command else {
            panic!("expected serve")
        };
        assert_eq!(s.addr, "0.0.0.0:9000");
        assert_eq!(s.workers, 3);
        assert_eq!(s.threads, 2);
        // Defaults when flags are absent; unknown flags rejected.
        let cli = parse(sv(&["serve"])).unwrap();
        assert_eq!(cli.command, Command::Serve(ServeArgs::default()));
        assert!(parse(sv(&["serve", "--port", "80"])).is_err());
        assert!(parse(sv(&["serve", "--workers", "lots"])).is_err());
    }

    #[test]
    fn parses_serve_slo_flags() {
        let cli = parse(sv(&[
            "serve",
            "--slo-latency-ms",
            "250",
            "--slo-queue-depth",
            "8",
        ]))
        .unwrap();
        let Command::Serve(s) = cli.command else {
            panic!("expected serve")
        };
        assert_eq!(s.slo_latency_ms, Some(250));
        assert_eq!(s.slo_queue_depth, Some(8));
        // Absent flags leave the objectives unset (SLO gauges off).
        let cli = parse(sv(&["serve"])).unwrap();
        let Command::Serve(s) = cli.command else {
            panic!()
        };
        assert_eq!(s.slo_latency_ms, None);
        assert_eq!(s.slo_queue_depth, None);
        assert!(parse(sv(&["serve", "--slo-latency-ms", "fast"])).is_err());
    }

    #[test]
    fn parses_metrics_dump() {
        let cli = parse(sv(&["metrics-dump", "--addr", "127.0.0.1:7878"])).unwrap();
        let Command::MetricsDump(d) = cli.command else {
            panic!("expected metrics-dump")
        };
        assert_eq!(d.addr.as_deref(), Some("127.0.0.1:7878"));
        assert!(d.input.is_none());
        let cli = parse(sv(&["metrics-dump", "--input", "run.json"])).unwrap();
        let Command::MetricsDump(d) = cli.command else {
            panic!()
        };
        assert_eq!(d.input.as_deref(), Some("run.json"));
        // Exactly one source: neither and both are usage errors.
        assert!(parse(sv(&["metrics-dump"])).is_err());
        assert!(parse(sv(&["metrics-dump", "--addr", "a:1", "--input", "f.json"])).is_err());
        assert!(parse(sv(&["metrics-dump", "--format", "json"])).is_err());
    }

    #[test]
    fn help_and_unknowns() {
        assert_eq!(parse(sv(&["help"])).unwrap().command, Command::Help);
        assert_eq!(parse(sv(&["--help"])).unwrap().command, Command::Help);
        assert_eq!(parse(Vec::new()).unwrap().command, Command::Help);
        let err = parse(sv(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown command"));
    }

    #[test]
    fn missing_values_and_bad_numbers() {
        assert!(parse(sv(&["find", "--input"])).is_err());
        assert!(parse(sv(&[
            "find", "--input", "a", "--label", "y", "--k", "NaNsense"
        ]))
        .is_err());
    }
}
