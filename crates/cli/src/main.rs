//! The `sliceline` binary: a thin shim over [`sliceline_cli`].

use sliceline_cli::{args, run_find, run_generate, run_metrics_dump, run_serve, Command};

fn main() {
    let cli = match args::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    };
    let outcome = match &cli.command {
        Command::Help => {
            println!("{}", args::USAGE);
            return;
        }
        Command::Find(find_args) => run_find(find_args).map(|out| (out, None)),
        Command::Generate(gen_args) => {
            run_generate(gen_args).map(|out| (out, Some(gen_args.output.clone())))
        }
        Command::MetricsDump(dump_args) => run_metrics_dump(dump_args).map(|out| (out, None)),
        Command::Serve(serve_args) => {
            if let Err(e) = run_serve(serve_args) {
                eprintln!("{}", e.message);
                std::process::exit(e.code);
            }
            return;
        }
    };
    match outcome {
        Ok((out, target)) => match target.as_deref() {
            None | Some("-") => print!("{out}"),
            Some(path) => {
                if let Err(e) = std::fs::write(path, out) {
                    eprintln!("writing {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {path}");
            }
        },
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    }
}
