//! Sharded, thread-local delta collector for mergeable per-slot records.
//!
//! This is the replacement for the execution layer's old
//! `Mutex<Vec<LevelProfile>>` telemetry sink: instead of every worker
//! thread serializing on one mutex to bump counters, each thread
//! accumulates into a private delta per slot and merges it into the
//! shared base either when the thread exits (TLS destructor) or when the
//! owner calls [`Collector::snapshot`]. The record path
//! ([`Collector::with_current`]) takes no locks at all.
//!
//! "Slot" here means one lattice level in practice, but the collector is
//! generic over any `T:`[`MergeDelta`] so tests can exercise it in
//! isolation and future per-partition records can reuse it.

use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// A record that can absorb another record of the same type. Implementors
/// define the merge per field: counters add, durations add, `Option`
/// annotations take the latest non-`None`, ratios take the max — whatever
/// makes a thread-local delta fold correctly into the shared base.
pub trait MergeDelta: Default + Clone + Send + 'static {
    fn merge(&mut self, other: &Self);
}

struct CollectorShared<T> {
    /// Base slots; deltas fold in here under the mutex, but the mutex is
    /// only taken on flush (thread exit / snapshot / new slot) — never on
    /// the per-record path.
    slots: Mutex<Vec<T>>,
    /// Index of the current slot **plus one**; 0 means "no slot open yet"
    /// (records before the first [`Collector::push_slot`] are dropped).
    current: AtomicUsize,
    generation: AtomicU64,
}

/// Type-erased hook so one thread-local registry can hold local state for
/// collectors of different `T`.
trait LocalEntry: Any {
    fn flush(&mut self);
    fn dead(&self) -> bool;
    fn shared_ptr(&self) -> *const ();
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

struct LocalState<T: MergeDelta> {
    shared: Weak<CollectorShared<T>>,
    generation: u64,
    /// Delta per slot index; `None` where this thread recorded nothing.
    deltas: Vec<Option<T>>,
}

impl<T: MergeDelta> LocalEntry for LocalState<T> {
    fn flush(&mut self) {
        let Some(shared) = self.shared.upgrade() else {
            self.deltas.clear();
            return;
        };
        if shared.generation.load(Ordering::Acquire) != self.generation {
            self.deltas.clear();
            return;
        }
        let mut slots = shared.slots.lock().unwrap();
        for (idx, delta) in self.deltas.drain(..).enumerate() {
            if let (Some(delta), Some(slot)) = (delta, slots.get_mut(idx)) {
                slot.merge(&delta);
            }
        }
    }

    fn dead(&self) -> bool {
        self.shared.strong_count() == 0
    }

    fn shared_ptr(&self) -> *const () {
        self.shared.as_ptr() as *const ()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct LocalRegistry {
    entries: Vec<Box<dyn LocalEntry>>,
}

impl Drop for LocalRegistry {
    fn drop(&mut self) {
        for entry in &mut self.entries {
            entry.flush();
        }
    }
}

thread_local! {
    static REGISTRY: RefCell<LocalRegistry> =
        const { RefCell::new(LocalRegistry { entries: Vec::new() }) };
}

/// Shared handle to a slot collector. Cheap to clone; all clones feed the
/// same base slots.
pub struct Collector<T: MergeDelta> {
    shared: Arc<CollectorShared<T>>,
}

impl<T: MergeDelta> Clone for Collector<T> {
    fn clone(&self) -> Self {
        Collector {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: MergeDelta> Default for Collector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: MergeDelta> std::fmt::Debug for Collector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("slots", &self.slot_count())
            .finish()
    }
}

impl<T: MergeDelta> Collector<T> {
    pub fn new() -> Self {
        Collector {
            shared: Arc::new(CollectorShared {
                slots: Mutex::new(Vec::new()),
                current: AtomicUsize::new(0),
                generation: AtomicU64::new(0),
            }),
        }
    }

    /// Opens a new slot initialized to `init` and makes it current.
    /// Returns its index.
    pub fn push_slot(&self, init: T) -> usize {
        let mut slots = self.shared.slots.lock().unwrap();
        slots.push(init);
        let idx = slots.len() - 1;
        self.shared.current.store(idx + 1, Ordering::Release);
        idx
    }

    /// Number of slots opened since the last [`Collector::reset`].
    pub fn slot_count(&self) -> usize {
        self.shared.slots.lock().unwrap().len()
    }

    /// Applies `f` to the calling thread's private delta for the current
    /// slot — no locks. A no-op when no slot is open.
    pub fn with_current(&self, f: impl FnOnce(&mut T)) {
        let current = self.shared.current.load(Ordering::Acquire);
        if current == 0 {
            return;
        }
        self.with_slot(current - 1, f);
    }

    /// Like [`Collector::with_current`] but for an explicit slot index
    /// (used when a worker outlives a slot change).
    pub fn with_slot(&self, idx: usize, f: impl FnOnce(&mut T)) {
        let generation = self.shared.generation.load(Ordering::Acquire);
        let mut f = Some(f);
        let f_slot = &mut f;
        let applied = REGISTRY.try_with(|registry| {
            let mut registry = registry.borrow_mut();
            let ptr = Arc::as_ptr(&self.shared) as *const ();
            let pos = match registry.entries.iter().position(|e| e.shared_ptr() == ptr) {
                Some(p) => p,
                None => {
                    registry.entries.retain(|e| !e.dead());
                    registry.entries.push(Box::new(LocalState::<T> {
                        shared: Arc::downgrade(&self.shared),
                        generation,
                        deltas: Vec::new(),
                    }));
                    registry.entries.len() - 1
                }
            };
            let state = registry.entries[pos]
                .as_any_mut()
                .downcast_mut::<LocalState<T>>()
                .expect("local entry type matches collector type");
            if state.generation != generation {
                state.deltas.clear();
                state.generation = generation;
            }
            if state.deltas.len() <= idx {
                state.deltas.resize(idx + 1, None);
            }
            let f = f_slot.take().expect("delta fn consumed once");
            f(state.deltas[idx].get_or_insert_with(T::default));
        });
        if applied.is_err() {
            // Thread teardown: merge a one-shot delta straight into the base.
            let Some(f) = f.take() else { return };
            let mut delta = T::default();
            f(&mut delta);
            if self.shared.generation.load(Ordering::Acquire) == generation {
                if let Some(slot) = self.shared.slots.lock().unwrap().get_mut(idx) {
                    slot.merge(&delta);
                }
            }
        }
    }

    /// Flushes the calling thread's deltas and returns a merged clone of
    /// all slots. Worker-thread deltas are included provided those
    /// threads have exited (see the crate-level snapshot contract).
    pub fn snapshot(&self) -> Vec<T> {
        self.flush_current_thread();
        self.shared.slots.lock().unwrap().clone()
    }

    /// Clears all slots and invalidates outstanding thread-local deltas
    /// (lazily, via a generation bump).
    pub fn reset(&self) {
        self.shared.generation.fetch_add(1, Ordering::AcqRel);
        self.shared.current.store(0, Ordering::Release);
        self.shared.slots.lock().unwrap().clear();
        self.flush_current_thread();
    }

    fn flush_current_thread(&self) {
        let ptr = Arc::as_ptr(&self.shared) as *const ();
        let _ = REGISTRY.try_with(|registry| {
            let mut registry = registry.borrow_mut();
            for entry in &mut registry.entries {
                if entry.shared_ptr() == ptr {
                    entry.flush();
                }
            }
            registry.entries.retain(|e| !e.dead());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default, Clone, PartialEq)]
    struct Counts {
        level: usize,
        hits: u64,
        name: Option<&'static str>,
    }

    impl MergeDelta for Counts {
        fn merge(&mut self, other: &Self) {
            // `level` is identity, set at push_slot; deltas leave it 0.
            self.hits += other.hits;
            if other.name.is_some() {
                self.name = other.name;
            }
        }
    }

    fn slot(level: usize) -> Counts {
        Counts {
            level,
            ..Default::default()
        }
    }

    #[test]
    fn single_thread_accumulates() {
        let c = Collector::<Counts>::new();
        c.push_slot(slot(1));
        c.with_current(|d| d.hits += 3);
        c.with_current(|d| {
            d.hits += 4;
            d.name = Some("k");
        });
        let snap = c.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].level, 1);
        assert_eq!(snap[0].hits, 7);
        assert_eq!(snap[0].name, Some("k"));
    }

    #[test]
    fn records_before_first_slot_are_dropped() {
        let c = Collector::<Counts>::new();
        c.with_current(|d| d.hits += 99);
        c.push_slot(slot(1));
        assert_eq!(c.snapshot()[0].hits, 0);
    }

    #[test]
    fn worker_threads_merge_on_exit() {
        let c = Collector::<Counts>::new();
        c.push_slot(slot(1));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c.with_current(|d| d.hits += 1);
                    }
                });
            }
        });
        c.with_current(|d| d.hits += 1);
        assert_eq!(c.snapshot()[0].hits, 401);
    }

    #[test]
    fn multiple_slots_keep_separate_counts() {
        let c = Collector::<Counts>::new();
        c.push_slot(slot(1));
        c.with_current(|d| d.hits += 1);
        c.push_slot(slot(2));
        c.with_current(|d| d.hits += 2);
        let snap = c.snapshot();
        assert_eq!(snap[0], slot_with_hits(1, 1));
        assert_eq!(snap[1], slot_with_hits(2, 2));
    }

    fn slot_with_hits(level: usize, hits: u64) -> Counts {
        Counts {
            level,
            hits,
            name: None,
        }
    }

    #[test]
    fn reset_discards_shared_and_local_state() {
        let c = Collector::<Counts>::new();
        c.push_slot(slot(1));
        c.with_current(|d| d.hits += 5);
        c.reset();
        assert!(c.snapshot().is_empty());
        c.push_slot(slot(1));
        c.with_current(|d| d.hits += 2);
        assert_eq!(c.snapshot()[0].hits, 2);
    }

    #[test]
    fn snapshot_is_idempotent_after_flush() {
        let c = Collector::<Counts>::new();
        c.push_slot(slot(1));
        c.with_current(|d| d.hits += 5);
        assert_eq!(c.snapshot()[0].hits, 5);
        assert_eq!(c.snapshot()[0].hits, 5);
    }

    #[test]
    fn two_collectors_do_not_cross_talk() {
        let a = Collector::<Counts>::new();
        let b = Collector::<Counts>::new();
        a.push_slot(slot(1));
        b.push_slot(slot(9));
        a.with_current(|d| d.hits += 1);
        b.with_current(|d| d.hits += 10);
        assert_eq!(a.snapshot()[0].hits, 1);
        assert_eq!(b.snapshot()[0].hits, 10);
    }

    #[test]
    fn explicit_slot_survives_slot_change() {
        let c = Collector::<Counts>::new();
        let first = c.push_slot(slot(1));
        c.push_slot(slot(2));
        c.with_slot(first, |d| d.hits += 7);
        let snap = c.snapshot();
        assert_eq!(snap[0].hits, 7);
        assert_eq!(snap[1].hits, 0);
    }
}
