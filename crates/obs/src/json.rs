//! Minimal JSON: an escape helper for the hand-rolled writers used across
//! the workspace, and a small recursive-descent parser so schema tests
//! and the `trace_check` CI gate can validate exported documents without
//! pulling in serde.
//!
//! The parser accepts standard JSON (RFC 8259) with two pragmatic limits:
//! numbers are parsed as `f64`, and object key order is preserved (so
//! golden tests can assert on ordering).

/// Escapes a string for embedding inside a JSON string literal (without
/// the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Objects keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Errors carry a byte offset and a
/// short description.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid — find the char boundary and copy it.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": "c"}], "d": {"e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap(),
            &Json::Str("c".into())
        );
        assert_eq!(v.get("d").unwrap().get("e").unwrap(), &Json::Null);
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "z");
        assert_eq!(obj[1].0, "a");
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode→é";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
