//! Lightweight, zero-dependency observability layer for the SliceLine
//! reproduction: RAII spans, sharded metrics, and machine-readable exporters.
//!
//! The crate sits *below* `sliceline-linalg` in the dependency graph so the
//! execution layer ([`ExecContext`]) can delegate its telemetry here without
//! circular imports. Everything is built on `std` only — no serde, no
//! tracing-rs — because instrumentation must never add build weight or
//! runtime dependencies to the hot path.
//!
//! Three pillars:
//!
//! * [`tracer`] — [`Tracer`] hands out RAII [`SpanGuard`]s stamped with
//!   monotonic timestamps and per-thread ids. Events land in thread-local
//!   buffers (no locks on the record path) that drain into a shared sink
//!   when full, on thread exit, or on [`Tracer::drain`].
//! * [`collect`] — a generic sharded [`Collector`] for mergeable per-level
//!   deltas. This is what replaced the old `Mutex<Vec<LevelProfile>>`
//!   telemetry sink: worker threads mutate thread-local deltas and merge on
//!   flush instead of serializing on a mutex.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters (sharded
//!   atomics), f64 gauges, and log2-bucketed histograms.
//!
//! Exporters ([`export`]) render the collected data as Chrome trace-event
//! JSON (loadable in Perfetto / `chrome://tracing`) and as a run
//! [`Manifest`] for bench trajectory tracking; [`openmetrics`] renders a
//! registry snapshot as an OpenMetrics/Prometheus text exposition (and
//! lints one). [`flight`] keeps a bounded ring of per-job
//! [`FlightRecord`](flight::FlightRecord)s so the serving daemon can
//! explain a slow or failed job after the fact. [`json`] is a minimal
//! JSON parser used by schema tests and the `trace_check` CI gate.
//!
//! # Snapshot contract
//!
//! The record path is thread-local and lock-free; consistency comes from a
//! join-before-snapshot contract: worker threads flush their buffers from a
//! TLS destructor when they exit, and every parallel section in this
//! workspace uses scoped threads that are joined before anyone snapshots.
//! [`Tracer::drain`] / [`Collector::snapshot`] additionally flush the
//! calling thread, so single-threaded use needs no ceremony.
//!
//! [`ExecContext`]: https://docs.rs/sliceline-linalg
//! [`Tracer`]: tracer::Tracer
//! [`SpanGuard`]: tracer::SpanGuard
//! [`Collector`]: collect::Collector
//! [`MetricsRegistry`]: metrics::MetricsRegistry
//! [`Manifest`]: export::Manifest

pub mod collect;
pub mod export;
pub mod flight;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod openmetrics;
pub mod tracer;

pub use collect::{Collector, MergeDelta};
pub use export::{chrome_trace, Manifest};
pub use flight::{FlightRecord, FlightRecorder};
pub use mem::{current_rss_bytes, sample_rss};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry};
pub use tracer::{ArgValue, EventKind, SpanGuard, TraceEvent, Tracer};

use std::time::Duration;

/// The one place durations become exported floats: whole seconds, full
/// `f64` precision. Every JSON schema in the workspace (`--stats-json`,
/// trace args, manifest metrics) uses this so units can never drift
/// between exporters again.
#[inline]
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Schema version stamped into the run manifest and trace metadata.
/// Bump when a required key changes meaning or disappears.
pub const SCHEMA_VERSION: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_is_float_seconds() {
        assert_eq!(secs(Duration::from_millis(1500)), 1.5);
        assert_eq!(secs(Duration::ZERO), 0.0);
    }
}
