//! Process-memory observation: peak-RSS sampling for out-of-core runs.
//!
//! Bounded-memory execution is only credible with evidence: the chunked
//! driver claims to stay under `--mem-budget-mb`, and these gauges are
//! the receipt. On Linux the resident set size is read from
//! `/proc/self/statm` (field 2, in pages); elsewhere sampling is a
//! no-op and the gauges simply stay at zero.
//!
//! Two gauges are maintained in a [`MetricsRegistry`]:
//!
//! * `obs.mem.rss_bytes` — the RSS at the most recent sample,
//! * `obs.mem.rss_peak_bytes` — the maximum RSS seen across samples
//!   (monotone via [`Gauge::max`]).
//!
//! Sampling is cheap (one small `/proc` read) but not free, so callers
//! sample at phase boundaries — per chunk, per level, per run — rather
//! than per operation.

use crate::metrics::MetricsRegistry;

/// Gauge name for the most recent RSS sample, in bytes.
pub const RSS_GAUGE: &str = "obs.mem.rss_bytes";
/// Gauge name for the peak RSS across samples, in bytes.
pub const RSS_PEAK_GAUGE: &str = "obs.mem.rss_peak_bytes";

/// Current resident set size in bytes, or `None` where unsupported or
/// unreadable.
#[cfg(target_os = "linux")]
pub fn current_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    // statm: size resident shared text lib data dt (all in pages).
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * page_size())
}

/// Current resident set size in bytes, or `None` where unsupported or
/// unreadable.
#[cfg(not(target_os = "linux"))]
pub fn current_rss_bytes() -> Option<u64> {
    None
}

#[cfg(target_os = "linux")]
fn page_size() -> u64 {
    // /proc/self/statm counts pages; the kernel page size is almost
    // universally 4 KiB on the platforms we run on, and auxv is not
    // worth a dependency for a diagnostic gauge.
    4096
}

/// Samples the current RSS into `metrics` (updating both the current and
/// peak gauges) and returns the sampled value. No-op returning `None`
/// where RSS is unreadable.
pub fn sample_rss(metrics: &MetricsRegistry) -> Option<u64> {
    let rss = current_rss_bytes()?;
    metrics.gauge(RSS_GAUGE).set(rss as f64);
    metrics.gauge(RSS_PEAK_GAUGE).max(rss as f64);
    Some(rss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_is_positive_and_peak_is_monotone() {
        let metrics = MetricsRegistry::new();
        let first = sample_rss(&metrics).expect("statm readable on linux");
        assert!(first > 0);
        assert!(metrics.gauge(RSS_GAUGE).value() > 0.0);
        let peak_after_first = metrics.gauge(RSS_PEAK_GAUGE).value();
        assert!(peak_after_first >= first as f64);
        // A large transient allocation must raise the peak gauge even if
        // RSS later drops back.
        let buf = vec![1u8; 64 << 20];
        let with_alloc = sample_rss(&metrics).unwrap();
        assert!(with_alloc as f64 >= peak_after_first);
        drop(buf);
        sample_rss(&metrics);
        assert!(metrics.gauge(RSS_PEAK_GAUGE).value() >= with_alloc as f64);
    }

    #[test]
    fn sample_is_safe_everywhere() {
        // On non-Linux this exercises the no-op path; on Linux it just
        // samples twice.
        let metrics = MetricsRegistry::new();
        let _ = sample_rss(&metrics);
        let _ = sample_rss(&metrics);
    }
}
