//! OpenMetrics/Prometheus text exposition for the metrics registry.
//!
//! The registry's dot-separated names (`serve.jobs.run_micros`) map to
//! underscore families (`serve_jobs_run_micros`). Per-tenant labels ride
//! inside the registry name after a `#` separator as comma-joined
//! `key=value` pairs (`serve.jobs.run_micros#dataset=ab12cd`): the
//! registry itself stays a flat string-keyed map (no allocation or label
//! hashing on the hot path) and the renderer splits the suffix into
//! proper `{key="value"}` label sets at exposition time. Counters gain
//! the `_total` suffix, histograms expand into cumulative
//! `_bucket{le="..."}`/`_sum`/`_count` series plus `_p50`/`_p95`/`_p99`
//! gauge families interpolated from the log2 buckets, and the exposition
//! ends with the `# EOF` terminator the OpenMetrics spec requires.
//!
//! [`lint`] validates an exposition against the subset of the spec we
//! emit (HELP/TYPE preceding samples, label quoting, monotone cumulative
//! buckets terminated by `+Inf` that agrees with `_count`); it backs the
//! `trace_check --openmetrics` CI gate and the serve integration test.

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, MetricValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Content-Type for the OpenMetrics exposition format.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// One family: a metric kind plus its series keyed by rendered label set.
struct Family {
    kind: &'static str,
    series: Vec<(String, MetricValue)>,
}

/// Splits a registry name into `(family, label_set)`; the label set is
/// the rendered `{k="v",...}` block or an empty string.
fn split_labels(name: &str) -> (String, String) {
    match name.split_once('#') {
        None => (sanitize(name), String::new()),
        Some((base, labels)) => {
            let rendered: Vec<String> = labels
                .split(',')
                .filter(|p| !p.is_empty())
                .map(|pair| {
                    let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                    format!("{}=\"{}\"", sanitize(k), escape_label(v))
                })
                .collect();
            if rendered.is_empty() {
                (sanitize(base), String::new())
            } else {
                (sanitize(base), format!("{{{}}}", rendered.join(",")))
            }
        }
    }
}

/// Maps a dotted registry name to a valid OpenMetrics name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the spec: backslash, double quote, newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a registry snapshot (from
/// [`MetricsRegistry::snapshot`](crate::metrics::MetricsRegistry::snapshot))
/// as an OpenMetrics text exposition.
pub fn render(snapshot: &[(String, MetricValue)]) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (name, value) in snapshot {
        let (base, labels) = split_labels(name);
        // Quantiles become sibling gauge families so scrapers that only
        // understand flat gauges still see the latency percentiles.
        if let MetricValue::Histogram(h) = value {
            for (suffix, q) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99)] {
                families
                    .entry(format!("{base}_{suffix}"))
                    .or_insert_with(|| Family {
                        kind: "gauge",
                        series: Vec::new(),
                    })
                    .series
                    .push((labels.clone(), MetricValue::Gauge(q)));
            }
        }
        let kind = match value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        let fam = families.entry(base).or_insert_with(|| Family {
            kind,
            series: Vec::new(),
        });
        if fam.kind != kind {
            // A labelled variant whose kind disagrees with an existing
            // family would produce an invalid exposition; skip it.
            continue;
        }
        fam.series.push((labels, value.clone()));
    }

    let mut out = String::new();
    for (name, fam) in &families {
        let _ = writeln!(out, "# HELP {name} sliceline metric {name}");
        let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
        for (labels, value) in &fam.series {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name}_total{labels} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}{labels} {}", fmt_f64(*v));
                }
                MetricValue::Histogram(h) => render_histogram(&mut out, name, labels, h),
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    // `labels` is either empty or "{k=\"v\",...}"; the `le` label must
    // be merged inside the braces.
    let le_labels = |le: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
        }
    };
    let mut cum = 0u64;
    for (upper, count) in &h.buckets {
        cum += count;
        let _ = writeln!(out, "{name}_bucket{} {cum}", le_labels(&upper.to_string()));
    }
    let _ = writeln!(out, "{name}_bucket{} {}", le_labels("+Inf"), h.count);
    let _ = writeln!(out, "{name}_sum{labels} {}", h.sum);
    let _ = writeln!(out, "{name}_count{labels} {}", h.count);
}

/// Rebuilds a snapshot from the registry's JSON document (the
/// `/metrics` JSON response or a `--metrics-json` manifest `metrics`
/// object) so `sliceline metrics-dump` can convert offline artifacts.
pub fn snapshot_from_json(doc: &Json) -> Result<Vec<(String, MetricValue)>, String> {
    let obj = doc.as_obj().ok_or("metrics document is not an object")?;
    let mut out = Vec::with_capacity(obj.len());
    for (name, m) in obj {
        let kind = m
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("metric {name:?} missing \"type\""))?;
        let value = match kind {
            "counter" => MetricValue::Counter(
                m.get("value")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("counter {name:?} missing value"))?,
            ),
            "gauge" => MetricValue::Gauge(
                m.get("value")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("gauge {name:?} missing value"))?,
            ),
            "histogram" => {
                let buckets = m
                    .get("buckets")
                    .and_then(|b| b.as_arr())
                    .ok_or_else(|| format!("histogram {name:?} missing buckets"))?
                    .iter()
                    .map(|b| {
                        let le = b.get("le").and_then(|v| v.as_u64());
                        let count = b.get("count").and_then(|v| v.as_u64());
                        match (le, count) {
                            (Some(le), Some(count)) => Ok((le, count)),
                            _ => Err(format!("histogram {name:?} has malformed bucket")),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let q = |key: &str| m.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
                MetricValue::Histogram(HistogramSnapshot {
                    count: m.get("count").and_then(|v| v.as_u64()).unwrap_or(0),
                    sum: m.get("sum").and_then(|v| v.as_u64()).unwrap_or(0),
                    buckets,
                    p50: q("p50"),
                    p95: q("p95"),
                    p99: q("p99"),
                })
            }
            other => return Err(format!("metric {name:?} has unknown type {other:?}")),
        };
        out.push((name.clone(), value));
    }
    Ok(out)
}

/// Validates an exposition against the subset of OpenMetrics we emit.
/// Returns the list of violations (empty = clean).
pub fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeMap<String, bool> = BTreeMap::new();
    // (family + non-le labels) -> (cumulative counts in order, saw +Inf,
    // +Inf count)
    let mut buckets: BTreeMap<String, (Vec<u64>, bool, u64)> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut saw_eof = false;
    let mut last_nonempty = "";

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        last_nonempty = line;
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if name.is_empty() {
                errors.push(format!("line {n}: HELP without a metric name"));
            }
            helped.insert(name.to_string(), true);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "info") {
                errors.push(format!("line {n}: TYPE {name} has unknown kind {kind:?}"));
            }
            if !helped.contains_key(name) {
                errors.push(format!("line {n}: TYPE {name} not preceded by HELP"));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // comment
        }
        // Sample line: name[{labels}] value
        let (name_labels, value_str) = match line.rsplit_once(' ') {
            Some(x) => x,
            None => {
                errors.push(format!("line {n}: sample has no value: {line:?}"));
                continue;
            }
        };
        if value_str.parse::<f64>().is_err() {
            errors.push(format!("line {n}: non-numeric value {value_str:?}"));
            continue;
        }
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels, None),
            Some((name, rest)) => match rest.strip_suffix('}') {
                Some(inner) => (name, Some(inner)),
                None => {
                    errors.push(format!("line {n}: unterminated label set: {line:?}"));
                    continue;
                }
            },
        };
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            errors.push(format!("line {n}: invalid metric name {name:?}"));
        }
        let mut le: Option<String> = None;
        let mut other_labels = Vec::new();
        if let Some(inner) = labels {
            for err in check_labels(inner, &mut le, &mut other_labels) {
                errors.push(format!("line {n}: {err}"));
            }
        }
        // Resolve the family this sample belongs to.
        let family = resolve_family(name, &types);
        match family {
            None => errors.push(format!(
                "line {n}: sample {name} has no preceding TYPE for its family"
            )),
            Some((fam, kind)) => {
                if kind == "counter" && !name.ends_with("_total") {
                    errors.push(format!(
                        "line {n}: counter sample {name} must end with _total"
                    ));
                }
                if kind == "histogram" && name == format!("{fam}_bucket") {
                    let series_key = format!("{fam}|{}", other_labels.join(","));
                    let entry = buckets.entry(series_key).or_insert((Vec::new(), false, 0));
                    let count = value_str.parse::<f64>().unwrap_or(0.0) as u64;
                    match le.as_deref() {
                        None => {
                            errors.push(format!("line {n}: {name} bucket sample missing le label"))
                        }
                        Some("+Inf") => {
                            entry.1 = true;
                            entry.2 = count;
                            entry.0.push(count);
                        }
                        Some(_) => {
                            if entry.1 {
                                errors
                                    .push(format!("line {n}: bucket after +Inf in {name} series"));
                            }
                            entry.0.push(count);
                        }
                    }
                }
                if kind == "histogram" && name == format!("{fam}_count") {
                    let series_key = format!("{fam}|{}", other_labels.join(","));
                    counts.insert(series_key, value_str.parse::<f64>().unwrap_or(0.0) as u64);
                }
            }
        }
    }

    for (key, (series, saw_inf, inf_count)) in &buckets {
        if !saw_inf {
            errors.push(format!("bucket series {key} missing le=\"+Inf\""));
        }
        if series.windows(2).any(|w| w[0] > w[1]) {
            errors.push(format!("bucket series {key} is not monotone: {series:?}"));
        }
        if let Some(total) = counts.get(key) {
            if saw_inf == &true && inf_count != total {
                errors.push(format!(
                    "bucket series {key}: +Inf count {inf_count} != _count {total}"
                ));
            }
        } else {
            errors.push(format!("bucket series {key} has no matching _count sample"));
        }
    }
    if !saw_eof {
        errors.push("exposition missing # EOF terminator".to_string());
    } else if last_nonempty != "# EOF" {
        errors.push("# EOF is not the final line".to_string());
    }
    errors
}

/// Checks one label block body (`k="v",k2="v2"`); appends the `le`
/// value and the remaining labels for series keying.
fn check_labels(inner: &str, le: &mut Option<String>, rest: &mut Vec<String>) -> Vec<String> {
    let mut errors = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            errors.push(format!("malformed label pair near {key:?}"));
            return errors;
        }
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            errors.push(format!("invalid label name {key:?}"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => {
                        errors.push(format!("bad escape {other:?} in label {key:?}"));
                    }
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            errors.push(format!("unterminated label value for {key:?}"));
            return errors;
        }
        if key == "le" {
            *le = Some(value);
        } else {
            rest.push(format!("{key}={value}"));
        }
        match chars.next() {
            None => break,
            Some(',') => continue,
            Some(c) => {
                errors.push(format!("unexpected {c:?} after label {key:?}"));
                return errors;
            }
        }
    }
    errors
}

/// Maps a sample name to `(family, kind)` using the declared TYPE map:
/// exact match, `_total` for counters, `_bucket`/`_sum`/`_count` for
/// histograms.
fn resolve_family<'a>(
    name: &str,
    types: &'a BTreeMap<String, String>,
) -> Option<(&'a str, &'a str)> {
    if let Some((k, v)) = types.get_key_value(name) {
        // Exact family-name match; for counters the caller still flags
        // the missing `_total` suffix.
        return Some((k.as_str(), v.as_str()));
    }
    for suffix in ["_total", "_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some((k, v)) = types.get_key_value(base) {
                let ok = match suffix {
                    "_total" => v == "counter",
                    _ => v == "histogram",
                };
                if ok {
                    return Some((k.as_str(), v.as_str()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("serve.jobs.completed").add(3);
        reg.counter("serve.jobs.completed#dataset=ab12").add(2);
        reg.gauge("serve.queue.depth").set(1.0);
        let h = reg.histogram("serve.jobs.run_micros#dataset=ab12");
        for v in [120, 480, 900, 15_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn render_passes_own_lint() {
        let text = render(&sample_registry().snapshot());
        let errors = lint(&text);
        assert!(errors.is_empty(), "lint errors: {errors:?}\n{text}");
        assert!(text.contains("serve_jobs_completed_total 3"));
        assert!(text.contains("serve_jobs_completed_total{dataset=\"ab12\"} 2"));
        assert!(text.contains("serve_jobs_run_micros_bucket{dataset=\"ab12\",le=\"+Inf\"} 4"));
        assert!(text.contains("serve_jobs_run_micros_sum{dataset=\"ab12\"} 16500"));
        assert!(text.contains("# TYPE serve_jobs_run_micros_p99 gauge"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn buckets_are_cumulative_and_monotone() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        h.record(1);
        h.record(1);
        h.record(100);
        let text = render(&reg.snapshot());
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("h_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(*bucket_counts.last().unwrap(), 3);
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c#path=a\"b\\c").inc();
        let text = render(&reg.snapshot());
        assert!(text.contains("c_total{path=\"a\\\"b\\\\c\"} 1"));
        assert!(lint(&text).is_empty(), "{:?}", lint(&text));
    }

    #[test]
    fn lint_catches_violations() {
        // No EOF.
        assert!(!lint("# HELP x x\n# TYPE x gauge\nx 1\n").is_empty());
        // Sample without TYPE.
        let errs = lint("y 1\n# EOF\n");
        assert!(errs.iter().any(|e| e.contains("no preceding TYPE")));
        // Non-monotone buckets.
        let text = "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n# EOF\n";
        let errs = lint(text);
        assert!(errs.iter().any(|e| e.contains("not monotone")), "{errs:?}");
        // +Inf disagrees with _count.
        let text =
            "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n# EOF\n";
        let errs = lint(text);
        assert!(errs.iter().any(|e| e.contains("!= _count")), "{errs:?}");
        // Counter sample missing _total.
        let text = "# HELP c c\n# TYPE c counter\nc 1\n# EOF\n";
        let errs = lint(text);
        assert!(errs.iter().any(|e| e.contains("_total")), "{errs:?}");
    }

    #[test]
    fn json_roundtrip_renders_clean() {
        let reg = sample_registry();
        let doc = crate::json::parse(&reg.to_json()).expect("registry json");
        let snap = snapshot_from_json(&doc).expect("snapshot from json");
        let text = render(&snap);
        assert!(lint(&text).is_empty(), "{:?}", lint(&text));
        assert!(text.contains("serve_jobs_completed_total 3"));
    }
}
