//! RAII spans with monotonic timestamps, thread ids, and lock-free
//! thread-local event buffering.
//!
//! The record path takes one relaxed atomic load when tracing is off and
//! touches only a thread-local `Vec` when it is on. Buffers drain into the
//! shared sink when they reach [`FLUSH_AT`] events, when their thread
//! exits (TLS destructor), or when the owning thread calls
//! [`Tracer::drain`]. See the crate docs for the join-before-snapshot
//! contract this relies on.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Local buffer size that triggers a flush into the shared sink.
const FLUSH_AT: usize = 1024;

/// Default cap on total buffered events; beyond it events are counted in
/// [`Tracer::dropped`] instead of growing memory without bound.
const DEFAULT_CAP: usize = 1 << 20;

/// A typed span/counter argument. Kept deliberately small: everything the
/// pipeline attaches is a count, a float, or a short kernel name.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What a [`TraceEvent`] represents, mapping 1:1 onto Chrome trace-event
/// phases: `Span` → `"X"` (complete), `Instant` → `"i"`, `Counter` → `"C"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Span,
    Instant,
    Counter,
}

/// One recorded event. Timestamps are nanoseconds since the tracer's
/// creation ([`Tracer::new`]), so events from different threads share a
/// single monotonic epoch.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: &'static str,
    /// Category — the pipeline layer that emitted the event (`"linalg"`,
    /// `"core"`, `"dist"`, `"cli"`).
    pub cat: &'static str,
    pub kind: EventKind,
    pub ts_nanos: u64,
    /// Duration for `Span` events; 0 for instants and counters.
    pub dur_nanos: u64,
    /// Sequential per-thread id (see [`current_tid`]).
    pub tid: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static LOCAL: RefCell<LocalBufs> = const { RefCell::new(LocalBufs { bufs: Vec::new() }) };
}

/// Small, process-unique, sequential id for the calling thread. Stable for
/// the thread's lifetime; used as the `tid` of every event it records.
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

struct TracerShared {
    enabled: AtomicBool,
    generation: AtomicU64,
    epoch: Instant,
    sink: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    cap: usize,
}

impl TracerShared {
    fn push_events(&self, events: &mut Vec<TraceEvent>, generation: u64) {
        if self.generation.load(Ordering::Acquire) != generation {
            events.clear();
            return;
        }
        let mut sink = self.sink.lock().unwrap();
        let room = self.cap.saturating_sub(sink.len());
        if events.len() > room {
            self.dropped
                .fetch_add((events.len() - room) as u64, Ordering::Relaxed);
            events.truncate(room);
        }
        sink.append(events);
    }
}

/// Per-thread buffers, one per live tracer this thread has recorded into.
/// Dropped (and therefore flushed) when the thread exits.
struct LocalBufs {
    bufs: Vec<LocalBuf>,
}

struct LocalBuf {
    shared: Weak<TracerShared>,
    generation: u64,
    events: Vec<TraceEvent>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if let Some(shared) = self.shared.upgrade() {
            shared.push_events(&mut self.events, self.generation);
        }
        self.events.clear();
    }
}

impl Drop for LocalBufs {
    fn drop(&mut self) {
        for buf in &mut self.bufs {
            buf.flush();
        }
    }
}

/// Shared handle to a trace buffer. Cheap to clone; all clones feed the
/// same sink. Created disabled — recording costs a single relaxed atomic
/// load until [`Tracer::set_enabled`] turns it on.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<TracerShared>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAP)
    }

    /// A tracer that keeps at most `cap` events; the excess is counted in
    /// [`Tracer::dropped`].
    pub fn with_capacity(cap: usize) -> Self {
        Tracer {
            shared: Arc::new(TracerShared {
                enabled: AtomicBool::new(false),
                generation: AtomicU64::new(0),
                epoch: Instant::now(),
                sink: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                cap,
            }),
        }
    }

    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::Relaxed);
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this tracer was created (the shared epoch).
    pub fn now_nanos(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// Opens an RAII span; the event is recorded when the guard drops.
    /// A disabled tracer returns an inert guard (no allocation, no clock
    /// read).
    #[inline]
    pub fn span(&self, name: &'static str, cat: &'static str) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard {
            inner: Some(SpanInner {
                shared: Arc::clone(&self.shared),
                generation: self.shared.generation.load(Ordering::Acquire),
                name,
                cat,
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    /// Records a zero-duration instant event.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        self.record(TraceEvent {
            name,
            cat,
            kind: EventKind::Instant,
            ts_nanos: self.now_nanos(),
            dur_nanos: 0,
            tid: current_tid(),
            args,
        });
    }

    /// Records a counter sample (Perfetto renders these as stacked value
    /// tracks — used for the per-level pruning funnel).
    pub fn counter(
        &self,
        name: &'static str,
        cat: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        self.record(TraceEvent {
            name,
            cat,
            kind: EventKind::Counter,
            ts_nanos: self.now_nanos(),
            dur_nanos: 0,
            tid: current_tid(),
            args,
        });
    }

    fn record(&self, event: TraceEvent) {
        record_into(
            &self.shared,
            self.shared.generation.load(Ordering::Acquire),
            event,
        );
    }

    /// Flushes the calling thread and takes every buffered event. Events
    /// from worker threads are present provided those threads have exited
    /// (scoped-thread join) — see the crate-level snapshot contract.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.flush_current_thread();
        let mut sink = self.shared.sink.lock().unwrap();
        std::mem::take(&mut *sink)
    }

    /// Discards all buffered events (including thread-local ones, lazily:
    /// stale buffers are invalidated by a generation bump and cleared on
    /// their next use).
    pub fn reset(&self) {
        self.shared.generation.fetch_add(1, Ordering::AcqRel);
        self.shared.sink.lock().unwrap().clear();
        self.shared.dropped.store(0, Ordering::Relaxed);
        self.flush_current_thread(); // drops the calling thread's stale buffer
    }

    /// Events discarded because the sink hit its capacity.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    fn flush_current_thread(&self) {
        let ptr = Arc::as_ptr(&self.shared);
        let _ = LOCAL.try_with(|local| {
            let mut local = local.borrow_mut();
            for buf in &mut local.bufs {
                if std::ptr::eq(buf.shared.as_ptr(), ptr) {
                    buf.flush();
                }
            }
            local.bufs.retain(|b| b.shared.strong_count() > 0);
        });
    }
}

/// Pushes an event into the calling thread's buffer for `shared`,
/// spilling to the sink directly if TLS is unavailable (thread teardown).
fn record_into(shared: &Arc<TracerShared>, generation: u64, event: TraceEvent) {
    let mut event = Some(event);
    let event_slot = &mut event;
    let pushed = LOCAL.try_with(|local| {
        let mut local = local.borrow_mut();
        let ptr = Arc::as_ptr(shared);
        let idx = match local
            .bufs
            .iter()
            .position(|b| std::ptr::eq(b.shared.as_ptr(), ptr))
        {
            Some(i) => i,
            None => {
                local.bufs.push(LocalBuf {
                    shared: Arc::downgrade(shared),
                    generation,
                    events: Vec::with_capacity(64),
                });
                local.bufs.len() - 1
            }
        };
        let buf = &mut local.bufs[idx];
        if buf.generation != generation {
            // The tracer was reset since this thread last recorded:
            // everything buffered belongs to the old run.
            buf.events.clear();
            buf.generation = generation;
        }
        buf.events
            .push(event_slot.take().expect("event consumed once"));
        if buf.events.len() >= FLUSH_AT {
            buf.flush();
        }
    });
    if pushed.is_err() {
        if let Some(e) = event.take() {
            shared.push_events(&mut vec![e], generation);
        }
    }
}

struct SpanInner {
    shared: Arc<TracerShared>,
    generation: u64,
    name: &'static str,
    cat: &'static str,
    start: Instant,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII guard returned by [`Tracer::span`]; records a complete (`"X"`)
/// event covering its lifetime when dropped.
#[must_use = "a span measures the scope it lives in; dropping it immediately records an empty span"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attaches an argument to the span (builder style). No-op on an
    /// inert guard from a disabled tracer.
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.add_arg(key, value);
        self
    }

    /// Attaches an argument to the span in place.
    pub fn add_arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, value.into()));
        }
    }

    /// Whether this guard will record anything (false when the tracer was
    /// disabled at creation). Lets callers skip arg computation.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_nanos = inner.start.elapsed().as_nanos() as u64;
        let ts_nanos = inner
            .start
            .saturating_duration_since(inner.shared.epoch)
            .as_nanos() as u64;
        let event = TraceEvent {
            name: inner.name,
            cat: inner.cat,
            kind: EventKind::Span,
            ts_nanos,
            dur_nanos,
            tid: current_tid(),
            args: inner.args,
        };
        record_into(&inner.shared, inner.generation, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let _s = t.span("noop", "test");
        }
        t.instant("i", "test", vec![]);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn span_records_name_cat_duration() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _s = t.span("work", "test").arg("k", 7u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        let events = t.drain();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "work");
        assert_eq!(e.cat, "test");
        assert_eq!(e.kind, EventKind::Span);
        assert!(e.dur_nanos >= 1_000_000, "dur {} too small", e.dur_nanos);
        assert_eq!(e.args, vec![("k", ArgValue::U64(7))]);
    }

    #[test]
    fn worker_thread_events_flush_on_exit() {
        let t = Tracer::new();
        t.set_enabled(true);
        let t2 = t.clone();
        std::thread::spawn(move || {
            let _s = t2.span("worker", "test");
        })
        .join()
        .unwrap();
        {
            let _s = t.span("main", "test");
        }
        let events = t.drain();
        let names: Vec<_> = events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"worker"), "events: {names:?}");
        assert!(names.contains(&"main"), "events: {names:?}");
        // Distinct threads must carry distinct tids.
        let worker = events.iter().find(|e| e.name == "worker").unwrap();
        let main = events.iter().find(|e| e.name == "main").unwrap();
        assert_ne!(worker.tid, main.tid);
    }

    #[test]
    fn reset_discards_buffered_and_local_events() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _s = t.span("before", "test");
        }
        t.reset();
        {
            let _s = t.span("after", "test");
        }
        let events = t.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "after");
    }

    #[test]
    fn capacity_cap_counts_dropped() {
        let t = Tracer::with_capacity(3);
        t.set_enabled(true);
        for _ in 0..10 {
            let _s = t.span("s", "test");
        }
        let events = t.drain();
        assert!(events.len() <= 3);
        assert_eq!(t.dropped() as usize + events.len(), 10);
    }

    #[test]
    fn counter_and_instant_events() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.counter("funnel", "core", vec![("pairs", ArgValue::U64(10))]);
        t.instant("mark", "core", vec![]);
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Counter);
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[0].dur_nanos, 0);
    }

    #[test]
    fn spans_share_one_epoch_across_threads() {
        let t = Tracer::new();
        t.set_enabled(true);
        let t2 = t.clone();
        {
            let _s = t.span("first", "test");
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::spawn(move || {
            let _s = t2.span("second", "test");
        })
        .join()
        .unwrap();
        let events = t.drain();
        let first = events.iter().find(|e| e.name == "first").unwrap();
        let second = events.iter().find(|e| e.name == "second").unwrap();
        assert!(second.ts_nanos >= first.ts_nanos);
    }
}
