//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! and the machine-readable run manifest.
//!
//! Both formats are documented in DESIGN.md §Observability; the schemas
//! are enforced by golden tests here and by the `trace_check` CI gate.

use crate::json::escape;
use crate::tracer::{ArgValue, EventKind, TraceEvent};
use crate::SCHEMA_VERSION;

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", escape(key)));
        match value {
            ArgValue::U64(v) => out.push_str(&v.to_string()),
            ArgValue::F64(v) => out.push_str(&fmt_f64(*v)),
            ArgValue::Str(s) => out.push_str(&format!("\"{}\"", escape(s))),
        }
    }
    out.push('}');
}

/// Renders events as a Chrome trace-event JSON object:
/// `{"traceEvents": [...], "displayTimeUnit": "ms", ...}`. Timestamps and
/// durations are microseconds (fractional, 3 decimals), per the trace
/// event format; spans become complete (`"X"`) events, instants `"i"`,
/// counters `"C"`. One process (`pid` 1) named `process_name`, one
/// thread-name metadata record per distinct tid.
pub fn chrome_trace(events: &[TraceEvent], process_name: &str) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    ));

    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        out.push_str(&format!(
            ",{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"thread-{tid}\"}}}}"
        ));
    }

    let us = |nanos: u64| format!("{:.3}", nanos as f64 / 1_000.0);
    for e in events {
        out.push(',');
        match e.kind {
            EventKind::Span => {
                out.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\"args\":",
                    e.tid,
                    escape(e.name),
                    escape(e.cat),
                    us(e.ts_nanos),
                    us(e.dur_nanos),
                ));
            }
            EventKind::Instant => {
                out.push_str(&format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"args\":",
                    e.tid,
                    escape(e.name),
                    escape(e.cat),
                    us(e.ts_nanos),
                ));
            }
            EventKind::Counter => {
                out.push_str(&format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"args\":",
                    e.tid,
                    escape(e.name),
                    escape(e.cat),
                    us(e.ts_nanos),
                ));
            }
        }
        write_args(&mut out, &e.args);
        out.push('}');
    }
    out.push_str(&format!(
        "],\"otherData\":{{\"schema_version\":{SCHEMA_VERSION}}}}}"
    ));
    out
}

/// A machine-readable run manifest for bench trajectory tracking:
/// configuration, code revision, dataset shape, and final metrics in one
/// self-describing JSON object.
///
/// Entries are either strings ([`Manifest::set_str`]) or raw pre-rendered
/// JSON ([`Manifest::set_raw`] — caller guarantees validity; the golden
/// tests parse the result to catch mistakes). Required keys
/// ([`Manifest::REQUIRED_KEYS`]) are stamped with `null` placeholders at
/// construction so a half-built manifest still parses and fails schema
/// validation loudly rather than silently missing fields.
#[derive(Debug, Clone)]
pub struct Manifest {
    entries: Vec<(String, String)>,
}

impl Manifest {
    /// Keys every manifest must carry; the `trace_check` bin and the
    /// golden tests assert on exactly this list.
    pub const REQUIRED_KEYS: [&'static str; 6] = [
        "schema_version",
        "tool",
        "git",
        "config",
        "dataset",
        "metrics",
    ];

    pub fn new(tool: &str) -> Self {
        let mut m = Manifest {
            entries: Vec::new(),
        };
        m.set_raw("schema_version", SCHEMA_VERSION.to_string());
        m.set_str("tool", tool);
        for key in Self::REQUIRED_KEYS {
            if !m.has(key) {
                m.set_raw(key, "null".to_string());
            }
        }
        m
    }

    pub fn has(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Sets `key` to a JSON string value (escaped here).
    pub fn set_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.set_raw(key, format!("\"{}\"", escape(value)))
    }

    /// Sets `key` to a number.
    pub fn set_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.set_raw(key, fmt_f64(value))
    }

    /// Sets `key` to pre-rendered JSON. The caller is responsible for
    /// validity — pair with [`crate::json::parse`] in tests.
    pub fn set_raw(&mut self, key: &str, json: String) -> &mut Self {
        if let Some(entry) = self.entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = json;
        } else {
            self.entries.push((key.to_string(), json));
        }
        self
    }

    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(key), value));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::tracer::Tracer;

    fn sample_events() -> Vec<TraceEvent> {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _s = t.span("evaluate", "core").arg("k", 3u64);
        }
        t.counter(
            "funnel",
            "core",
            vec![("pairs", ArgValue::U64(10)), ("deduped", ArgValue::U64(6))],
        );
        t.instant("level_done", "core", vec![("level", ArgValue::U64(2))]);
        t.drain()
    }

    #[test]
    fn chrome_trace_parses_and_has_required_shape() {
        let doc = chrome_trace(&sample_events(), "sliceline test");
        let v = parse(&doc).expect("trace is valid json");
        assert_eq!(v.get("displayTimeUnit").unwrap(), &Json::Str("ms".into()));
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata (process + >=1 thread) plus our 3 events.
        assert!(events.len() >= 5);
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "M" | "X" | "i" | "C"), "bad ph {ph}");
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
            assert!(e.get("name").is_some());
            if ph != "M" {
                assert!(e.get("ts").unwrap().as_f64().is_some());
                assert!(e.get("cat").is_some());
            }
            if ph == "X" {
                assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            }
        }
        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").unwrap().as_str(), Some("evaluate"));
        assert_eq!(
            span.get("args").unwrap().get("k").unwrap().as_f64(),
            Some(3.0)
        );
        let counter = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .unwrap();
        assert_eq!(
            counter.get("args").unwrap().get("pairs").unwrap().as_f64(),
            Some(10.0)
        );
    }

    #[test]
    fn chrome_trace_timestamps_are_microseconds() {
        let events = vec![TraceEvent {
            name: "s",
            cat: "c",
            kind: EventKind::Span,
            ts_nanos: 1_500,
            dur_nanos: 2_000_000,
            tid: 1,
            args: vec![],
        }];
        let doc = chrome_trace(&events, "t");
        let v = parse(&doc).unwrap();
        let span = &v.get("traceEvents").unwrap().as_arr().unwrap()[2];
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2000.0));
    }

    #[test]
    fn manifest_has_required_keys_and_parses() {
        let mut m = Manifest::new("sliceline-cli");
        m.set_str("git", "abc1234");
        m.set_raw("config", "{\"k\":4}".to_string());
        m.set_raw("dataset", "{\"rows\":100,\"cols\":9}".to_string());
        m.set_raw("metrics", "{}".to_string());
        let v = parse(&m.to_json()).expect("manifest is valid json");
        for key in Manifest::REQUIRED_KEYS {
            assert!(v.get(key).is_some(), "missing required key {key}");
        }
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(SCHEMA_VERSION as u64)
        );
        assert_eq!(
            v.get("config").unwrap().get("k").unwrap().as_f64(),
            Some(4.0)
        );
    }

    #[test]
    fn manifest_unset_required_keys_are_null() {
        let m = Manifest::new("t");
        let v = parse(&m.to_json()).unwrap();
        assert_eq!(v.get("git").unwrap(), &Json::Null);
        assert_eq!(v.get("metrics").unwrap(), &Json::Null);
        assert_eq!(v.get("tool").unwrap(), &Json::Str("t".into()));
    }

    #[test]
    fn manifest_set_overwrites_in_place() {
        let mut m = Manifest::new("t");
        m.set_str("git", "one");
        m.set_str("git", "two");
        let v = parse(&m.to_json()).unwrap();
        assert_eq!(v.get("git").unwrap().as_str(), Some("two"));
    }

    #[test]
    fn empty_trace_still_parses() {
        let doc = chrome_trace(&[], "empty");
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("otherData").unwrap().get("schema_version").is_some());
    }
}
