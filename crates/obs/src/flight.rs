//! Per-job flight recorder: a bounded ring of recent run records.
//!
//! The serving daemon answers "why was job 4182 slow?" *after* the job
//! finished, without asking the caller to resubmit with `--trace`: every
//! job executed under a scoped context
//! ([`ExecContext::run_scoped`](../../sliceline_linalg/struct.ExecContext.html))
//! pushes one [`FlightRecord`] — query config, dataset hash, the
//! per-level pruning funnel and counters, queue/run latency, trace-drop
//! count, and the outcome — into a shared [`FlightRecorder`] ring. The
//! ring is bounded (default 256 records) so a long-lived daemon holds a
//! sliding window of recent history at a few KB per record; eviction is
//! oldest-first.
//!
//! Retrieval is by job id (`GET /jobs/<id>/profile`) or newest-first
//! dump (`GET /debug/flightrecorder`). Records survive until evicted, so
//! a job remains diagnosable after its HTTP status has been polled and
//! forgotten. Capture is cheap (one mutex push of pre-rendered strings,
//! far off the kernel hot path) and unconditional — unlike span tracing
//! it needs no opt-in flag to stay inside the <2% observability budget.

use crate::json::escape;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default ring capacity: enough recent history to debug a busy daemon
/// without unbounded growth (~few KB per record).
pub const DEFAULT_CAPACITY: usize = 256;

/// One completed (or failed) job run, frozen for post-hoc inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Job id (serve queue id, or a caller-chosen id for CLI runs).
    pub job_id: u64,
    /// Dataset content hash / registry id the job ran against.
    pub dataset: String,
    /// Terminal state: `"done"` or `"failed"`.
    pub outcome: String,
    /// Error message when the outcome is `"failed"`.
    pub error: Option<String>,
    /// Seconds between submission and a worker claiming the job.
    pub queue_wait_secs: f64,
    /// Seconds of actual execution.
    pub run_secs: f64,
    /// Raw JSON object describing the query configuration; `"null"`
    /// when unknown. Spliced verbatim into the record's JSON.
    pub config_json: String,
    /// Raw JSON with the per-level funnel and execution counters (the
    /// `ExecStats::to_json` document); `"null"` when stats were off.
    pub stats_json: String,
    /// Span events dropped by the tracer ring during this run's window.
    pub dropped_events: u64,
}

impl FlightRecord {
    /// Renders the record as a JSON object. `seq` is the recorder's
    /// monotone capture sequence (newest = highest).
    fn to_json(&self, seq: u64) -> String {
        let error = match &self.error {
            Some(e) => format!("\"{}\"", escape(e)),
            None => "null".to_string(),
        };
        format!(
            "{{\"seq\":{seq},\"job_id\":{},\"dataset\":\"{}\",\"outcome\":\"{}\",\
             \"error\":{error},\"queue_wait_secs\":{},\"run_secs\":{},\
             \"dropped_events\":{},\"config\":{},\"stats\":{}}}",
            self.job_id,
            escape(&self.dataset),
            escape(&self.outcome),
            finite(self.queue_wait_secs),
            finite(self.run_secs),
            self.dropped_events,
            null_if_empty(&self.config_json),
            null_if_empty(&self.stats_json),
        )
    }
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn null_if_empty(raw: &str) -> &str {
    if raw.trim().is_empty() {
        "null"
    } else {
        raw
    }
}

#[derive(Debug, Default)]
struct Inner {
    ring: VecDeque<(u64, FlightRecord)>,
    next_seq: u64,
}

/// Bounded ring of [`FlightRecord`]s, shared across context views.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// `true` when no record has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever captured (monotone, survives eviction).
    pub fn captured(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Pushes a record, evicting the oldest when full.
    pub fn record(&self, record: FlightRecord) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back((seq, record));
    }

    /// The most recent record for `job_id`, if still in the ring.
    pub fn get(&self, job_id: u64) -> Option<FlightRecord> {
        let inner = self.inner.lock().unwrap();
        inner
            .ring
            .iter()
            .rev()
            .find(|(_, r)| r.job_id == job_id)
            .map(|(_, r)| r.clone())
    }

    /// JSON object for `job_id`'s record, if present.
    pub fn get_json(&self, job_id: u64) -> Option<String> {
        let inner = self.inner.lock().unwrap();
        inner
            .ring
            .iter()
            .rev()
            .find(|(_, r)| r.job_id == job_id)
            .map(|(seq, r)| r.to_json(*seq))
    }

    /// The last `n` records, newest first.
    pub fn last(&self, n: usize) -> Vec<FlightRecord> {
        let inner = self.inner.lock().unwrap();
        inner
            .ring
            .iter()
            .rev()
            .take(n)
            .map(|(_, r)| r.clone())
            .collect()
    }

    /// JSON dump of the last `n` records (newest first) with ring
    /// bookkeeping, for `GET /debug/flightrecorder`.
    pub fn to_json(&self, n: usize) -> String {
        let inner = self.inner.lock().unwrap();
        let records: Vec<String> = inner
            .ring
            .iter()
            .rev()
            .take(n)
            .map(|(seq, r)| r.to_json(*seq))
            .collect();
        format!(
            "{{\"capacity\":{},\"captured\":{},\"resident\":{},\"records\":[{}]}}",
            self.capacity,
            inner.next_seq,
            inner.ring.len(),
            records.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(job_id: u64, outcome: &str) -> FlightRecord {
        FlightRecord {
            job_id,
            dataset: format!("ds{job_id}"),
            outcome: outcome.to_string(),
            error: (outcome == "failed").then(|| "boom".to_string()),
            queue_wait_secs: 0.001,
            run_secs: 0.125,
            config_json: "{\"k\":4}".to_string(),
            stats_json: "{\"levels\":[]}".to_string(),
            dropped_events: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let rec = FlightRecorder::new(3);
        for id in 0..5 {
            rec.record(record(id, "done"));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.captured(), 5);
        // Jobs 0 and 1 were evicted; 2..=4 remain.
        assert!(rec.get(0).is_none());
        assert!(rec.get(1).is_none());
        assert_eq!(rec.get(4).unwrap().dataset, "ds4");
        let last = rec.last(10);
        let ids: Vec<u64> = last.iter().map(|r| r.job_id).collect();
        assert_eq!(ids, vec![4, 3, 2], "newest first");
    }

    #[test]
    fn retrieval_after_completion_returns_full_record() {
        let rec = FlightRecorder::default();
        rec.record(record(7, "failed"));
        let r = rec.get(7).expect("record retained after completion");
        assert_eq!(r.outcome, "failed");
        assert_eq!(r.error.as_deref(), Some("boom"));
        let json = rec.get_json(7).unwrap();
        let parsed = crate::json::parse(&json).expect("valid json");
        assert_eq!(
            parsed.get("dataset").unwrap().as_str(),
            Some("ds7"),
            "{json}"
        );
        assert_eq!(parsed.get("error").unwrap().as_str(), Some("boom"));
        assert_eq!(
            parsed.get("config").unwrap().get("k").unwrap().as_u64(),
            Some(4)
        );
        assert!(parsed.get("stats").unwrap().get("levels").is_some());
    }

    #[test]
    fn dump_json_is_parseable_and_bounded() {
        let rec = FlightRecorder::new(2);
        rec.record(record(1, "done"));
        rec.record(record(2, "done"));
        rec.record(record(3, "done"));
        let json = rec.to_json(16);
        let parsed = crate::json::parse(&json).expect("valid json");
        assert_eq!(parsed.get("capacity").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("captured").unwrap().as_u64(), Some(3));
        let records = parsed.get("records").unwrap().as_arr().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("job_id").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn empty_stats_renders_null() {
        let rec = FlightRecorder::default();
        let mut r = record(1, "done");
        r.stats_json = String::new();
        r.error = None;
        rec.record(r);
        let json = rec.get_json(1).unwrap();
        let parsed = crate::json::parse(&json).expect("valid json");
        assert!(parsed.get("stats").unwrap().as_obj().is_none());
        assert!(parsed.get("error").unwrap().as_str().is_none());
    }
}
