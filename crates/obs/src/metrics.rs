//! Named counters, gauges, and histograms with sharded atomic storage.
//!
//! Counters are the hot-path primitive, so they are striped across
//! cache-line-padded atomic shards indexed by thread id — concurrent
//! writers from different threads touch different cache lines. Gauges are
//! single f64-bit atomics (set/add/max), histograms use log2 buckets.
//! Registration goes through one mutex-guarded map, but callers are
//! expected to look a metric up once and keep the `Arc`.

use crate::json::escape;
use crate::tracer::current_tid;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// One cache line per shard so concurrent increments don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotonically increasing counter, striped across [`SHARDS`] shards.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    pub fn add(&self, delta: u64) {
        let shard = (current_tid() as usize) % SHARDS;
        self.shards[shard].0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Last-write-wins f64 value stored as raw bits, with `add`/`max`
/// read-modify-write helpers (CAS loops).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub fn add(&self, delta: f64) {
        self.update(|v| v + delta);
    }

    /// Raises the gauge to `value` if larger (high-water marks).
    pub fn max(&self, value: f64) {
        self.update(|v| v.max(value));
    }

    fn update(&self, f: impl Fn(f64) -> f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

const HIST_BUCKETS: usize = 64;

/// Log2-bucketed histogram of u64 samples: bucket `i` holds values whose
/// bit length is `i` (bucket 0 = value 0). Tracks count and sum exactly,
/// distribution at power-of-two resolution — plenty for latency/size
/// telemetry without per-sample allocation.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize; // 0 for value 0
        self.buckets[bucket.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// `(bucket_upper_bound, count)` for each non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let upper = if i == 0 { 0 } else { (1u128 << i) as u64 - 1 };
                    (upper, n)
                })
            })
            .collect()
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Registry of named metrics. Cloning shares the underlying map; metric
/// names are dot-separated paths (`"core.funnel.pairs"`,
/// `"dist.partition_skew"`).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.inner.lock().unwrap().len())
            .finish()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if
    /// needed. Panics if `name` is already a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Sorted `(name, value)` view with histograms flattened to their
    /// mean; used by the human `--stats` rendering.
    pub fn flat_values(&self) -> Vec<(String, f64)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => c.value() as f64,
                    Metric::Gauge(g) => g.value(),
                    Metric::Histogram(h) => h.mean(),
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Renders the registry as a JSON object keyed by metric name. Each
    /// metric carries a `"type"` tag and its value(s); the schema is
    /// documented in DESIGN.md §Observability.
    pub fn to_json(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut out = String::from("{");
        for (i, (name, metric)) in map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", escape(name)));
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{}}}", c.value()));
                }
                Metric::Gauge(g) => {
                    let v = g.value();
                    let v = if v.is_finite() { v } else { 0.0 };
                    out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{v}}}"));
                }
                Metric::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .nonzero_buckets()
                        .iter()
                        .map(|(le, n)| format!("{{\"le\":{le},\"count\":{n}}}"))
                        .collect();
                    out.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{},\"buckets\":[{}]}}",
                        h.count(),
                        h.sum(),
                        h.mean(),
                        buckets.join(",")
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("test.count");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        // Same name returns the same counter.
        assert_eq!(reg.counter("test.count").value(), 4000);
    }

    #[test]
    fn gauge_set_add_max() {
        let g = Gauge::default();
        g.set(1.5);
        assert_eq!(g.value(), 1.5);
        g.add(0.5);
        assert_eq!(g.value(), 2.0);
        g.max(1.0);
        assert_eq!(g.value(), 2.0);
        g.max(3.0);
        assert_eq!(g.value(), 3.0);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1001);
        assert!((h.mean() - 1001.0 / 3.0).abs() < 1e-9);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (0, 1)); // value 0
        assert_eq!(buckets[1], (1, 1)); // value 1
        assert_eq!(buckets[2].1, 1); // value 1000 in its log2 bucket
        assert!(buckets[2].0 >= 1000);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn json_is_parseable_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(7);
        reg.gauge("a.gauge").set(2.5);
        reg.histogram("c.hist").record(5);
        let json = reg.to_json();
        let parsed = crate::json::parse(&json).expect("valid json");
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj[0].0, "a.gauge");
        assert_eq!(obj[1].0, "b.count");
        assert_eq!(obj[2].0, "c.hist");
        assert_eq!(
            parsed
                .get("b.count")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        assert_eq!(
            parsed.get("c.hist").unwrap().get("count").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn flat_values_flattens_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(3);
        reg.gauge("g").set(1.25);
        reg.histogram("h").record(10);
        let flat = reg.flat_values();
        assert_eq!(flat.len(), 3);
        assert!(flat.contains(&("c".to_string(), 3.0)));
        assert!(flat.contains(&("g".to_string(), 1.25)));
        assert!(flat.contains(&("h".to_string(), 10.0)));
    }
}
