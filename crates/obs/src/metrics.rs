//! Named counters, gauges, and histograms with sharded atomic storage.
//!
//! Counters are the hot-path primitive, so they are striped across
//! cache-line-padded atomic shards indexed by thread id — concurrent
//! writers from different threads touch different cache lines. Gauges are
//! single f64-bit atomics (set/add/max), histograms use log2 buckets.
//! Registration goes through one mutex-guarded map, but callers are
//! expected to look a metric up once and keep the `Arc`.

use crate::json::escape;
use crate::tracer::current_tid;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// One cache line per shard so concurrent increments don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotonically increasing counter, striped across [`SHARDS`] shards.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    pub fn add(&self, delta: u64) {
        let shard = (current_tid() as usize) % SHARDS;
        self.shards[shard].0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Last-write-wins f64 value stored as raw bits, with `add`/`max`
/// read-modify-write helpers (CAS loops).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub fn add(&self, delta: f64) {
        self.update(|v| v + delta);
    }

    /// Raises the gauge to `value` if larger (high-water marks).
    pub fn max(&self, value: f64) {
        self.update(|v| v.max(value));
    }

    fn update(&self, f: impl Fn(f64) -> f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

const HIST_BUCKETS: usize = 64;

/// Log2-bucketed histogram of u64 samples: bucket `i` holds values whose
/// bit length is `i` (bucket 0 = value 0). Tracks count and sum exactly,
/// distribution at power-of-two resolution — plenty for latency/size
/// telemetry without per-sample allocation.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize; // 0 for value 0
        self.buckets[bucket.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the containing log2 bucket. Bucket 0 holds
    /// exactly `{0}`; bucket `i` spans `[2^(i-1), 2^i - 1]`, so the
    /// estimate is exact to within one bucket width — the same
    /// resolution the histogram stores. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample that realises the quantile, 1-based
        // (nearest-rank definition, matching a sorted-sample oracle).
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                if i == 0 {
                    return 0.0;
                }
                let lo = (1u64 << (i - 1)) as f64;
                let hi = ((1u128 << i) as u64 - 1) as f64;
                let frac = (rank - cum) as f64 / n as f64;
                return lo + (hi - lo) * frac;
            }
            cum += n;
        }
        // Unreachable when count/buckets are consistent; fall back to
        // the largest representable bucket bound.
        ((1u128 << (HIST_BUCKETS - 1)) as u64 - 1) as f64
    }

    /// `(bucket_upper_bound, count)` for each non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let upper = if i == 0 { 0 } else { (1u128 << i) as u64 - 1 };
                    (upper, n)
                })
            })
            .collect()
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Point-in-time value of one registered metric, decoupled from the
/// live atomics so renderers (JSON, OpenMetrics) can walk a consistent
/// view without holding the registry lock.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

/// Frozen histogram state: exact count/sum, the non-empty log2 buckets
/// as `(upper_bound, count)` pairs, and interpolated quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Registry of named metrics. Cloning shares the underlying map; metric
/// names are dot-separated paths (`"core.funnel.pairs"`,
/// `"dist.partition_skew"`).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.inner.lock().unwrap().len())
            .finish()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if
    /// needed. Panics if `name` is already a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Sorted `(name, value)` view with histograms flattened to their
    /// mean plus synthetic `name.p50`/`name.p95`/`name.p99` quantile
    /// entries; used by the human `--stats` rendering.
    pub fn flat_values(&self) -> Vec<(String, f64)> {
        let map = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(map.len());
        for (name, m) in map.iter() {
            match m {
                Metric::Counter(c) => out.push((name.clone(), c.value() as f64)),
                Metric::Gauge(g) => out.push((name.clone(), g.value())),
                Metric::Histogram(h) => {
                    out.push((name.clone(), h.mean()));
                    out.push((format!("{name}.p50"), h.quantile(0.50)));
                    out.push((format!("{name}.p95"), h.quantile(0.95)));
                    out.push((format!("{name}.p99"), h.quantile(0.99)));
                }
            }
        }
        out
    }

    /// Consistent point-in-time snapshot of every registered metric,
    /// sorted by name. This is the input to the OpenMetrics renderer
    /// and the flight recorder — both walk plain data instead of live
    /// atomics.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.nonzero_buckets(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                    }),
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Renders the registry as a JSON object keyed by metric name. Each
    /// metric carries a `"type"` tag and its value(s); the schema is
    /// documented in DESIGN.md §Observability.
    pub fn to_json(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut out = String::from("{");
        for (i, (name, metric)) in map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", escape(name)));
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{}}}", c.value()));
                }
                Metric::Gauge(g) => {
                    let v = g.value();
                    let v = if v.is_finite() { v } else { 0.0 };
                    out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{v}}}"));
                }
                Metric::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .nonzero_buckets()
                        .iter()
                        .map(|(le, n)| format!("{{\"le\":{le},\"count\":{n}}}"))
                        .collect();
                    out.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                        h.count(),
                        h.sum(),
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        buckets.join(",")
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("test.count");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        // Same name returns the same counter.
        assert_eq!(reg.counter("test.count").value(), 4000);
    }

    #[test]
    fn gauge_set_add_max() {
        let g = Gauge::default();
        g.set(1.5);
        assert_eq!(g.value(), 1.5);
        g.add(0.5);
        assert_eq!(g.value(), 2.0);
        g.max(1.0);
        assert_eq!(g.value(), 2.0);
        g.max(3.0);
        assert_eq!(g.value(), 3.0);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1001);
        assert!((h.mean() - 1001.0 / 3.0).abs() < 1e-9);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (0, 1)); // value 0
        assert_eq!(buckets[1], (1, 1)); // value 1
        assert_eq!(buckets[2].1, 1); // value 1000 in its log2 bucket
        assert!(buckets[2].0 >= 1000);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn json_is_parseable_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(7);
        reg.gauge("a.gauge").set(2.5);
        reg.histogram("c.hist").record(5);
        let json = reg.to_json();
        let parsed = crate::json::parse(&json).expect("valid json");
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj[0].0, "a.gauge");
        assert_eq!(obj[1].0, "b.count");
        assert_eq!(obj[2].0, "c.hist");
        assert_eq!(
            parsed
                .get("b.count")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        assert_eq!(
            parsed.get("c.hist").unwrap().get("count").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn flat_values_flattens_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(3);
        reg.gauge("g").set(1.25);
        reg.histogram("h").record(10);
        let flat = reg.flat_values();
        // 1 counter + 1 gauge + histogram mean + p50/p95/p99.
        assert_eq!(flat.len(), 6);
        assert!(flat.contains(&("c".to_string(), 3.0)));
        assert!(flat.contains(&("g".to_string(), 1.25)));
        assert!(flat.contains(&("h".to_string(), 10.0)));
        assert!(flat.iter().any(|(n, _)| n == "h.p50"));
        assert!(flat.iter().any(|(n, _)| n == "h.p99"));
    }

    #[test]
    fn snapshot_freezes_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(2);
        reg.gauge("g").set(0.5);
        let h = reg.histogram("h");
        h.record(4);
        h.record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0], ("c".to_string(), MetricValue::Counter(2)));
        assert_eq!(snap[1], ("g".to_string(), MetricValue::Gauge(0.5)));
        match &snap[2].1 {
            MetricValue::Histogram(hs) => {
                assert_eq!(hs.count, 2);
                assert_eq!(hs.sum, 104);
                assert_eq!(hs.buckets.len(), 2);
                assert!(hs.p50 > 0.0 && hs.p99 >= hs.p50);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn quantile_empty_and_degenerate() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        h.record(0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn quantile_hits_containing_bucket_exactly() {
        let h = Histogram::default();
        // 90 small samples (bucket of value 1) and 10 large (value 1000).
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        // p50 must land in value-1's bucket [1,1]; interpolation is
        // exact there because lo == hi.
        assert_eq!(h.quantile(0.50), 1.0);
        // p95+ must land in 1000's bucket [512, 1023].
        for q in [0.95, 0.99] {
            let v = h.quantile(q);
            assert!((512.0..=1023.0).contains(&v), "q={q} -> {v}");
        }
    }

    /// Minimal xorshift64* generator so the property test below needs no
    /// external crate (the workspace is dependency-free by policy).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Property: for random sample sets, every interpolated quantile
    /// falls inside the log2 bucket that contains the nearest-rank
    /// sorted-sample oracle value — i.e. the estimate is never off by
    /// more than the histogram's own storage resolution, including
    /// exactly at bucket boundaries (powers of two).
    #[test]
    fn quantile_matches_sorted_oracle_within_bucket() {
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        for case in 0..200 {
            let n = 1 + (rng.next() % 300) as usize;
            let h = Histogram::default();
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix of magnitudes, deliberately including exact
                // powers of two (bucket boundaries) and zero.
                let v = match rng.next() % 5 {
                    0 => 0,
                    1 => 1u64 << (rng.next() % 20),
                    2 => (1u64 << (rng.next() % 20)) - 1,
                    3 => rng.next() % 1000,
                    _ => rng.next() % 1_000_000,
                };
                samples.push(v);
                h.record(v);
            }
            samples.sort_unstable();
            for &q in &[0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let oracle = samples[rank - 1];
                let est = h.quantile(q);
                // Same-bucket check: [2^(b-1), 2^b - 1] around the oracle.
                let (lo, hi) = if oracle == 0 {
                    (0.0, 0.0)
                } else {
                    let b = 64 - oracle.leading_zeros();
                    ((1u64 << (b - 1)) as f64, ((1u128 << b) as u64 - 1) as f64)
                };
                assert!(
                    est >= lo && est <= hi,
                    "case {case}: q={q} oracle={oracle} bucket=[{lo},{hi}] est={est} n={n}"
                );
            }
        }
    }
}
