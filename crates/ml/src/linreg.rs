//! Linear regression (`lm`) via ridge-regularized normal equations.
//!
//! Used for the paper's regression datasets (KDD 98, Salaries): the model
//! is fit on the feature matrix, predictions are scored with squared loss,
//! and the resulting error vector feeds SliceLine.

use crate::{MlError, Result};
use sliceline_linalg::solve::solve_normal_equations;
use sliceline_linalg::DenseMatrix;

/// A fitted linear regression model `ŷ = X w + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    /// Per-feature weights.
    weights: Vec<f64>,
    /// Intercept term.
    intercept: f64,
}

impl LinearRegression {
    /// Fits ordinary least squares with ridge regularization `lambda`
    /// (applied to the weights, not the intercept, via mean-centering).
    ///
    /// `lambda > 0` keeps the normal equations positive definite even with
    /// collinear features.
    pub fn fit(x: &DenseMatrix, y: &[f64], lambda: f64) -> Result<Self> {
        let n = x.rows();
        if n != y.len() {
            return Err(MlError::ShapeMismatch {
                reason: format!("X has {n} rows, y has {}", y.len()),
            });
        }
        if n == 0 {
            return Err(MlError::ShapeMismatch {
                reason: "cannot fit on zero rows".to_string(),
            });
        }
        let d = x.cols();
        // Mean-center features and labels so the intercept is recovered
        // exactly and stays unregularized.
        let mut xmeans = vec![0.0; d];
        for r in 0..n {
            for (m, &v) in xmeans.iter_mut().zip(x.row(r).iter()) {
                *m += v;
            }
        }
        for m in &mut xmeans {
            *m /= n as f64;
        }
        let ymean = y.iter().sum::<f64>() / n as f64;
        let mut xc = DenseMatrix::zeros(n, d);
        for r in 0..n {
            let src = x.row(r);
            let dst = xc.row_mut(r);
            for ((o, &v), &m) in dst.iter_mut().zip(src.iter()).zip(xmeans.iter()) {
                *o = v - m;
            }
        }
        let yc: Vec<f64> = y.iter().map(|&v| v - ymean).collect();
        let weights =
            solve_normal_equations(&xc, &yc, lambda.max(1e-12)).map_err(|e| MlError::Numeric {
                reason: format!("normal equations failed: {e}"),
            })?;
        let intercept = ymean
            - weights
                .iter()
                .zip(xmeans.iter())
                .map(|(&w, &m)| w * m)
                .sum::<f64>();
        Ok(LinearRegression { weights, intercept })
    }

    /// Predicts `ŷ = X w + b` for each row of `x`.
    pub fn predict(&self, x: &DenseMatrix) -> Result<Vec<f64>> {
        if x.cols() != self.weights.len() {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "model has {} features, input has {}",
                    self.weights.len(),
                    x.cols()
                ),
            });
        }
        Ok((0..x.rows())
            .map(|r| {
                self.intercept
                    + x.row(r)
                        .iter()
                        .zip(self.weights.iter())
                        .map(|(&v, &w)| v * w)
                        .sum::<f64>()
            })
            .collect())
    }

    /// The fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_function() {
        // y = 3 + 2 x1 - x2 exactly.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let x = DenseMatrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        let m = LinearRegression::fit(&x, &y, 1e-8).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-5);
        assert!((m.weights()[1] + 1.0).abs() < 1e-5);
        assert!((m.intercept() - 3.0).abs() < 1e-4);
        let yhat = m.predict(&x).unwrap();
        for (a, b) in yhat.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn intercept_only_model() {
        let x = DenseMatrix::zeros(4, 1);
        let y = vec![5.0, 5.0, 5.0, 5.0];
        let m = LinearRegression::fit(&x, &y, 1e-6).unwrap();
        assert!((m.intercept() - 5.0).abs() < 1e-9);
        assert_eq!(m.predict(&x).unwrap(), vec![5.0; 4]);
    }

    #[test]
    fn shape_errors() {
        let x = DenseMatrix::zeros(2, 1);
        assert!(LinearRegression::fit(&x, &[1.0], 0.1).is_err());
        assert!(LinearRegression::fit(&DenseMatrix::zeros(0, 1), &[], 0.1).is_err());
        let m = LinearRegression::fit(&x, &[1.0, 2.0], 0.1).unwrap();
        assert!(m.predict(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn collinear_features_survive_with_ridge() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let x = DenseMatrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let m = LinearRegression::fit(&x, &y, 1e-4).unwrap();
        let yhat = m.predict(&x).unwrap();
        for (a, b) in yhat.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-2);
        }
    }
}
