//! Fairness-oriented error vectors — the paper's §7 future-work direction
//! ("slice finding for bias and fairness (instead of accuracy)").
//!
//! SliceLine maximizes a score over an arbitrary non-negative, row-aligned
//! error vector `e`; nothing restricts `e` to accuracy. This module builds
//! error vectors whose slice-level averages correspond to group fairness
//! metrics, so the *same* enumeration finds the top-K slices with the
//! worst:
//!
//! * **false-positive rate** — `e_i = [ŷ_i = 1 ∧ y_i = 0]` restricted to
//!   negatives: a slice's average error over its negative rows is its FPR.
//! * **false-negative rate** — symmetric for positives.
//! * **positive-prediction rate** (demographic parity debugging) —
//!   `e_i = [ŷ_i = 1]`: slices with unusually high average are slices the
//!   model disproportionately flags.
//!
//! The indicator vectors deliberately keep *all* rows (non-relevant rows
//! get error 0) so slice sizes keep their usual meaning; use
//! [`restrict_rows`] to drop non-relevant rows when the rate itself must
//! be the slice average.

use crate::{MlError, Result};

fn check_binary(name: &str, values: &[f64]) -> Result<()> {
    for (i, &v) in values.iter().enumerate() {
        if v != 0.0 && v != 1.0 {
            return Err(MlError::InvalidConfig {
                reason: format!("{name} must be 0/1; found {v} at row {i}"),
            });
        }
    }
    Ok(())
}

/// False-positive indicators: 1 where `ŷ = 1 ∧ y = 0`, else 0.
///
/// ```
/// use sliceline_ml::fairness::false_positive_errors;
/// let e = false_positive_errors(&[0.0, 1.0], &[1.0, 1.0]).unwrap();
/// assert_eq!(e, vec![1.0, 0.0]);
/// ```
pub fn false_positive_errors(y: &[f64], yhat: &[f64]) -> Result<Vec<f64>> {
    if y.len() != yhat.len() {
        return Err(MlError::ShapeMismatch {
            reason: format!("y has {} rows, yhat has {}", y.len(), yhat.len()),
        });
    }
    check_binary("y", y)?;
    check_binary("yhat", yhat)?;
    Ok(y.iter()
        .zip(yhat.iter())
        .map(|(&t, &p)| if p == 1.0 && t == 0.0 { 1.0 } else { 0.0 })
        .collect())
}

/// False-negative indicators: 1 where `ŷ = 0 ∧ y = 1`, else 0.
pub fn false_negative_errors(y: &[f64], yhat: &[f64]) -> Result<Vec<f64>> {
    if y.len() != yhat.len() {
        return Err(MlError::ShapeMismatch {
            reason: format!("y has {} rows, yhat has {}", y.len(), yhat.len()),
        });
    }
    check_binary("y", y)?;
    check_binary("yhat", yhat)?;
    Ok(y.iter()
        .zip(yhat.iter())
        .map(|(&t, &p)| if p == 0.0 && t == 1.0 { 1.0 } else { 0.0 })
        .collect())
}

/// Positive-prediction indicators: 1 where `ŷ = 1` (for demographic-parity
/// style debugging).
pub fn positive_prediction_errors(yhat: &[f64]) -> Result<Vec<f64>> {
    check_binary("yhat", yhat)?;
    Ok(yhat.to_vec())
}

/// Row indexes where `keep` returns true — used to restrict a dataset to
/// the relevant population (e.g. only true negatives for FPR slicing) so
/// the slice average *is* the rate.
pub fn restrict_rows(y: &[f64], keep: impl Fn(f64) -> bool) -> Vec<usize> {
    y.iter()
        .enumerate()
        .filter_map(|(i, &v)| keep(v).then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_positive_indicator() {
        let y = [0.0, 0.0, 1.0, 1.0];
        let yhat = [1.0, 0.0, 1.0, 0.0];
        assert_eq!(
            false_positive_errors(&y, &yhat).unwrap(),
            vec![1.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn false_negative_indicator() {
        let y = [0.0, 0.0, 1.0, 1.0];
        let yhat = [1.0, 0.0, 1.0, 0.0];
        assert_eq!(
            false_negative_errors(&y, &yhat).unwrap(),
            vec![0.0, 0.0, 0.0, 1.0]
        );
    }

    #[test]
    fn positive_prediction_indicator() {
        assert_eq!(
            positive_prediction_errors(&[1.0, 0.0, 1.0]).unwrap(),
            vec![1.0, 0.0, 1.0]
        );
    }

    #[test]
    fn non_binary_rejected() {
        assert!(false_positive_errors(&[0.5], &[1.0]).is_err());
        assert!(false_negative_errors(&[0.0], &[2.0]).is_err());
        assert!(positive_prediction_errors(&[0.3]).is_err());
        assert!(false_positive_errors(&[0.0], &[1.0, 0.0]).is_err());
        assert!(false_negative_errors(&[0.0], &[1.0, 0.0]).is_err());
    }

    #[test]
    fn restrict_rows_filters() {
        let y = [0.0, 1.0, 0.0, 1.0];
        assert_eq!(restrict_rows(&y, |v| v == 0.0), vec![0, 2]);
        assert_eq!(restrict_rows(&y, |v| v == 1.0), vec![1, 3]);
    }
}
