//! # sliceline-ml
//!
//! The ML substrate of the SliceLine reproduction: the models that produce
//! the error vectors `e = err(y, ŷ)` SliceLine debugs.
//!
//! The paper's evaluation (§5.1) trains linear regression (`lm`) for
//! regression datasets and multinomial logistic regression (`mlogit`) for
//! classification, and derives artificial labels for USCensus via K-Means
//! clustering. All three are implemented here from scratch on the
//! `sliceline-linalg` substrate:
//!
//! * [`linreg::LinearRegression`] — ridge-regularized least squares via
//!   normal equations and Cholesky,
//! * [`logreg::MultinomialLogistic`] — softmax regression via batch
//!   gradient descent,
//! * [`kmeans::KMeans`] — Lloyd's algorithm with k-means++ seeding,
//! * [`errors`] — the error functions of §2.1: squared loss for regression
//!   and 0/1 inaccuracy for classification.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod errors;
pub mod fairness;
pub mod kmeans;
pub mod linreg;
pub mod logreg;

pub use errors::{absolute_loss, inaccuracy, squared_loss};
pub use kmeans::KMeans;
pub use linreg::LinearRegression;
pub use logreg::MultinomialLogistic;

/// Errors produced when fitting or applying models.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Features and labels had different row counts, or prediction input
    /// width did not match the trained model.
    ShapeMismatch {
        /// Human-readable description.
        reason: String,
    },
    /// The underlying linear algebra failed (e.g. singular system).
    Numeric {
        /// Human-readable description.
        reason: String,
    },
    /// Invalid hyperparameters (e.g. zero clusters or classes).
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            MlError::Numeric { reason } => write!(f, "numeric failure: {reason}"),
            MlError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Convenience alias for ML results.
pub type Result<T> = std::result::Result<T, MlError>;
