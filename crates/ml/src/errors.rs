//! Error functions `err(y, ŷ)` of the paper's §2.1.
//!
//! SliceLine consumes a non-negative, row-aligned error vector `e`. The
//! paper names classification inaccuracy `e = (y ≠ ŷ)` and squared loss
//! `e = (y − ŷ)²` as the common choices; absolute loss is included as an
//! additional user-defined error function.

use crate::{MlError, Result};

fn check_aligned(y: &[f64], yhat: &[f64]) -> Result<()> {
    if y.len() != yhat.len() {
        return Err(MlError::ShapeMismatch {
            reason: format!("y has {} rows, yhat has {}", y.len(), yhat.len()),
        });
    }
    Ok(())
}

/// Squared loss `e_i = (y_i − ŷ_i)²` for regression tasks.
pub fn squared_loss(y: &[f64], yhat: &[f64]) -> Result<Vec<f64>> {
    check_aligned(y, yhat)?;
    Ok(y.iter()
        .zip(yhat.iter())
        .map(|(&a, &b)| (a - b) * (a - b))
        .collect())
}

/// Absolute loss `e_i = |y_i − ŷ_i|`.
pub fn absolute_loss(y: &[f64], yhat: &[f64]) -> Result<Vec<f64>> {
    check_aligned(y, yhat)?;
    Ok(y.iter()
        .zip(yhat.iter())
        .map(|(&a, &b)| (a - b).abs())
        .collect())
}

/// Classification inaccuracy `e_i = [y_i ≠ ŷ_i]` (0/1 loss).
pub fn inaccuracy(y: &[f64], yhat: &[f64]) -> Result<Vec<f64>> {
    check_aligned(y, yhat)?;
    Ok(y.iter()
        .zip(yhat.iter())
        .map(|(&a, &b)| if a == b { 0.0 } else { 1.0 })
        .collect())
}

/// Overall accuracy `1 − mean(inaccuracy)`; 0 for empty input.
pub fn accuracy(y: &[f64], yhat: &[f64]) -> Result<f64> {
    let e = inaccuracy(y, yhat)?;
    if e.is_empty() {
        return Ok(0.0);
    }
    Ok(1.0 - e.iter().sum::<f64>() / e.len() as f64)
}

/// Root mean squared error; 0 for empty input.
pub fn rmse(y: &[f64], yhat: &[f64]) -> Result<f64> {
    let e = squared_loss(y, yhat)?;
    if e.is_empty() {
        return Ok(0.0);
    }
    Ok((e.iter().sum::<f64>() / e.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_loss_values() {
        let e = squared_loss(&[1.0, 2.0], &[2.0, 0.0]).unwrap();
        assert_eq!(e, vec![1.0, 4.0]);
        assert!(e.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn absolute_loss_values() {
        assert_eq!(
            absolute_loss(&[1.0, -2.0], &[3.0, 0.0]).unwrap(),
            vec![2.0, 2.0]
        );
    }

    #[test]
    fn inaccuracy_zero_one() {
        assert_eq!(
            inaccuracy(&[0.0, 1.0, 2.0], &[0.0, 2.0, 2.0]).unwrap(),
            vec![0.0, 1.0, 0.0]
        );
    }

    #[test]
    fn metrics() {
        assert!((accuracy(&[1.0, 1.0, 0.0], &[1.0, 0.0, 0.0]).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]).unwrap(), 0.0);
        assert_eq!(rmse(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn misaligned_rejected() {
        assert!(squared_loss(&[1.0], &[1.0, 2.0]).is_err());
        assert!(inaccuracy(&[1.0], &[]).is_err());
        assert!(absolute_loss(&[], &[1.0]).is_err());
    }
}
