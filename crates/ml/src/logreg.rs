//! Multinomial logistic regression (`mlogit`) via batch gradient descent
//! on the softmax cross-entropy loss.
//!
//! Used for the paper's classification datasets (Adult 2-class, Covtype
//! 7-class, USCensus 4-class, Criteo 2-class). Labels are class ids
//! `0, 1, …, K-1` encoded as `f64` (matching the label vectors produced by
//! `sliceline-frame`).

use crate::{MlError, Result};
use sliceline_linalg::DenseMatrix;

/// Hyperparameters for [`MultinomialLogistic::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticConfig {
    /// Gradient descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            iterations: 200,
            learning_rate: 0.5,
            l2: 1e-4,
        }
    }
}

/// A fitted multinomial logistic regression model.
///
/// `weights` is `classes × (features + 1)`; the last column is the bias.
#[derive(Debug, Clone, PartialEq)]
pub struct MultinomialLogistic {
    weights: DenseMatrix,
    classes: usize,
}

impl MultinomialLogistic {
    /// Fits softmax regression on features `x` and class-id labels `y`.
    ///
    /// Features are standardized internally (mean 0, stddev 1) for
    /// stable gradient descent; the standardization is folded back into
    /// the stored weights so prediction operates on raw features.
    pub fn fit(x: &DenseMatrix, y: &[f64], config: &LogisticConfig) -> Result<Self> {
        let n = x.rows();
        if n != y.len() {
            return Err(MlError::ShapeMismatch {
                reason: format!("X has {n} rows, y has {}", y.len()),
            });
        }
        if n == 0 {
            return Err(MlError::ShapeMismatch {
                reason: "cannot fit on zero rows".to_string(),
            });
        }
        let classes = y.iter().fold(0usize, |acc, &v| acc.max(v as usize + 1));
        if classes < 2 {
            return Err(MlError::InvalidConfig {
                reason: format!("need at least 2 classes, found {classes}"),
            });
        }
        for (i, &v) in y.iter().enumerate() {
            if v < 0.0 || v.fract() != 0.0 {
                return Err(MlError::InvalidConfig {
                    reason: format!("label {v} at row {i} is not a non-negative class id"),
                });
            }
        }
        let d = x.cols();
        // Standardize features.
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        for r in 0..n {
            for (m, &v) in means.iter_mut().zip(x.row(r).iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        for r in 0..n {
            for ((s, &v), &m) in stds.iter_mut().zip(x.row(r).iter()).zip(means.iter()) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        // Gradient descent on standardized features with bias column.
        let mut w = DenseMatrix::zeros(classes, d + 1);
        let mut probs = vec![0.0; classes];
        let mut grad = DenseMatrix::zeros(classes, d + 1);
        let mut zrow = vec![0.0; d];
        for _ in 0..config.iterations {
            grad.data_mut().iter_mut().for_each(|g| *g = 0.0);
            #[allow(clippy::needless_range_loop)]
            for r in 0..n {
                for ((z, &v), (&m, &s)) in zrow
                    .iter_mut()
                    .zip(x.row(r).iter())
                    .zip(means.iter().zip(stds.iter()))
                {
                    *z = (v - m) / s;
                }
                softmax_scores(&w, &zrow, &mut probs);
                let label = y[r] as usize;
                for (k, &p) in probs.iter().enumerate() {
                    let delta = p - if k == label { 1.0 } else { 0.0 };
                    if delta == 0.0 {
                        continue;
                    }
                    let grow = grad.row_mut(k);
                    for (g, &z) in grow.iter_mut().zip(zrow.iter()) {
                        *g += delta * z;
                    }
                    grow[d] += delta;
                }
            }
            let lr = config.learning_rate / n as f64;
            for k in 0..classes {
                let wrow_start = k * (d + 1);
                for j in 0..=d {
                    let g = grad.get(k, j)
                        + if j < d {
                            config.l2 * w.data()[wrow_start + j] * n as f64
                        } else {
                            0.0
                        };
                    let cur = w.data()[wrow_start + j];
                    w.data_mut()[wrow_start + j] = cur - lr * g;
                }
            }
        }
        // Fold standardization into the weights: w_raw = w_std / s,
        // b_raw = b_std - Σ w_std * m / s.
        let mut folded = DenseMatrix::zeros(classes, d + 1);
        for k in 0..classes {
            let mut bias = w.get(k, d);
            for j in 0..d {
                let wj = w.get(k, j) / stds[j];
                folded.set(k, j, wj);
                bias -= wj * means[j];
            }
            folded.set(k, d, bias);
        }
        Ok(MultinomialLogistic {
            weights: folded,
            classes,
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Class probabilities for each row, returned as `n × classes`.
    pub fn predict_proba(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        let d = self.weights.cols() - 1;
        if x.cols() != d {
            return Err(MlError::ShapeMismatch {
                reason: format!("model has {d} features, input has {}", x.cols()),
            });
        }
        let mut out = DenseMatrix::zeros(x.rows(), self.classes);
        let mut probs = vec![0.0; self.classes];
        for r in 0..x.rows() {
            softmax_scores(&self.weights, x.row(r), &mut probs);
            out.row_mut(r).copy_from_slice(&probs);
        }
        Ok(out)
    }

    /// Most likely class id for each row.
    pub fn predict(&self, x: &DenseMatrix) -> Result<Vec<f64>> {
        let proba = self.predict_proba(x)?;
        Ok((0..proba.rows())
            .map(|r| {
                let row = proba.row(r);
                let mut best = 0usize;
                let mut best_p = f64::NEG_INFINITY;
                for (k, &p) in row.iter().enumerate() {
                    if p > best_p {
                        best_p = p;
                        best = k;
                    }
                }
                best as f64
            })
            .collect())
    }
}

/// Computes softmax probabilities for one feature row given
/// `classes × (d+1)` weights (last column = bias). `features.len()` may be
/// `d` — the bias is always applied.
fn softmax_scores(weights: &DenseMatrix, features: &[f64], out: &mut [f64]) {
    let d = weights.cols() - 1;
    let mut maxz = f64::NEG_INFINITY;
    for (k, o) in out.iter_mut().enumerate() {
        let wrow = weights.row(k);
        let mut z = wrow[d];
        for (w, &v) in wrow[..d].iter().zip(features.iter()) {
            z += w * v;
        }
        *o = z;
        if z > maxz {
            maxz = z;
        }
    }
    let mut sum = 0.0;
    for o in out.iter_mut() {
        *o = (*o - maxz).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_2class() -> (DenseMatrix, Vec<f64>) {
        // Class 0 around (0,0), class 1 around (4,4).
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.1;
            rows.push(vec![jitter, -jitter]);
            y.push(0.0);
            rows.push(vec![4.0 + jitter, 4.0 - jitter]);
            y.push(1.0);
        }
        (DenseMatrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_separable_classes() {
        let (x, y) = separable_2class();
        let m = MultinomialLogistic::fit(&x, &y, &LogisticConfig::default()).unwrap();
        assert_eq!(m.classes(), 2);
        let yhat = m.predict(&x).unwrap();
        let acc = crate::errors::accuracy(&y, &yhat).unwrap();
        assert!(acc > 0.95, "accuracy {acc} too low");
    }

    #[test]
    fn three_class_problem() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..15 {
            let j = (i % 5) as f64 * 0.2;
            rows.push(vec![0.0 + j, 0.0]);
            y.push(0.0);
            rows.push(vec![5.0 + j, 0.0]);
            y.push(1.0);
            rows.push(vec![2.5, 5.0 + j]);
            y.push(2.0);
        }
        let x = DenseMatrix::from_rows(&rows).unwrap();
        let cfg = LogisticConfig {
            iterations: 400,
            ..Default::default()
        };
        let m = MultinomialLogistic::fit(&x, &y, &cfg).unwrap();
        assert_eq!(m.classes(), 3);
        let yhat = m.predict(&x).unwrap();
        let acc = crate::errors::accuracy(&y, &yhat).unwrap();
        assert!(acc > 0.9, "accuracy {acc} too low");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = separable_2class();
        let m = MultinomialLogistic::fit(&x, &y, &LogisticConfig::default()).unwrap();
        let p = m.predict_proba(&x).unwrap();
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let x = DenseMatrix::zeros(2, 1);
        assert!(MultinomialLogistic::fit(&x, &[0.0], &LogisticConfig::default()).is_err());
        // Single class.
        assert!(MultinomialLogistic::fit(&x, &[0.0, 0.0], &LogisticConfig::default()).is_err());
        // Fractional label.
        assert!(MultinomialLogistic::fit(&x, &[0.5, 1.0], &LogisticConfig::default()).is_err());
        // Zero rows.
        assert!(MultinomialLogistic::fit(
            &DenseMatrix::zeros(0, 1),
            &[],
            &LogisticConfig::default()
        )
        .is_err());
        let (xs, ys) = separable_2class();
        let m = MultinomialLogistic::fit(&xs, &ys, &LogisticConfig::default()).unwrap();
        assert!(m.predict(&DenseMatrix::zeros(1, 5)).is_err());
    }
}
