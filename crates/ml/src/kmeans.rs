//! K-Means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! The paper derives artificial labels for the unlabeled USCensus dataset
//! via K-Means (§5.1): cluster ids become the 4-class labels, and a
//! classifier trained on them supplies SliceLine's error vector. The
//! census-like generator in `sliceline-datagen` follows the same recipe.

use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliceline_linalg::DenseMatrix;

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement.
    pub tolerance: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 4,
            max_iterations: 50,
            tolerance: 1e-6,
            seed: 42,
        }
    }
}

/// A fitted K-Means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: DenseMatrix,
}

impl KMeans {
    /// Fits K-Means with k-means++ seeding on the rows of `x`.
    pub fn fit(x: &DenseMatrix, config: &KMeansConfig) -> Result<Self> {
        let n = x.rows();
        let d = x.cols();
        if config.k == 0 {
            return Err(MlError::InvalidConfig {
                reason: "k must be positive".to_string(),
            });
        }
        if n < config.k {
            return Err(MlError::ShapeMismatch {
                reason: format!("{n} rows cannot form {} clusters", config.k),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = kmeanspp_init(x, config.k, &mut rng);
        let mut assign = vec![0usize; n];
        for _ in 0..config.max_iterations {
            // Assignment step.
            for (r, a) in assign.iter_mut().enumerate() {
                *a = nearest_centroid(x.row(r), &centroids).0;
            }
            // Update step.
            let mut sums = DenseMatrix::zeros(config.k, d);
            let mut counts = vec![0usize; config.k];
            for (r, &a) in assign.iter().enumerate() {
                counts[a] += 1;
                let srow = sums.row_mut(a);
                for (s, &v) in srow.iter_mut().zip(x.row(r).iter()) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            #[allow(clippy::needless_range_loop)]
            for k in 0..config.k {
                if counts[k] == 0 {
                    // Re-seed empty clusters at a random point.
                    let r = rng.gen_range(0..n);
                    let row = x.row(r).to_vec();
                    centroids.row_mut(k).copy_from_slice(&row);
                    continue;
                }
                let inv = 1.0 / counts[k] as f64;
                for j in 0..d {
                    let newv = sums.get(k, j) * inv;
                    movement += (newv - centroids.get(k, j)).abs();
                    centroids.set(k, j, newv);
                }
            }
            if movement < config.tolerance {
                break;
            }
        }
        Ok(KMeans { centroids })
    }

    /// The fitted centroids (`k × d`).
    pub fn centroids(&self) -> &DenseMatrix {
        &self.centroids
    }

    /// Assigns each row of `x` its nearest centroid id as `f64` labels.
    pub fn predict(&self, x: &DenseMatrix) -> Result<Vec<f64>> {
        if x.cols() != self.centroids.cols() {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "model has {} features, input has {}",
                    self.centroids.cols(),
                    x.cols()
                ),
            });
        }
        Ok((0..x.rows())
            .map(|r| nearest_centroid(x.row(r), &self.centroids).0 as f64)
            .collect())
    }

    /// Total within-cluster sum of squared distances for `x`.
    pub fn inertia(&self, x: &DenseMatrix) -> Result<f64> {
        if x.cols() != self.centroids.cols() {
            return Err(MlError::ShapeMismatch {
                reason: "feature mismatch".to_string(),
            });
        }
        Ok((0..x.rows())
            .map(|r| nearest_centroid(x.row(r), &self.centroids).1)
            .sum())
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

fn nearest_centroid(row: &[f64], centroids: &DenseMatrix) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for k in 0..centroids.rows() {
        let d = sq_dist(row, centroids.row(k));
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    (best, best_d)
}

/// k-means++ initialization: first centroid uniform, subsequent centroids
/// sampled proportionally to squared distance from the nearest chosen one.
fn kmeanspp_init(x: &DenseMatrix, k: usize, rng: &mut StdRng) -> DenseMatrix {
    let n = x.rows();
    let d = x.cols();
    let mut centroids = DenseMatrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    let first_row = x.row(first).to_vec();
    centroids.row_mut(0).copy_from_slice(&first_row);
    let mut dists: Vec<f64> = (0..n).map(|r| sq_dist(x.row(r), x.row(first))).collect();
    for c in 1..k {
        let total: f64 = dists.iter().sum();
        let pick = if total > 0.0 {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (r, &dist) in dists.iter().enumerate() {
                if target < dist {
                    chosen = r;
                    break;
                }
                target -= dist;
            }
            chosen
        } else {
            rng.gen_range(0..n)
        };
        let chosen_row = x.row(pick).to_vec();
        centroids.row_mut(c).copy_from_slice(&chosen_row);
        for (r, dist) in dists.iter_mut().enumerate() {
            let nd = sq_dist(x.row(r), &chosen_row);
            if nd < *dist {
                *dist = nd;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> DenseMatrix {
        // Three well-separated blobs of 10 points each.
        let mut rows = Vec::new();
        for i in 0..10 {
            let j = (i % 5) as f64 * 0.05;
            rows.push(vec![0.0 + j, 0.0 - j]);
            rows.push(vec![10.0 + j, 10.0 - j]);
            rows.push(vec![-10.0 - j, 10.0 + j]);
        }
        DenseMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_separated_blobs() {
        let x = blobs();
        let cfg = KMeansConfig {
            k: 3,
            ..Default::default()
        };
        let m = KMeans::fit(&x, &cfg).unwrap();
        let labels = m.predict(&x).unwrap();
        // Points within one blob share a label; different blobs differ.
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[1], labels[4]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
        // Inertia is small relative to blob separation.
        assert!(m.inertia(&x).unwrap() < 10.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let x = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 7,
            ..Default::default()
        };
        let a = KMeans::fit(&x, &cfg).unwrap();
        let b = KMeans::fit(&x, &cfg).unwrap();
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn invalid_configs() {
        let x = blobs();
        assert!(KMeans::fit(
            &x,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(
            &DenseMatrix::zeros(2, 2),
            &KMeansConfig {
                k: 3,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn predict_shape_checked() {
        let x = blobs();
        let m = KMeans::fit(
            &x,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.predict(&DenseMatrix::zeros(1, 9)).is_err());
        assert!(m.inertia(&DenseMatrix::zeros(1, 9)).is_err());
    }

    #[test]
    fn k_equals_n_is_allowed() {
        let x = DenseMatrix::from_rows(&[vec![0.0], vec![5.0], vec![10.0]]).unwrap();
        let m = KMeans::fit(
            &x,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let labels = m.predict(&x).unwrap();
        let mut distinct = labels.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
    }
}
