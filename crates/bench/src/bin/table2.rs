//! Table 2 — CriteoSim slice enumeration statistics.
//!
//! The paper's CriteoD21 run (192M × 75.6M one-hot, density 4.9e-7) shows
//! the ultra-sparse regime: only 209 of 75,573,541 basic slices satisfy
//! σ = n/100; pruning keeps pair candidates close to the valid count; and
//! correlations prevent early termination through level 6. The simulated
//! Criteo generator reproduces the head/tail survival pattern at any
//! scale; this binary prints the same per-level rows (candidates, valid
//! slices, cumulative elapsed time).

use sliceline::{MinSupport, SliceLine, SliceLineConfig};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_datagen::criteo_like;
use sliceline_frame::onehot::one_hot_encode;

fn main() {
    let args = BenchArgs::parse();
    banner("Table 2: Criteo Slice Enumeration Statistics", &args);
    let d = criteo_like(&args.gen_config());
    let x = one_hot_encode(&d.x0);
    println!(
        "CriteoSim: n={}, m={}, l={}, one-hot density {:.2e}\n",
        d.n(),
        d.m(),
        d.l(),
        x.density()
    );
    let mut config = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .max_level(6)
        .threads(args.resolved_threads())
        .build()
        .expect("static config");
    config.min_support = MinSupport::Fraction(0.01);
    let result = SliceLine::new(config)
        .find_slices(&d.x0, &d.errors)
        .expect("generated input is valid");
    let mut table = TextTable::new(&[
        "Lattice Level",
        "Candidates",
        "Valid Slices",
        "Elapsed Time",
    ]);
    let mut cumulative = std::time::Duration::ZERO;
    for l in &result.stats.levels {
        cumulative += l.elapsed;
        table.row(&[
            if l.level == 1 {
                "1 (Init)".to_string()
            } else {
                l.level.to_string()
            },
            l.candidates.to_string(),
            l.valid.to_string(),
            fmt_secs(cumulative),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape (paper Table 2): a tiny fraction of the {} one-hot \
         columns survives sigma at level 1; candidates stay close to valid \
         slices afterwards; no early termination through level 6.",
        d.l()
    );
}
