//! Figure 3 — pruning-technique ablation on Salaries 2×2.
//!
//! The paper replicates the tiny Salaries dataset 2× row-wise and 2×
//! column-wise (m = 10, so L ≤ 10) and runs five configurations:
//! (1) all pruning, (2) no parent handling, (3) + no score pruning,
//! (4) + no size pruning, (5) no pruning and no deduplication.
//! Fig. 3a reports the number of evaluated slices per level, Fig. 3b the
//! end-to-end runtime. Configurations without dedup/pruning blow up
//! exponentially (the paper's ran out of memory after level 4 — we cap
//! config (5) at level 4 for the same reason).

use sliceline::{PruningConfig, SliceLine, SliceLineConfig};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_datagen::salaries_encoded;
use sliceline_linalg::ExecStats;

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 3: Pruning Techniques on Salaries 2x2", &args);
    let enc = salaries_encoded();
    let x0 = enc.x0.replicate_rows(2).replicate_cols(2);
    // Regression errors against a simple mean predictor on the replicated
    // labels (the ablation only needs a plausible error distribution).
    let labels = enc.labels.expect("salaries has labels");
    let labels2: Vec<f64> = labels.iter().chain(labels.iter()).copied().collect();
    let mean = labels2.iter().sum::<f64>() / labels2.len() as f64;
    // Normalize squared errors to keep scores in a readable range.
    let scale = 1e-8;
    let errors: Vec<f64> = labels2
        .iter()
        .map(|&y| (y - mean) * (y - mean) * scale)
        .collect();
    let configs: Vec<(&str, PruningConfig, usize)> = vec![
        ("(1) all pruning", PruningConfig::all(), usize::MAX),
        (
            "(2) no parent handling",
            PruningConfig::no_parent_handling(),
            usize::MAX,
        ),
        (
            "(3) + no score pruning",
            PruningConfig::no_score_pruning(),
            usize::MAX,
        ),
        ("(4) + no size pruning", PruningConfig::no_size_pruning(), 6),
        ("(5) no pruning, no dedup", PruningConfig::none(), 4),
    ];
    let sigma = (x0.rows() / 100).max(1);
    let mut per_level = TextTable::new(&[
        "config", "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10",
    ]);
    let mut runtime = TextTable::new(&["config", "total runtime", "slices evaluated"]);
    let mut exec_profiles: Vec<(&str, ExecStats)> = Vec::new();
    for (name, pruning, cap) in configs {
        let config = SliceLineConfig::builder()
            .k(4)
            .alpha(0.95)
            .min_support(sigma)
            .max_level(cap)
            .threads(args.resolved_threads())
            .pruning(pruning)
            .build()
            .expect("static config is valid");
        let exec = config.exec_context();
        exec.enable_stats(true);
        let result = SliceLine::new(config)
            .find_slices_in(&x0, &errors, &exec)
            .expect("salaries input is valid");
        exec_profiles.push((name, exec.exec_stats()));
        let mut cells = vec![name.to_string()];
        for lvl in 1..=10usize {
            let count = result
                .stats
                .levels
                .iter()
                .find(|l| l.level == lvl)
                .map(|l| l.candidates.to_string())
                .unwrap_or_else(|| "-".to_string());
            cells.push(count);
        }
        per_level.row(&cells);
        runtime.row(&[
            name.to_string(),
            fmt_secs(result.stats.total_elapsed),
            result.stats.total_evaluated().to_string(),
        ]);
    }
    println!("(a) Number of evaluated slices per lattice level");
    println!("{}", per_level.render());
    println!("(b) End-to-end runtime");
    println!("{}", runtime.render());
    println!("(c) Execution-layer telemetry, all-pruning configuration");
    println!("{}", exec_profiles[0].1.render_table());
    if args.stats_json {
        println!("\n--stats-json dump (one object per configuration):");
        for (name, stats) in &exec_profiles {
            println!("{{\"config\":\"{}\",\"stats\":{}}}", name, stats.to_json());
        }
    }
    println!(
        "expected shape (paper Fig. 3): every pruning technique reduces the \
         enumerated slices; config (5) grows exponentially and is only \
         feasible for a few levels."
    );
}
