//! Figure 5 — scoring-parameter sensitivity (and the §5.3 σ sweep).
//!
//! (a)/(b): fixing σ = n/100 and sweeping the weight
//! α ∈ {0.36, 0.68, 0.84, 0.92, 0.96, 0.98, 0.99} with ⌈L⌉ = 3, the paper
//! reports the top-1 slice's score (increasing in α) and size (decreasing
//! in α). The text additionally sweeps σ ∈ [1e-4·n, 1e-1·n] at α = 0.95,
//! K = 10: scores barely move but runtime grows by an order of magnitude
//! as σ shrinks.

use sliceline::{MinSupport, SliceLine, SliceLineConfig};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_datagen::{adult_like, census_like, kdd98_like};

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 5: Scores with Varying Scoring Parameters", &args);
    let cfg = args.gen_config();
    // CensusSim runs at 0.3x the requested scale: its per-level candidate
    // counts match the paper's (tens of thousands) and the 11-run sweep
    // would otherwise dominate wall time. Raise --scale to compensate.
    let census_cfg = args.gen_config_scaled(args.scale * 0.3);
    let datasets = vec![adult_like(&cfg), kdd98_like(&cfg), census_like(&census_cfg)];
    let alphas = [0.36, 0.68, 0.84, 0.92, 0.96, 0.98, 0.99];

    println!("(a)/(b) alpha sweep: top-1 score and size (sigma=n/100, L<=3)");
    let mut score_table = TextTable::new(&[
        "dataset", "a=0.36", "a=0.68", "a=0.84", "a=0.92", "a=0.96", "a=0.98", "a=0.99",
    ]);
    let mut size_table = score_table.clone();
    let mut time_table = score_table.clone();
    for d in &datasets {
        let mut scores = vec![d.name.clone()];
        let mut sizes = vec![d.name.clone()];
        let mut times = vec![d.name.clone()];
        for &alpha in &alphas {
            let mut config = SliceLineConfig::builder()
                .k(4)
                .alpha(alpha)
                .max_level(3)
                // Low alpha floods the near-full-slice lattice; the Auto
                // kernel switches to the fused single-scan plan for huge
                // candidate sets (the SystemDS dynamic-recompilation
                // analog) so the sweep stays tractable.
                .eval(sliceline::EvalKernel::Auto {
                    block_size: 16,
                    fused_above: 4096,
                })
                .threads(args.resolved_threads())
                .build()
                .expect("static config");
            config.min_support = MinSupport::Fraction(0.01);
            let result = SliceLine::new(config)
                .find_slices(&d.x0, &d.errors)
                .expect("generated input is valid");
            match result.top_k.first() {
                Some(top) => {
                    scores.push(format!("{:.3}", top.score));
                    sizes.push(format!("{}", top.size as u64));
                }
                None => {
                    scores.push("-".to_string());
                    sizes.push("-".to_string());
                }
            }
            times.push(fmt_secs(result.stats.total_elapsed));
        }
        score_table.row(&scores);
        size_table.row(&sizes);
        time_table.row(&times);
    }
    println!("top-1 score:\n{}", score_table.render());
    println!("top-1 size:\n{}", size_table.render());
    println!("runtime:\n{}", time_table.render());

    println!("sigma sweep (alpha=0.95, K=10, L<=3): top-1 score and runtime");
    let fractions = [1e-4, 1e-3, 1e-2, 1e-1];
    let mut sigma_table =
        TextTable::new(&["dataset", "s=1e-4*n", "s=1e-3*n", "s=1e-2*n", "s=1e-1*n"]);
    let mut sigma_time = sigma_table.clone();
    for d in &datasets {
        let mut scores = vec![d.name.clone()];
        let mut times = vec![d.name.clone()];
        for &f in &fractions {
            let mut config = SliceLineConfig::builder()
                .k(10)
                .alpha(0.95)
                .max_level(3)
                .eval(sliceline::EvalKernel::Auto {
                    block_size: 16,
                    fused_above: 4096,
                })
                .threads(args.resolved_threads())
                .build()
                .expect("static config");
            config.min_support = MinSupport::Fraction(f);
            let result = SliceLine::new(config)
                .find_slices(&d.x0, &d.errors)
                .expect("generated input is valid");
            scores.push(
                result
                    .top_k
                    .first()
                    .map(|t| format!("{:.3}", t.score))
                    .unwrap_or_else(|| "-".to_string()),
            );
            times.push(fmt_secs(result.stats.total_elapsed));
        }
        sigma_table.row(&scores);
        sigma_time.row(&times);
    }
    println!("top-1 score:\n{}", sigma_table.render());
    println!("runtime:\n{}", sigma_time.render());
    println!(
        "expected shape (paper Fig. 5 / §5.3): scores increase and sizes \
         decrease with larger alpha; sigma barely moves the scores but \
         shrinking it inflates the runtime."
    );
}
