//! Diagnostic: distribution of basic-slice score upper bounds vs the
//! top-K threshold on a generated dataset. Helps tune generators so the
//! enumeration characteristics match the paper's.

use sliceline::ScoringContext;
use sliceline_bench::BenchArgs;
use sliceline_frame::onehot::one_hot_encode;

fn main() {
    let args = BenchArgs::parse();
    let name = std::env::var("PROBE_DATASET").unwrap_or_else(|_| "kdd98".to_string());
    let cfg = args.gen_config();
    let d = match name.as_str() {
        "adult" => sliceline_datagen::adult_like(&cfg),
        "census" => sliceline_datagen::census_like(&cfg),
        "covtype" => sliceline_datagen::covtype_like(&cfg),
        "criteo" => sliceline_datagen::criteo_like(&cfg),
        _ => sliceline_datagen::kdd98_like(&cfg),
    };
    let x = one_hot_encode(&d.x0);
    let n = d.n();
    let sigma = (n / 100).max(1);
    let sums = sliceline_linalg::agg::col_sums_csr(&x);
    let errs = x.vecmat(&d.errors).expect("aligned");
    let mut sms = vec![0.0f64; x.cols()];
    for r in 0..n {
        let e = d.errors[r];
        if e == 0.0 {
            continue;
        }
        for &c in x.row_cols(r) {
            if e > sms[c as usize] {
                sms[c as usize] = e;
            }
        }
    }
    let ctx = ScoringContext::new(&d.errors, 0.95);
    let mut scores: Vec<f64> = Vec::new();
    let mut bounds: Vec<f64> = Vec::new();
    for c in 0..x.cols() {
        if sums[c] >= sigma as f64 && errs[c] > 0.0 {
            scores.push(ctx.score(sums[c], errs[c]));
            bounds.push(ctx.score_upper_bound(sums[c], errs[c], sms[c], sigma));
        }
    }
    scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
    bounds.sort_by(|a, b| b.partial_cmp(a).unwrap());
    println!(
        "{}: n={} l={} sigma={} valid_basic={} e_tot={:.1}",
        d.name,
        n,
        x.cols(),
        sigma,
        scores.len(),
        ctx.total_error
    );
    println!("top-8 scores: {:?}", &scores[..8.min(scores.len())]);
    let threshold = scores.get(3).copied().unwrap_or(0.0).max(0.0);
    println!("threshold (4th score): {threshold:.3}");
    let surviving = bounds.iter().filter(|&&b| b > threshold).count();
    println!(
        "parents surviving pre-filter: {surviving} (=> ~{} pairs)",
        surviving * surviving.saturating_sub(1) / 2
    );
    for pct in [50, 90, 99] {
        let i = bounds.len() * pct / 100;
        println!(
            "bound p{pct}: {:.3}",
            bounds.get(i).copied().unwrap_or(f64::NAN)
        );
    }
    println!(
        "bound max: {:.3}",
        bounds.first().copied().unwrap_or(f64::NAN)
    );
    // Characterize survivors: which feature/domain class do they live in?
    let begins = d.features.onehot_begin();
    let mut survivors: Vec<(usize, u32, f64, f64, f64, f64)> = Vec::new();
    for c in 0..x.cols() {
        if sums[c] >= sigma as f64 && errs[c] > 0.0 {
            let b = ctx.score_upper_bound(sums[c], errs[c], sms[c], sigma);
            if b > threshold {
                let j = match begins.binary_search(&c) {
                    Ok(i) => i,
                    Err(i) => i - 1,
                };
                survivors.push((j, d.x0.domains()[j], sums[c], errs[c], sms[c], b));
            }
        }
    }
    use std::collections::BTreeMap;
    let mut by_domain: BTreeMap<u32, usize> = BTreeMap::new();
    for &(_, dom, ..) in &survivors {
        *by_domain.entry(dom).or_default() += 1;
    }
    println!("survivors by feature domain: {by_domain:?}");
    survivors.sort_by(|a, b| b.5.partial_cmp(&a.5).unwrap());
    for (j, dom, ss, se, sm, b) in survivors.iter().take(8) {
        println!("  f{j} (dom {dom}): ss={ss:.0} se={se:.1} sm={sm:.1} bound={b:.2}");
    }
    if survivors.len() > 8 {
        let (j, dom, ss, se, sm, b) = &survivors[survivors.len() / 2];
        println!(
            "  median survivor: f{j} (dom {dom}): ss={ss:.0} se={se:.1} sm={sm:.1} bound={b:.2}"
        );
    }
}
