//! Session/service-layer benchmark: cold vs warm vs delta re-slicing.
//!
//! Measures the three request shapes the serving layer distinguishes:
//!
//! * **cold** — build a [`DatasetSession`] from raw `(X, errors)` and run
//!   the first query (encode + basic stats + bitmap pack + lattice);
//! * **warm** — repeat the same query against the resident session
//!   (prepare work amortized away, only the lattice runs);
//! * **delta** — [`DatasetSession::swap_errors`] with a retrained model's
//!   error vector, then re-query (stats recomputed, encode/pack kept),
//!   compared against the cold rebuild a session-less server would pay.
//!
//! A final phase pushes concurrent jobs for two tenants through the
//! [`JobQueue`] and reports end-to-end throughput.
//!
//! ```text
//! cargo run --release -p sliceline-bench --bin serve_bench -- --stats-json
//! ```
//!
//! `--stats-json` writes machine-readable results to stdout (tables move
//! to stderr); the committed `BENCH_serve.json` is that output.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliceline::config::EvalKernel;
use sliceline::{DatasetSession, SliceLine, SliceLineConfig, SliceQuery};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_frame::IntMatrix;
use sliceline_serve::{DatasetRegistry, JobQueue};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timed repetitions per phase (median reported).
const RUNS: usize = 7;
/// Jobs submitted in the throughput phase.
const JOBS: usize = 32;

/// Planted workload: `n` rows over `m` categorical features, a hot
/// `f0=1 ∧ f1=1` subgroup carrying most of the error mass, plus a second
/// error vector simulating a retrained model whose hot slice moved.
fn workload(seed: u64, scale: f64) -> (IntMatrix, Vec<f64>, Vec<f64>) {
    let n = ((40_000.0 * scale) as usize).max(1_000);
    let m = 6usize;
    let domain = 6u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut errors = Vec::with_capacity(n);
    let mut errors2 = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<u32> = (0..m).map(|_| 1 + rng.gen_range(0..domain)).collect();
        let hot = row[0] == 1 && row[1] == 1;
        let moved = row[1] == 2 && row[2] == 1;
        let base: f64 = rng.gen_range(0.0..0.05);
        errors.push(if hot { 0.9 + base } else { base });
        errors2.push(if moved { 0.9 + base } else { base });
        rows.push(row);
    }
    (IntMatrix::from_rows(&rows).unwrap(), errors, errors2)
}

fn config(threads: usize, n: usize) -> SliceLineConfig {
    let mut cfg = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .min_support((n / 100).max(32))
        .threads(threads)
        .build()
        .expect("static config is valid");
    cfg.eval = EvalKernel::Bitmap;
    cfg
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let args = BenchArgs::parse();
    if !args.stats_json {
        banner("Serve: cold vs warm vs delta re-slicing", &args);
    }
    let (x0, errors, errors2) = workload(args.seed, args.scale);
    let n = x0.rows();
    let cfg = config(args.resolved_threads(), n);
    let exec = cfg.exec_context();
    let query = SliceQuery::new(cfg.clone());

    // Cold: session build + first query, every time (what a stateless
    // server pays per request). One-shot find_slices is the parity oracle.
    let one_shot = SliceLine::new(cfg.clone())
        .find_slices(&x0, &errors)
        .expect("workload is valid");
    let oracle = one_shot.top_k.first().map(|s| s.score).unwrap_or(f64::NAN);
    let mut cold_samples = Vec::with_capacity(RUNS);
    let mut cold_top = f64::NAN;
    for _ in 0..RUNS {
        let start = Instant::now();
        let mut session = DatasetSession::new(&x0, &errors, &exec).expect("valid");
        let result = session.query(&query).expect("valid");
        cold_samples.push(start.elapsed().as_secs_f64());
        cold_top = result.top_k.first().map(|s| s.score).unwrap_or(f64::NAN);
    }
    let parity = if cold_top.to_bits() == oracle.to_bits() {
        "ok"
    } else {
        "MISMATCH"
    };

    // Warm: repeat queries against one resident session.
    let mut session = DatasetSession::new(&x0, &errors, &exec).expect("valid");
    session.query(&query).expect("valid"); // populate the bitmap pack
    let mut warm_samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        session.query(&query).expect("valid");
        warm_samples.push(start.elapsed().as_secs_f64());
    }

    // Delta: swap in the retrained errors and re-query, vs the cold
    // rebuild a session-less server would run on the new vector.
    let mut delta_samples = Vec::with_capacity(RUNS);
    let mut rebuild_samples = Vec::with_capacity(RUNS);
    for i in 0..RUNS {
        let (ea, eb) = if i % 2 == 0 {
            (&errors2, &errors)
        } else {
            (&errors, &errors2)
        };
        let start = Instant::now();
        session.swap_errors(ea).expect("valid");
        session.query(&query).expect("valid");
        delta_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let mut fresh = DatasetSession::new(&x0, ea, &exec).expect("valid");
        fresh.query(&query).expect("valid");
        rebuild_samples.push(start.elapsed().as_secs_f64());
        session.swap_errors(eb).expect("valid"); // restore for next lap
    }

    // Throughput: two tenants, concurrent jobs through the queue.
    let registry = Arc::new(DatasetRegistry::new(exec.clone()));
    let id_a = registry.register(&x0, &errors).expect("valid");
    let id_b = registry.register(&x0, &errors2).expect("valid");
    let workers = args.resolved_threads().max(2);
    let queue = JobQueue::new(Arc::clone(&registry), workers);
    let start = Instant::now();
    let ids: Vec<u64> = (0..JOBS)
        .map(|i| {
            let dataset = if i % 2 == 0 { &id_a } else { &id_b };
            queue
                .submit(dataset, SliceQuery::new(cfg.clone()))
                .expect("datasets are registered")
        })
        .collect();
    for id in &ids {
        let status = queue.wait(*id).expect("job exists");
        assert!(status.result.is_some(), "job {id} did not finish Done");
    }
    let queue_wall = start.elapsed().as_secs_f64();

    let cold = median(&mut cold_samples);
    let warm = median(&mut warm_samples);
    let delta = median(&mut delta_samples);
    let rebuild = median(&mut rebuild_samples);
    let jobs_per_sec = JOBS as f64 / queue_wall;

    let mut table = TextTable::new(&["phase", "median wall", "speedup vs cold"]);
    table.row(&[
        "cold (build+query)".into(),
        fmt_secs(Duration::from_secs_f64(cold)),
        "1.00x".into(),
    ]);
    table.row(&[
        "warm (re-query)".into(),
        fmt_secs(Duration::from_secs_f64(warm)),
        format!("{:.2}x", cold / warm),
    ]);
    table.row(&[
        "delta (swap+query)".into(),
        fmt_secs(Duration::from_secs_f64(delta)),
        format!("{:.2}x", rebuild / delta),
    ]);
    table.row(&[
        "rebuild (new errors)".into(),
        fmt_secs(Duration::from_secs_f64(rebuild)),
        "1.00x".into(),
    ]);
    let report = format!(
        "{}\nparity: {} (top-1 score {:.6})\nqueue: {} jobs x {} workers in {} = {:.1} jobs/s",
        table.render(),
        parity,
        cold_top,
        JOBS,
        workers,
        fmt_secs(Duration::from_secs_f64(queue_wall)),
        jobs_per_sec,
    );
    if args.stats_json {
        eprintln!("{report}");
        println!("{{");
        println!("  \"bench\": \"serve_bench\",");
        println!("  \"threads\": {},", args.resolved_threads());
        println!("  \"scale\": {},", args.scale);
        println!("  \"seed\": {},", args.seed);
        println!("  \"parity\": \"{parity}\",");
        println!(
            "  \"workload\": {{\"rows\": {}, \"features\": {}, \"runs\": {}}},",
            n,
            x0.cols(),
            RUNS
        );
        println!("  \"cold_secs\": {cold:.6e},");
        println!("  \"warm_secs\": {warm:.6e},");
        println!("  \"delta_secs\": {delta:.6e},");
        println!("  \"rebuild_secs\": {rebuild:.6e},");
        println!("  \"warm_speedup\": {:.3},", cold / warm);
        println!("  \"delta_speedup\": {:.3},", rebuild / delta);
        println!(
            "  \"queue\": {{\"jobs\": {JOBS}, \"workers\": {workers}, \"wall_secs\": {queue_wall:.6e}, \"jobs_per_sec\": {jobs_per_sec:.1}}}"
        );
        println!("}}");
    } else {
        println!("{report}");
        println!(
            "expected shape: warm re-queries skip encode/stats/pack and run \
             measurably faster than cold builds; delta re-slicing after an \
             error swap beats rebuilding the session from scratch."
        );
    }
}
