//! Adaptive-compaction comparison — compaction off vs on, level by level.
//!
//! Two sections:
//!
//! 1. **Parity gate** (always runs; `--parity-gate` stops after it):
//!    compaction `Off`, `On`, and `Auto` must return bit-for-bit
//!    identical top-K slices and per-level enumeration counters on
//!    AdultSim data plus a hot/cold workload, across all three
//!    evaluation kernels and both enumeration engines, single-threaded.
//!    Any divergence exits non-zero, so CI gates on this binary
//!    (the `compact-smoke` job).
//!
//! 2. **Timing sweep**: a generated hot/cold workload whose
//!    surviving-candidate coverage collapses to the hot fraction (40%)
//!    after level 1 — the regime §5's dynamic input reduction targets.
//!    Per-level wall times with compaction off vs on, and the headline:
//!    total level-≥3 time, where every evaluation runs against the
//!    gathered working set.
//!
//! ```sh
//! cargo run --release -p sliceline-bench --bin compact_compare -- --stats-json
//! ```
//!
//! `--stats-json` writes machine-readable results to stdout (tables move
//! to stderr); the committed `BENCH_compact.json` is that output.

use sliceline::config::{CompactKernel, EnumKernel, EvalKernel};
use sliceline::{SliceLine, SliceLineConfig, SliceLineResult};
use sliceline_bench::{banner, BenchArgs, TextTable};
use sliceline_datagen::adult_like;
use sliceline_frame::IntMatrix;

/// SplitMix64 — deterministic workload generation without a rand dep.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Hot/cold workload: `hot_frac` of the rows draw from a small hot code
/// domain and carry error ≈ 1; the rest sit on disjoint cold codes with
/// *tiny but positive* errors. Cold basic slices therefore survive
/// projection — their columns and nonzeros stay in the working set, so
/// compaction-off kernels keep scanning them — but their score upper
/// bounds fall below the top-K threshold after level 1, dropping them
/// from the eligible-parent set. Coverage collapses to the hot block
/// (well under the default 0.7 threshold) and the gather removes rows
/// that were genuinely costing evaluation time.
fn hot_cold(seed: u64, n: usize, hot_frac: f64) -> (IntMatrix, Vec<f64>, usize) {
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let hot = ((n as f64) * hot_frac) as usize;
    let m = 6usize;
    let mut rows = Vec::with_capacity(n);
    let mut errors = Vec::with_capacity(n);
    for i in 0..n {
        if i < hot {
            let row: Vec<u32> = (0..m).map(|_| 1 + rng.below(3) as u32).collect();
            // Errors grow with the number of code-1 features: deep
            // conjunctions (more code-1 predicates) have genuinely
            // higher mean error, so the lattice stays populated through
            // levels 3–4 instead of score-pruning to nothing.
            let depth = row.iter().take(4).filter(|&&v| v == 1).count();
            errors.push(0.3 + 0.4 * depth as f64 + 0.3 * rng.f64());
            rows.push(row);
        } else {
            rows.push((0..m).map(|_| 4 + rng.below(4) as u32).collect::<Vec<_>>());
            errors.push(1e-7 * (0.5 + rng.f64()));
        }
    }
    (IntMatrix::from_rows(&rows).unwrap(), errors, hot)
}

fn config(
    eval: EvalKernel,
    enum_kernel: EnumKernel,
    compact: CompactKernel,
    threads: usize,
    max_level: usize,
) -> SliceLineConfig {
    // k below the hot basic-slice count (18), so the level-1 top-K fills
    // with hot slices and the score-pruning threshold goes positive —
    // which is what evicts the near-zero-error cold slices from the
    // eligible-parent set. High enough that the threshold stays gentle
    // and deeper hot candidates keep flowing.
    SliceLineConfig::builder()
        .k(16)
        .min_support(32)
        .alpha(0.95)
        .eval(eval)
        .enum_kernel(enum_kernel)
        .max_level(max_level)
        .threads(threads)
        .compact(compact)
        .build()
        .unwrap()
}

/// Bit-for-bit run comparison (single-threaded runs only); returns an
/// error string naming the first divergence.
fn same_run(base: &SliceLineResult, other: &SliceLineResult) -> Result<(), String> {
    if base.top_k != other.top_k {
        return Err("top-K diverged".to_string());
    }
    if base.stats.levels.len() != other.stats.levels.len() {
        return Err("level count diverged".to_string());
    }
    for (a, b) in base.stats.levels.iter().zip(&other.stats.levels) {
        if a.candidates != b.candidates || a.valid != b.valid {
            return Err(format!("level {} counters diverged", a.level));
        }
        let same_enum = match (&a.enumeration, &b.enumeration) {
            (None, None) => true,
            (Some(ea), Some(eb)) => ea.same_counters(eb),
            _ => false,
        };
        if !same_enum {
            return Err(format!("level {} enumeration stats diverged", a.level));
        }
    }
    Ok(())
}

/// Runs the full off ≡ on ≡ auto parity matrix on one dataset; returns
/// the number of (kernel × engine × policy) cells checked.
fn parity_matrix(x0: &IntMatrix, errors: &[f64], what: &str) -> usize {
    let evals = [
        EvalKernel::Blocked { block_size: 16 },
        EvalKernel::Fused,
        EvalKernel::Bitmap,
    ];
    let enums = [EnumKernel::Serial, EnumKernel::Sharded { shards: 2 }];
    let mut cells = 0usize;
    for eval in evals {
        for enum_kernel in enums {
            let run = |compact: CompactKernel| {
                SliceLine::new(config(eval, enum_kernel, compact, 1, 4))
                    .find_slices(x0, errors)
                    .expect("run failed")
            };
            let off = run(CompactKernel::Off);
            for policy in [CompactKernel::On, CompactKernel::Auto { min_rows: 1 }] {
                if let Err(msg) = same_run(&off, &run(policy)) {
                    eprintln!(
                        "PARITY FAILURE: {what}: {msg} (eval {eval:?}, enum {enum_kernel:?}, \
                         policy {policy:?})"
                    );
                    std::process::exit(1);
                }
                cells += 1;
            }
        }
    }
    cells
}

/// Times one policy, returning per-level seconds (min over `reps`) and
/// the final run's per-level retained rows.
fn time_policy(
    x0: &IntMatrix,
    errors: &[f64],
    eval: EvalKernel,
    compact: CompactKernel,
    threads: usize,
    reps: usize,
) -> (Vec<f64>, Vec<usize>) {
    let mut best: Vec<f64> = Vec::new();
    let mut retained: Vec<usize> = Vec::new();
    for _ in 0..reps {
        let r = SliceLine::new(config(eval, EnumKernel::default(), compact, threads, 4))
            .find_slices(x0, errors)
            .expect("run failed");
        let secs: Vec<f64> = r
            .stats
            .levels
            .iter()
            .map(|l| l.elapsed.as_secs_f64())
            .collect();
        if best.is_empty() {
            best = secs;
        } else {
            for (b, s) in best.iter_mut().zip(secs) {
                *b = b.min(s);
            }
        }
        retained = r.stats.levels.iter().map(|l| l.rows_retained).collect();
    }
    (best, retained)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parity_gate = raw.iter().any(|a| a == "--parity-gate");
    let args = BenchArgs::parse_from(raw.into_iter().filter(|a| a != "--parity-gate"));
    let out = |s: &str| {
        if args.stats_json {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    };
    if !args.stats_json {
        banner("Adaptive input compaction: off vs on", &args);
    }

    // --- Parity gate ---------------------------------------------------
    let adult = adult_like(&args.gen_config_scaled(args.scale * 0.2));
    let n_wl = ((40_000.0 * args.scale) as usize).max(2_000);
    let (wx, werr, hot) = hot_cold(args.seed, n_wl, 0.4);
    let mut cells = parity_matrix(&adult.x0, &adult.errors, "adult-sim");
    cells += parity_matrix(&wx, &werr, "hot/cold");
    out(&format!(
        "parity: off/on/auto agree bit-for-bit over {cells} kernel x engine x policy cells\n"
    ));
    if parity_gate {
        if args.stats_json {
            println!(
                "{{\"bench\": \"compact_compare\", \"parity_cells\": {cells}, \"parity\": \"ok\"}}"
            );
        } else {
            println!("parity gate passed ({cells} cells)");
        }
        return;
    }

    // --- Timing sweep --------------------------------------------------
    let threads = args.resolved_threads();
    let reps = 3;
    // Blocked is the paper's linear-algebra formulation: cost is
    // proportional to nnz(X) regardless of which rows can still matter,
    // so it sees the full §5 dynamic-input-reduction win. Fused's
    // inverted index already skips rows whose columns no surviving
    // candidate references, so compaction is closer to neutral there —
    // the honest contrast.
    let kernels = [
        ("blocked", EvalKernel::Blocked { block_size: 16 }),
        ("fused", EvalKernel::Fused),
        ("bitmap", EvalKernel::Bitmap),
    ];
    let mut json_levels = String::new();
    let mut headline = (String::new(), 0.0f64, 0.0f64, 0.0f64);
    for (name, eval) in kernels {
        let (off, _) = time_policy(&wx, &werr, eval, CompactKernel::Off, threads, reps);
        let (on, retained) = time_policy(&wx, &werr, eval, CompactKernel::On, threads, reps);
        out(&format!(
            "per-level wall time, {name} kernel ({} rows, {:.0}% hot, min of {reps} runs)",
            wx.rows(),
            100.0 * hot as f64 / wx.rows() as f64,
        ));
        let mut table = TextTable::new(&["level", "off", "on", "speedup", "rows_retained"]);
        for (i, (o, n_secs)) in off.iter().zip(&on).enumerate() {
            table.row(&[
                (i + 1).to_string(),
                format!("{:.2}ms", o * 1e3),
                format!("{:.2}ms", n_secs * 1e3),
                format!("{:.2}x", o / n_secs.max(1e-12)),
                retained.get(i).copied().unwrap_or(0).to_string(),
            ]);
            json_levels.push_str(&format!(
                "    {{\"kernel\": \"{name}\", \"level\": {}, \"off_secs\": {:.6e}, \
                 \"on_secs\": {:.6e}, \"rows_retained\": {}}},\n",
                i + 1,
                o,
                n_secs,
                retained.get(i).copied().unwrap_or(0)
            ));
        }
        out(&table.render());
        let deep_off: f64 = off.iter().skip(2).sum();
        let deep_on: f64 = on.iter().skip(2).sum();
        let speedup = deep_off / deep_on.max(1e-12);
        out(&format!(
            "{name}: levels >= 3 total {:.2}ms off vs {:.2}ms on ({speedup:.2}x)\n",
            deep_off * 1e3,
            deep_on * 1e3
        ));
        if speedup > headline.3 {
            headline = (name.to_string(), deep_off, deep_on, speedup);
        }
    }

    if args.stats_json {
        let mut json = String::from("{\n  \"bench\": \"compact_compare\",\n");
        json.push_str(&format!(
            "  \"threads\": {threads},\n  \"scale\": {},\n  \"seed\": {},\n",
            args.scale, args.seed
        ));
        json.push_str(&format!(
            "  \"parity_cells\": {cells},\n  \"parity\": \"ok\",\n"
        ));
        json.push_str(&format!(
            "  \"workload\": {{\"rows\": {}, \"hot_rows\": {hot}, \"features\": 6, \
             \"coverage_after_l1\": {:.3}}},\n",
            wx.rows(),
            hot as f64 / wx.rows() as f64
        ));
        json.push_str("  \"levels\": [\n");
        json.push_str(json_levels.trim_end_matches('\n').trim_end_matches(','));
        json.push_str("\n  ],\n");
        json.push_str(&format!(
            "  \"headline\": {{\"kernel\": \"{}\", \"level3plus_off_secs\": {:.6e}, \
             \"level3plus_on_secs\": {:.6e}, \"level3plus_speedup\": {:.3}}}\n}}\n",
            headline.0, headline.1, headline.2, headline.3
        ));
        print!("{json}");
    }
}
