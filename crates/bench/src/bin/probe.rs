//! Diagnostic probe: prints per-level enumeration counters for one
//! generator. Environment knobs: `PROBE_DATASET` (adult | kdd98 | census |
//! covtype | criteo), `PROBE_MAXLEVEL` (default 3), `PROBE_FUSED` (use the
//! fused kernel), `PROBE_ALPHA` (default 0.95). Not part of the paper
//! harness; used when tuning the dataset generators' pruning behaviour.
use sliceline::{MinSupport, SliceLine, SliceLineConfig};
use sliceline_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let name = std::env::var("PROBE_DATASET").unwrap_or_else(|_| "kdd98".to_string());
    let cfg = args.gen_config();
    let d = match name.as_str() {
        "adult" => sliceline_datagen::adult_like(&cfg),
        "census" => sliceline_datagen::census_like(&cfg),
        "covtype" => sliceline_datagen::covtype_like(&cfg),
        "criteo" => sliceline_datagen::criteo_like(&cfg),
        _ => sliceline_datagen::kdd98_like(&cfg),
    };
    let max_level: usize = std::env::var("PROBE_MAXLEVEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let fused = std::env::var("PROBE_FUSED").is_ok();
    let alpha: f64 = std::env::var("PROBE_ALPHA")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95);
    let mut config = SliceLineConfig::builder()
        .k(4)
        .alpha(alpha)
        .max_level(max_level)
        .threads(args.resolved_threads())
        .build()
        .unwrap();
    config.min_support = MinSupport::Fraction(0.01);
    if fused {
        config.eval = sliceline::EvalKernel::Fused;
    }
    let r = SliceLine::new(config)
        .find_slices(&d.x0, &d.errors)
        .unwrap();
    println!("{} n={} l={} sigma={}", d.name, d.n(), d.l(), r.stats.sigma);
    println!("{}", r.stats.render_table());
    println!(
        "top1: {:?}",
        r.top_k.first().map(|t| (&t.predicates, t.score))
    );
}
