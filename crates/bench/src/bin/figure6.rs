//! Figure 6 — local end-to-end runtime and the block-size sweep.
//!
//! (a): total runtime per dataset with defaults σ = n/100, α = 0.95,
//! ⌈L⌉ = 3.
//! (b): the hybrid evaluation block size `b` generalizes task-parallel
//! (b = 1) and data-parallel (b = nrow(S)); increasing b shares scans of
//! `X` (the paper sees 2.8× on USCensus) until intermediates get too
//! large; the paper's default is b = 16.

use sliceline::{EvalKernel, MinSupport, SliceLine, SliceLineConfig};
use sliceline_bench::{banner, fmt_secs, standard_datasets, BenchArgs, TextTable};
use sliceline_datagen::{adult_like, census_like};

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 6: Local End-to-End Runtime", &args);
    let cfg = args.gen_config();

    println!("(a) end-to-end runtime per dataset (sigma=n/100, alpha=0.95, L<=3, b=16)");
    let mut table = TextTable::new(&["dataset", "n", "l", "runtime", "slices evaluated"]);
    for d in standard_datasets(&cfg) {
        let mut config = SliceLineConfig::builder()
            .k(4)
            .alpha(0.95)
            .max_level(3)
            .block_size(16)
            .threads(args.resolved_threads())
            .build()
            .expect("static config");
        config.min_support = MinSupport::Fraction(0.01);
        let result = SliceLine::new(config)
            .find_slices(&d.x0, &d.errors)
            .expect("generated input is valid");
        table.row(&[
            d.name.clone(),
            d.n().to_string(),
            d.l().to_string(),
            fmt_secs(result.stats.total_elapsed),
            result.stats.total_evaluated().to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("(b) block-size sweep on AdultSim and CensusSim (+ fused kernel ablation)");
    // CensusSim at 0.3x scale for the 7-configuration sweep (see figure5).
    let sweep_sets = vec![
        adult_like(&cfg),
        census_like(&args.gen_config_scaled(args.scale * 0.3)),
    ];
    let blocks = [1usize, 4, 16, 64, 256, 4096];
    let mut sweep = TextTable::new(&[
        "dataset", "b=1", "b=4", "b=16", "b=64", "b=256", "b=4096", "fused",
    ]);
    for d in &sweep_sets {
        let mut cells = vec![d.name.clone()];
        for &b in &blocks {
            let mut config = SliceLineConfig::builder()
                .k(4)
                .alpha(0.95)
                .max_level(3)
                .block_size(b)
                .threads(args.resolved_threads())
                .build()
                .expect("static config");
            config.min_support = MinSupport::Fraction(0.01);
            let result = SliceLine::new(config)
                .find_slices(&d.x0, &d.errors)
                .expect("generated input is valid");
            cells.push(fmt_secs(result.stats.total_elapsed));
        }
        // Fused-kernel ablation (not in the paper's systems, see §4.4 note).
        let mut config = SliceLineConfig::builder()
            .k(4)
            .alpha(0.95)
            .max_level(3)
            .eval(EvalKernel::Fused)
            .threads(args.resolved_threads())
            .build()
            .expect("static config");
        config.min_support = MinSupport::Fraction(0.01);
        let result = SliceLine::new(config)
            .find_slices(&d.x0, &d.errors)
            .expect("generated input is valid");
        cells.push(fmt_secs(result.stats.total_elapsed));
        sweep.row(&cells);
    }
    println!("{}", sweep.render());
    println!(
        "expected shape (paper Fig. 6): moderate block sizes beat b=1 via \
         scan sharing; very large b loses the advantage to allocation \
         overhead; the paper's default b=16 is a good balance."
    );
}
