//! Figure 7 — scalability with data size and parallelization strategy.
//!
//! (a): CensusSim rows replicated 1×–10×; the relative σ = n/100 keeps
//! enumeration identical, so ideal scaling is the 1× runtime multiplied
//! by the factor. The paper observes moderate deterioration from larger
//! intermediates and GC pressure.
//! (b): MT-Ops vs MT-PFor vs Dist-PFor on the simulated cluster; the
//! paper reports ~2× for MT-PFor over MT-Ops (no per-op barriers) and a
//! further ~1.9× for distributed evaluation minus broadcast overhead.

use sliceline::{MinSupport, SliceLineConfig};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_datagen::census_like;
use sliceline_dist::{ClusterConfig, DistSliceLine, Strategy};
use std::time::Duration;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 7: Scalability with Data Size and Parallelism",
        &args,
    );
    // CensusSim at 0.1x the requested scale: replication multiplies the
    // rows up to 10x and the evaluation cost with them (the paper ran the
    // real 2.4M-row census on 112 vcores). Raise --scale to compensate.
    let cfg = args.gen_config_scaled(args.scale * 0.1);
    let base = census_like(&cfg);
    let threads = args.resolved_threads();
    let make_config = || {
        let mut c = SliceLineConfig::builder()
            .k(4)
            .alpha(0.95)
            .max_level(3)
            .block_size(4)
            .threads(threads)
            .build()
            .expect("static config");
        c.min_support = MinSupport::Fraction(0.01);
        c
    };

    println!("(a) row-replication scalability on CensusSim (b=4, sigma=n/100)");
    let mut table = TextTable::new(&["replication", "rows", "runtime", "ideal", "ratio"]);
    let mut base_time = None;
    for factor in [1usize, 2, 4, 6, 8, 10] {
        let x0 = base.x0.replicate_rows(factor);
        let errors: Vec<f64> = (0..factor)
            .flat_map(|_| base.errors.iter().copied())
            .collect();
        let runner = DistSliceLine::new(
            make_config(),
            Strategy::MtOps {
                threads,
                block_size: 4,
            },
        );
        let result = runner.find_slices(&x0, &errors).expect("valid input");
        let elapsed = result.stats.total_elapsed;
        let ideal = base_time.get_or_insert(elapsed).mul_f64(factor as f64);
        table.row(&[
            format!("{factor}x"),
            x0.rows().to_string(),
            fmt_secs(elapsed),
            fmt_secs(ideal),
            format!(
                "{:.2}",
                elapsed.as_secs_f64() / ideal.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    println!("{}", table.render());

    println!("(b) parallelization strategies (simulated 12-node cluster)");
    let strategies: Vec<(&str, Strategy)> = vec![
        (
            "MT-Ops",
            Strategy::MtOps {
                threads,
                block_size: 4,
            },
        ),
        (
            "MT-PFor",
            Strategy::MtParfor {
                threads,
                block_size: 4,
            },
        ),
        (
            "Dist-PFor",
            Strategy::DistParfor(ClusterConfig {
                nodes: 12,
                threads_per_node: (threads / 4).max(1),
                broadcast_latency: Duration::from_millis(2),
                broadcast_per_nnz: Duration::from_nanos(20),
                aggregate_latency: Duration::from_millis(1),
                bitmap_kernel: false,
            }),
        ),
    ];
    let x0 = base.x0.replicate_rows(2);
    let errors: Vec<f64> = base
        .errors
        .iter()
        .chain(base.errors.iter())
        .copied()
        .collect();
    let mut table = TextTable::new(&["strategy", "runtime", "top-1 score"]);
    for (name, strategy) in strategies {
        let runner = DistSliceLine::new(make_config(), strategy);
        let result = runner.find_slices(&x0, &errors).expect("valid input");
        table.row(&[
            name.to_string(),
            fmt_secs(result.stats.total_elapsed),
            result
                .top_k
                .first()
                .map(|t| format!("{:.3}", t.score))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape (paper Fig. 7): near-linear row scaling with mild \
         deterioration; MT-PFor beats MT-Ops by avoiding per-op barriers; \
         Dist-PFor adds node fan-out minus broadcast/aggregation overhead \
         (all strategies return identical top-K slices)."
    );
}
