//! Roofline — achieved memory bandwidth per bitmap kernel.
//!
//! Measures GB/s for each hot-path kernel (`and_into`, `and2_into`,
//! `popcount`, `masked_stats` dense/sparse, `masked_stats_and2`,
//! `masked_stats_and2_multi`) at forced-scalar and the detected SIMD
//! level, against a `memcpy`-derived bandwidth ceiling on the same
//! buffers. Pure bitmap kernels run on memory-resident buffers; the
//! masked-stats kernels add the error-vector traffic their set bits
//! actually select, so "bytes moved" counts useful traffic only (a
//! sparse bitmap that skips 31/32 words reports the bandwidth of what
//! it read, not of what it avoided).
//!
//! ```sh
//! cargo run --release -p sliceline-bench --bin roofline -- --stats-json
//! ```
//!
//! `--stats-json` writes machine-readable results to stdout (tables move
//! to stderr); the committed `BENCH_simd.json` is that output.

use sliceline_bench::{banner, BenchArgs, TextTable};
use sliceline_linalg::bitmap::{
    and2_into_with, and_into_with, masked_stats_and2_multi, masked_stats_and2_with,
    masked_stats_with, popcount_with, MULTI_WAY,
};
use sliceline_linalg::simd;
use sliceline_linalg::SimdLevel;
use std::time::Instant;

/// One measured cell: a kernel × data-shape pair at one SIMD level.
struct Cell {
    kernel: &'static str,
    variant: &'static str,
    level: SimdLevel,
    bytes: f64,
    secs: f64,
}

impl Cell {
    fn gbps(&self) -> f64 {
        self.bytes / self.secs.max(1e-12) / 1e9
    }
}

/// Deterministic xorshift64* word stream (no RNG dependency needed).
struct Words(u64);

impl Words {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A `words`-long bitmap where roughly one word in `one_in` is non-zero
/// (1 = dense random ~50% bits, 32 = sparse with whole zero blocks).
fn bitmap(words: usize, one_in: usize, seed: u64) -> Vec<u64> {
    let mut rng = Words(seed | 1);
    (0..words)
        .map(|i| {
            if i % one_in == 0 || one_in == 1 {
                rng.next()
            } else {
                0
            }
        })
        .collect()
}

/// Times `f` with one warmup, a calibration call, then min-of-reps.
fn time_min<F: FnMut()>(mut f: F) -> f64 {
    f();
    let t0 = Instant::now();
    f();
    let est = t0.elapsed().as_secs_f64();
    let reps = ((0.15 / est.max(1e-6)) as usize).clamp(3, 200);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = BenchArgs::parse();
    let out = |s: &str| {
        if args.stats_json {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    };
    if !args.stats_json {
        banner("Roofline: bitmap kernel bandwidth vs memcpy ceiling", &args);
    }
    let detected = simd::detect();
    let levels: Vec<SimdLevel> = if detected == SimdLevel::Scalar {
        vec![SimdLevel::Scalar]
    } else {
        vec![SimdLevel::Scalar, detected]
    };

    // Pure bitmap kernels: memory-resident operands (16 MiB each).
    let big = 1usize << 21;
    // Masked kernels: the error vector is 64× the bitmap (one f64 per
    // row), so size the bitmap down to keep errors at 64 MiB.
    let small = 1usize << 17;
    let errors: Vec<f64> = (0..small * 64).map(|i| (i % 97) as f64 * 0.013).collect();

    // The ceiling: bandwidth of a plain 16 MiB copy (read + write).
    let src = bitmap(big, 1, 7);
    let mut dst = vec![0u64; big];
    let memcpy_secs = time_min(|| {
        dst.copy_from_slice(&src);
        std::hint::black_box(&dst);
    });
    let memcpy_gbps = (big * 16) as f64 / memcpy_secs.max(1e-12) / 1e9;
    out(&format!("memcpy ceiling: {memcpy_gbps:.1} GB/s\n"));

    let a_big = bitmap(big, 1, 11);
    let b_big = bitmap(big, 1, 13);
    let a_dense = bitmap(small, 1, 17);
    let b_dense = bitmap(small, 1, 19);
    let a_sparse = bitmap(small, 32, 23);
    let siblings: Vec<Vec<u64>> = (0..MULTI_WAY as u64)
        .map(|j| bitmap(small, 1, 29 + j))
        .collect();
    let sib_refs: Vec<&[u64]> = siblings.iter().map(|s| s.as_slice()).collect();

    let mut cells: Vec<Cell> = Vec::new();
    for &level in &levels {
        // and_into: read acc + read src + write acc.
        let mut acc = a_big.clone();
        let secs = time_min(|| {
            acc.copy_from_slice(&a_big);
            and_into_with(level, &mut acc, &b_big);
            std::hint::black_box(&acc);
        }) - memcpy_secs; // subtract the reset copy
        cells.push(Cell {
            kernel: "and_into",
            variant: "dense",
            level,
            bytes: (big * 24) as f64,
            secs: secs.max(1e-9),
        });

        // and2_into: read a + read b + write dst.
        let mut dst2: Vec<u64> = Vec::with_capacity(big);
        let secs = time_min(|| {
            and2_into_with(level, &mut dst2, &a_big, &b_big);
            std::hint::black_box(&dst2);
        });
        cells.push(Cell {
            kernel: "and2_into",
            variant: "dense",
            level,
            bytes: (big * 24) as f64,
            secs,
        });

        // popcount: read-only stream.
        let secs = time_min(|| {
            std::hint::black_box(popcount_with(level, &a_big));
        });
        cells.push(Cell {
            kernel: "popcount",
            variant: "dense",
            level,
            bytes: (big * 8) as f64,
            secs,
        });

        // masked_stats: words + the error lanes its set bits select.
        for (variant, words) in [("dense", &a_dense), ("sparse", &a_sparse)] {
            let pop = popcount_with(SimdLevel::Scalar, words);
            let secs = time_min(|| {
                std::hint::black_box(masked_stats_with(level, words, &errors));
            });
            cells.push(Cell {
                kernel: "masked_stats",
                variant,
                level,
                bytes: (small as u64 * 8 + pop * 8) as f64,
                secs,
            });
        }

        // masked_stats_and2: two bitmap streams + selected error lanes.
        let mut both = a_dense.clone();
        and_into_with(SimdLevel::Scalar, &mut both, &b_dense);
        let pop = popcount_with(SimdLevel::Scalar, &both);
        let secs = time_min(|| {
            std::hint::black_box(masked_stats_and2_with(level, &a_dense, &b_dense, &errors));
        });
        cells.push(Cell {
            kernel: "masked_stats_and2",
            variant: "dense",
            level,
            bytes: (small as u64 * 16 + pop * 8) as f64,
            secs,
        });

        // masked_stats_and2_multi: parent + MULTI_WAY children, one pass.
        // (Per-slice scan order is scalar by contract; the win is data
        // reuse, so both rows report the same shared-pass bandwidth.)
        let mut pops = 0u64;
        for s in &sib_refs {
            let mut w = a_dense.clone();
            and_into_with(SimdLevel::Scalar, &mut w, s);
            pops += popcount_with(SimdLevel::Scalar, &w);
        }
        let mut outbuf = [(0.0f64, 0.0f64, 0.0f64); MULTI_WAY];
        let secs = time_min(|| {
            masked_stats_and2_multi(&a_dense, &sib_refs, &errors, &mut outbuf);
            std::hint::black_box(&outbuf);
        });
        cells.push(Cell {
            kernel: "masked_stats_and2_multi",
            variant: "dense",
            level,
            bytes: (small as u64 * 8 * (1 + MULTI_WAY as u64) + pops * 8) as f64,
            secs,
        });
    }

    out(&format!(
        "achieved bandwidth per kernel (detected: {})",
        detected.name()
    ));
    let fast_hdr = format!("{} GB/s", detected.name());
    let mut table = TextTable::new(&[
        "kernel",
        "variant",
        "scalar GB/s",
        fast_hdr.as_str(),
        "speedup",
        "ceiling frac",
    ]);
    let per_level = cells.len() / levels.len();
    let mut best_simd_speedup = 0.0f64;
    for i in 0..per_level {
        let scalar = &cells[i];
        let fast = if levels.len() > 1 {
            &cells[per_level + i]
        } else {
            scalar
        };
        let speedup = scalar.secs / fast.secs.max(1e-12);
        if matches!(scalar.kernel, "popcount" | "masked_stats") && levels.len() > 1 {
            best_simd_speedup = best_simd_speedup.max(speedup);
        }
        table.row(&[
            scalar.kernel.to_string(),
            scalar.variant.to_string(),
            format!("{:.1}", scalar.gbps()),
            format!("{:.1}", fast.gbps()),
            format!("{:.2}x", speedup),
            format!("{:.0}%", fast.gbps() / memcpy_gbps * 100.0),
        ]);
    }
    out(&table.render());
    if levels.len() > 1 {
        out(&format!(
            "best SIMD speedup on a popcount/masked-stats cell: {best_simd_speedup:.2}x"
        ));
    }

    if args.stats_json {
        let mut json = String::from("{\n  \"bench\": \"roofline\",\n");
        json.push_str(&format!("  \"detected\": \"{}\",\n", detected.name()));
        json.push_str(&format!("  \"memcpy_gbps\": {memcpy_gbps:.3},\n"));
        json.push_str(&format!(
            "  \"best_simd_speedup_pop_or_masked\": {best_simd_speedup:.3},\n"
        ));
        json.push_str("  \"cells\": [\n");
        for (i, c) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"level\": \"{}\", \"bytes\": {:.0}, \"secs\": {:.6e}, \"gbps\": {:.3}, \"ceiling_frac\": {:.3}}}{}\n",
                c.kernel,
                c.variant,
                c.level.name(),
                c.bytes,
                c.secs,
                c.gbps(),
                c.gbps() / memcpy_gbps,
                if i + 1 == cells.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        print!("{json}");
    }
}
