//! Scratch-buffer reuse ablation on the Figure-3 workload.
//!
//! Runs the Salaries 2×2 pruning workload repeatedly through one shared
//! [`ExecContext`] with the buffer pool enabled, then again with pooling
//! disabled (every checkout falls through to a fresh allocation). Reports
//! wall time per run and the pool counters, demonstrating that reuse
//! eliminates most per-level `Vec<f64>` allocations without changing the
//! result.

use sliceline::{SliceLine, SliceLineConfig};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_datagen::salaries_encoded;
use sliceline_frame::IntMatrix;
use sliceline_linalg::ExecContext;
use std::time::Instant;

const RUNS: usize = 5;

fn workload() -> (IntMatrix, Vec<f64>) {
    let enc = salaries_encoded();
    let x0 = enc.x0.replicate_rows(2).replicate_cols(2);
    let labels = enc.labels.expect("salaries has labels");
    let labels2: Vec<f64> = labels.iter().chain(labels.iter()).copied().collect();
    let mean = labels2.iter().sum::<f64>() / labels2.len() as f64;
    let scale = 1e-8;
    let errors: Vec<f64> = labels2
        .iter()
        .map(|&y| (y - mean) * (y - mean) * scale)
        .collect();
    (x0, errors)
}

fn run_variant(
    label: &str,
    pooling: bool,
    args: &BenchArgs,
    x0: &IntMatrix,
    errors: &[f64],
    table: &mut TextTable,
) -> (ExecContext, f64) {
    let sigma = (x0.rows() / 100).max(1);
    let config = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .min_support(sigma)
        .threads(args.resolved_threads())
        .build()
        .expect("static config is valid");
    let exec = config.exec_context();
    exec.set_pooling(pooling);
    exec.enable_stats(args.stats_json);
    let finder = SliceLine::new(config);
    let mut total = 0.0;
    let mut top_score = f64::NAN;
    for run in 0..RUNS {
        let start = Instant::now();
        let result = finder
            .find_slices_in(x0, errors, &exec)
            .expect("salaries input is valid");
        let elapsed = start.elapsed();
        total += elapsed.as_secs_f64();
        top_score = result.top_k.first().map(|s| s.score).unwrap_or(f64::NAN);
        let pool = exec.pool_stats();
        table.row(&[
            label.to_string(),
            (run + 1).to_string(),
            fmt_secs(elapsed),
            pool.f64_allocated.to_string(),
            pool.f64_reused.to_string(),
            pool.bytes_reused.to_string(),
        ]);
    }
    println!("{label}: top-1 score {top_score:.6} (identical across variants by construction)");
    (exec, total)
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Buffer reuse: pooled vs fresh allocation on Salaries 2x2",
        &args,
    );
    let (x0, errors) = workload();
    let mut table = TextTable::new(&[
        "variant",
        "run",
        "wall",
        "f64 allocs (cum)",
        "f64 reuses (cum)",
        "bytes reused (cum)",
    ]);
    let (pooled_exec, pooled_total) = run_variant("pooled", true, &args, &x0, &errors, &mut table);
    let (fresh_exec, fresh_total) = run_variant("fresh", false, &args, &x0, &errors, &mut table);
    println!("\n{}", table.render());
    let pooled = pooled_exec.pool_stats();
    let fresh = fresh_exec.pool_stats();
    println!(
        "totals over {RUNS} runs: pooled {} ({} allocations, {} reuses), \
         fresh {} ({} allocations, {} reuses)",
        fmt_secs(std::time::Duration::from_secs_f64(pooled_total)),
        pooled.f64_allocated,
        pooled.f64_reused,
        fmt_secs(std::time::Duration::from_secs_f64(fresh_total)),
        fresh.f64_allocated,
        fresh.f64_reused,
    );
    println!(
        "expected shape: the pooled context allocates fewer f64 buffers per \
         run after the first (warm pool), reusing {} bytes in total, and runs \
         no slower than fresh allocation.",
        pooled.bytes_reused
    );
    if args.stats_json {
        println!(
            "\n--stats-json dump:\n{{\"pooled\":{},\"fresh\":{}}}",
            pooled_exec.exec_stats().to_json(),
            fresh_exec.exec_stats().to_json()
        );
    }
}
