//! Ablation studies for design choices beyond the paper's figures:
//!
//! 1. **Evaluation kernel** — the paper's materializing blocked kernel
//!    (per block size) vs the fused no-materialization kernel (§4.4
//!    discussion: LA systems must materialize `(X Sᵀ)`; a specialized
//!    runtime need not).
//! 2. **Enumeration order** — level-wise Algorithm 1 vs the best-first
//!    priority enumeration of §7's future work, exact and budgeted
//!    (anytime).

use sliceline::priority::PrioritySliceLine;
use sliceline::{EvalKernel, MinSupport, SliceLine, SliceLineConfig};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_datagen::{adult_like, census_like};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    banner("Ablations: evaluation kernel and enumeration order", &args);
    let cfg = args.gen_config();
    let make_config = |eval: EvalKernel| {
        let mut c = SliceLineConfig::builder()
            .k(4)
            .alpha(0.95)
            .max_level(3)
            .eval(eval)
            .threads(args.resolved_threads())
            .build()
            .expect("static config");
        c.min_support = MinSupport::Fraction(0.01);
        c
    };

    println!("(1) evaluation kernel (L<=3, sigma=n/100)");
    let mut table = TextTable::new(&[
        "dataset",
        "blocked b=1",
        "blocked b=16",
        "blocked b=256",
        "fused",
    ]);
    for d in [adult_like(&cfg), census_like(&cfg)] {
        let mut cells = vec![d.name.clone()];
        for eval in [
            EvalKernel::Blocked { block_size: 1 },
            EvalKernel::Blocked { block_size: 16 },
            EvalKernel::Blocked { block_size: 256 },
            EvalKernel::Fused,
        ] {
            let t = Instant::now();
            SliceLine::new(make_config(eval))
                .find_slices(&d.x0, &d.errors)
                .expect("valid input");
            cells.push(fmt_secs(t.elapsed()));
        }
        table.row(&cells);
    }
    println!("{}", table.render());

    println!("(2) enumeration order on AdultSim (identical exact top-K)");
    let d = adult_like(&cfg);
    let mut table = TextTable::new(&[
        "strategy",
        "runtime",
        "slices evaluated",
        "exact",
        "top-1 score",
    ]);
    let t = Instant::now();
    let levelwise = SliceLine::new(make_config(EvalKernel::default()))
        .find_slices(&d.x0, &d.errors)
        .expect("valid input");
    table.row(&[
        "level-wise (Algorithm 1)".to_string(),
        fmt_secs(t.elapsed()),
        levelwise.stats.total_evaluated().to_string(),
        "yes".to_string(),
        format!("{:.3}", levelwise.top_k[0].score),
    ]);
    let t = Instant::now();
    let best_first = PrioritySliceLine::new(make_config(EvalKernel::default()))
        .find_slices(&d.x0, &d.errors)
        .expect("valid input");
    table.row(&[
        "best-first (priority)".to_string(),
        fmt_secs(t.elapsed()),
        best_first.evaluated.to_string(),
        if best_first.exact { "yes" } else { "no" }.to_string(),
        format!("{:.3}", best_first.result.top_k[0].score),
    ]);
    for budget_frac in [0.25, 0.1] {
        let budget = ((best_first.evaluated as f64) * budget_frac) as usize;
        let t = Instant::now();
        let anytime = PrioritySliceLine::with_budget(make_config(EvalKernel::default()), budget)
            .find_slices(&d.x0, &d.errors)
            .expect("valid input");
        table.row(&[
            format!("best-first, budget {:.0}%", budget_frac * 100.0),
            fmt_secs(t.elapsed()),
            anytime.evaluated.to_string(),
            if anytime.exact { "yes" } else { "no" }.to_string(),
            anytime
                .result
                .top_k
                .first()
                .map(|s| format!("{:.3}", s.score))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{}", table.render());
    assert!(
        (levelwise.top_k[0].score - best_first.result.top_k[0].score).abs() < 1e-9,
        "exact strategies must agree"
    );
    println!(
        "expected shape: fused beats blocked at small b (no materialization); \
         exact best-first evaluates fewer slices than level-wise once the \
         threshold rises early; anytime budgets trade exactness for time."
    );
}
