//! Schema checker for the observability artifacts: validates a Chrome
//! trace-event JSON (`--trace`), a run manifest (`--manifest`), a
//! flight-recorder dump (`--flightrecorder`), and/or an OpenMetrics
//! exposition (`--openmetrics`) produced by `sliceline find` / the serve
//! daemon. Exits non-zero on any violation, so CI can gate on it (the
//! `trace-smoke` and `serve-smoke` steps).
//!
//! Checks are structural, not golden: the trace must parse with the
//! hand-rolled JSON reader, every event must carry the fields its phase
//! requires, span categories from the expected layers must be present,
//! and each `pruning_funnel` counter sample must be monotonically
//! non-increasing across the funnel stages. Across samples (in timestamp
//! order) the compaction gauges `rows_retained`/`cols_retained` must
//! never grow — the working set only ever shrinks level-over-level. The
//! manifest must carry every [`Manifest::REQUIRED_KEYS`] entry,
//! non-null, at the current schema version.

use sliceline_obs::json::{parse, Json};
use sliceline_obs::Manifest;
use std::process::ExitCode;

/// Funnel stages in pipeline order; each stage's count must not exceed
/// the previous one (matches `LevelProfile::funnel`).
const FUNNEL_STAGES: [&str; 6] = [
    "pairs",
    "merged",
    "after_dedup",
    "after_bound",
    "after_filters",
    "evaluated",
];

fn main() -> ExitCode {
    let mut trace_path: Option<String> = None;
    let mut manifest_path: Option<String> = None;
    let mut flight_path: Option<String> = None;
    let mut openmetrics_path: Option<String> = None;
    let mut expect_dist = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => trace_path = it.next(),
            "--manifest" => manifest_path = it.next(),
            "--flightrecorder" => flight_path = it.next(),
            "--openmetrics" => openmetrics_path = it.next(),
            "--expect-dist" => expect_dist = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("trace_check: unknown flag '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if trace_path.is_none()
        && manifest_path.is_none()
        && flight_path.is_none()
        && openmetrics_path.is_none()
    {
        eprintln!("trace_check: nothing to check\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut failures = 0usize;
    if let Some(path) = trace_path {
        failures += report(&path, check_trace(&path, expect_dist));
    }
    if let Some(path) = manifest_path {
        failures += report(&path, check_manifest(&path));
    }
    if let Some(path) = flight_path {
        failures += report(&path, check_flightrecorder(&path));
    }
    if let Some(path) = openmetrics_path {
        failures += report(&path, check_openmetrics(&path));
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "\
usage: trace_check [--trace FILE] [--manifest FILE]
                   [--flightrecorder FILE] [--openmetrics FILE]
                   [--expect-dist]
  --trace FILE          validate a Chrome trace-event JSON written by --trace
  --manifest FILE       validate a run manifest written by --metrics-json
  --flightrecorder FILE validate a GET /debug/flightrecorder dump
  --openmetrics FILE    lint a /metrics?format=openmetrics exposition
  --expect-dist         require spans from the dist layer in the trace";

fn report(path: &str, result: Result<String, String>) -> usize {
    match result {
        Ok(summary) => {
            println!("ok: {path}: {summary}");
            0
        }
        Err(e) => {
            eprintln!("FAIL: {path}: {e}");
            1
        }
    }
}

fn read_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    parse(&text).map_err(|e| format!("parse: {e}"))
}

fn check_trace(path: &str, expect_dist: bool) -> Result<String, String> {
    let doc = read_json(path)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing 'traceEvents' array")?;
    if doc.get("displayTimeUnit").and_then(Json::as_str).is_none() {
        return Err("missing 'displayTimeUnit'".to_string());
    }
    let mut cats: Vec<&str> = Vec::new();
    let mut funnels = 0usize;
    let mut retained: Vec<(f64, f64, f64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing 'ph'"))?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(at("missing 'name'"));
        }
        if ev.get("pid").and_then(Json::as_f64).is_none()
            || ev.get("tid").and_then(Json::as_f64).is_none()
        {
            return Err(at("missing 'pid'/'tid'"));
        }
        match ph {
            "M" => continue, // metadata: no ts/cat
            "X" => {
                if ev.get("dur").and_then(Json::as_f64).is_none() {
                    return Err(at("complete event without 'dur'"));
                }
            }
            "i" | "C" => {}
            other => return Err(at(&format!("unknown phase '{other}'"))),
        }
        if ev.get("ts").and_then(Json::as_f64).is_none() {
            return Err(at("missing 'ts'"));
        }
        let cat = ev
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing 'cat'"))?;
        if !cats.contains(&cat) {
            cats.push(ev.get("cat").and_then(Json::as_str).unwrap());
        }
        if ph == "C" && ev.get("name").and_then(Json::as_str) == Some("pruning_funnel") {
            check_funnel(ev).map_err(|e| at(&e))?;
            let ts = ev.get("ts").and_then(Json::as_f64).unwrap();
            let args = ev.get("args").ok_or_else(|| at("funnel without args"))?;
            let mut dims = [0.0f64; 2];
            for (k, slot) in ["rows_retained", "cols_retained"].iter().zip(&mut dims) {
                *slot = args
                    .get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| at(&format!("funnel missing '{k}'")))?;
            }
            retained.push((ts, dims[0], dims[1]));
            funnels += 1;
        }
    }
    // Retained working-set dims must be non-increasing across levels
    // (funnel samples in timestamp order): compaction only ever drops
    // rows and columns, never resurrects them.
    retained.sort_by(|a, b| a.0.total_cmp(&b.0));
    for w in retained.windows(2) {
        let ((_, r0, c0), (ts, r1, c1)) = (w[0], w[1]);
        if r1 > r0 || c1 > c0 {
            return Err(format!(
                "retained dims grew at ts {ts}: rows {r0} -> {r1}, cols {c0} -> {c1}"
            ));
        }
    }
    let mut required = vec!["core", "linalg"];
    if expect_dist {
        required.push("dist");
    }
    for layer in required {
        if !cats.contains(&layer) {
            return Err(format!("no events from the '{layer}' layer"));
        }
    }
    if funnels == 0 {
        return Err("no 'pruning_funnel' counter events".to_string());
    }
    Ok(format!(
        "{} events, layers [{}], {funnels} funnel samples",
        events.len(),
        cats.join(", ")
    ))
}

/// One funnel counter sample: stage counts must be non-increasing in
/// pipeline order (slices only ever leave the funnel).
fn check_funnel(ev: &Json) -> Result<(), String> {
    let args = ev.get("args").ok_or("funnel event without 'args'")?;
    let mut prev = f64::INFINITY;
    for stage in FUNNEL_STAGES {
        let v = args
            .get(stage)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("funnel missing stage '{stage}'"))?;
        if v > prev {
            return Err(format!("funnel not monotone at '{stage}': {v} > {prev}"));
        }
        prev = v;
    }
    Ok(())
}

/// Validates a flight-recorder dump (`GET /debug/flightrecorder`): ring
/// bookkeeping must be consistent and every record must carry the full
/// per-job schema with a sane outcome and non-negative latencies.
fn check_flightrecorder(path: &str) -> Result<String, String> {
    let doc = read_json(path)?;
    let capacity = doc
        .get("capacity")
        .and_then(Json::as_u64)
        .ok_or("missing 'capacity'")?;
    let captured = doc
        .get("captured")
        .and_then(Json::as_u64)
        .ok_or("missing 'captured'")?;
    let resident = doc
        .get("resident")
        .and_then(Json::as_u64)
        .ok_or("missing 'resident'")?;
    if resident > capacity {
        return Err(format!("resident {resident} exceeds capacity {capacity}"));
    }
    if resident > captured {
        return Err(format!("resident {resident} exceeds captured {captured}"));
    }
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("missing 'records' array")?;
    if records.len() as u64 > resident {
        return Err(format!(
            "{} records dumped but only {resident} resident",
            records.len()
        ));
    }
    let mut prev_seq = u64::MAX;
    for (i, rec) in records.iter().enumerate() {
        let at = |msg: &str| format!("record {i}: {msg}");
        let seq = rec
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| at("missing 'seq'"))?;
        if seq >= prev_seq {
            return Err(at(&format!("not newest-first: seq {seq} >= {prev_seq}")));
        }
        prev_seq = seq;
        if rec.get("job_id").and_then(Json::as_u64).is_none() {
            return Err(at("missing 'job_id'"));
        }
        if rec.get("dataset").and_then(Json::as_str).is_none() {
            return Err(at("missing 'dataset'"));
        }
        let outcome = rec
            .get("outcome")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing 'outcome'"))?;
        if outcome != "done" && outcome != "failed" {
            return Err(at(&format!("unknown outcome '{outcome}'")));
        }
        if outcome == "failed" && rec.get("error").and_then(Json::as_str).is_none() {
            return Err(at("failed record without 'error'"));
        }
        for key in ["queue_wait_secs", "run_secs"] {
            let v = rec
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| at(&format!("missing '{key}'")))?;
            if v < 0.0 {
                return Err(at(&format!("negative '{key}': {v}")));
            }
        }
        if rec.get("dropped_events").and_then(Json::as_u64).is_none() {
            return Err(at("missing 'dropped_events'"));
        }
        for key in ["config", "stats"] {
            if rec.get(key).is_none() {
                return Err(at(&format!("missing '{key}'")));
            }
        }
    }
    Ok(format!(
        "{} records (capacity {capacity}, captured {captured})",
        records.len()
    ))
}

/// Lints an OpenMetrics exposition with the same validator the unit
/// tests use ([`sliceline_obs::openmetrics::lint`]).
fn check_openmetrics(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let violations = sliceline_obs::openmetrics::lint(&text);
    if !violations.is_empty() {
        return Err(format!(
            "{} lint violations: {}",
            violations.len(),
            violations.join("; ")
        ));
    }
    let samples = text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .count();
    Ok(format!("{samples} samples, lint clean"))
}

fn check_manifest(path: &str) -> Result<String, String> {
    let doc = read_json(path)?;
    for key in Manifest::REQUIRED_KEYS {
        match doc.get(key) {
            None => return Err(format!("missing required key '{key}'")),
            Some(Json::Null) => return Err(format!("required key '{key}' is null")),
            Some(_) => {}
        }
    }
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("'schema_version' is not an integer")?;
    if version != sliceline_obs::SCHEMA_VERSION as u64 {
        return Err(format!(
            "schema_version {version} != supported {}",
            sliceline_obs::SCHEMA_VERSION
        ));
    }
    for key in ["config", "dataset", "metrics"] {
        if doc.get(key).and_then(Json::as_obj).is_none() {
            return Err(format!("'{key}' is not an object"));
        }
    }
    Ok(format!("schema v{version}, all required keys present"))
}
