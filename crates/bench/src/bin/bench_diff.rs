//! Perf-regression gate: diffs a fresh bench JSON against a committed
//! `BENCH_*.json` baseline with per-metric tolerances (see
//! [`sliceline_bench::diff`]) and exits non-zero when any metric
//! regressed, a parity check failed, or a baseline metric disappeared.
//!
//! ```text
//! bench_diff --baseline BENCH_kernels.json --current fresh.json \
//!            [--tol-time PCT] [--tol-rate PCT] [--floor-secs S] \
//!            [--verdict out.json]
//! ```
//!
//! The human-readable summary goes to stdout; `--verdict` additionally
//! writes the machine-readable verdict JSON for CI artifacts.

use sliceline_bench::{diff, MetricKind, Tolerances};
use sliceline_obs::json::parse;
use std::process::ExitCode;

const USAGE: &str = "\
usage: bench_diff --baseline FILE --current FILE
                  [--tol-time PCT] [--tol-rate PCT] [--floor-secs S]
                  [--verdict OUT.json]
  --baseline FILE  committed BENCH_*.json to compare against
  --current FILE   freshly produced bench JSON (--stats-json output)
  --tol-time PCT   allowed slowdown on *_secs/*_bytes metrics (default 50)
  --tol-rate PCT   allowed drop on *speedup/jobs_per_sec (default 25)
  --floor-secs S   lower-better floor for noisy tiny cells (default 0.001)
  --verdict FILE   also write the machine-readable verdict JSON";

fn main() -> ExitCode {
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut verdict_path: Option<String> = None;
    let mut tol = Tolerances::default();
    let mut it = std::env::args().skip(1);
    let fail = |msg: &str| -> ExitCode {
        eprintln!("bench_diff: {msg}\n{USAGE}");
        ExitCode::from(2)
    };
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--baseline" => match value("--baseline") {
                Ok(v) => baseline = Some(v),
                Err(e) => return fail(&e),
            },
            "--current" => match value("--current") {
                Ok(v) => current = Some(v),
                Err(e) => return fail(&e),
            },
            "--verdict" => match value("--verdict") {
                Ok(v) => verdict_path = Some(v),
                Err(e) => return fail(&e),
            },
            "--tol-time" => match value("--tol-time").map(|v| v.parse::<f64>()) {
                Ok(Ok(pct)) => tol.time = pct / 100.0,
                _ => return fail("--tol-time needs a percentage"),
            },
            "--tol-rate" => match value("--tol-rate").map(|v| v.parse::<f64>()) {
                Ok(Ok(pct)) => tol.rate = pct / 100.0,
                _ => return fail("--tol-rate needs a percentage"),
            },
            "--floor-secs" => match value("--floor-secs").map(|v| v.parse::<f64>()) {
                Ok(Ok(s)) => tol.floor = s,
                _ => return fail("--floor-secs needs a float"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown flag '{other}'")),
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline, current) else {
        return fail("--baseline and --current are required");
    };
    let load = |path: &str| -> Result<sliceline_obs::json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        parse(&text).map_err(|e| format!("parsing {path}: {e}"))
    };
    let (base_doc, cur_doc) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let report = diff(&base_doc, &cur_doc, &tol);
    println!(
        "bench_diff: {} vs {}: {} metrics compared, {} regressed, {} improved, {} missing",
        baseline_path,
        current_path,
        report.compared,
        report.regressions.len(),
        report.improved,
        report.missing.len(),
    );
    for r in &report.regressions {
        let label = match r.kind {
            MetricKind::LowerBetter => "time",
            MetricKind::HigherBetter => "rate",
            MetricKind::Parity => "parity",
        };
        if r.kind == MetricKind::Parity {
            println!("  REGRESSION [{label}] {}: parity not ok", r.path);
        } else {
            println!(
                "  REGRESSION [{label}] {}: {} -> {} ({:.2}x)",
                r.path, r.baseline, r.current, r.ratio
            );
        }
    }
    for path in &report.missing {
        println!("  MISSING {path}: baseline metric absent from current run");
    }
    if let Some(path) = verdict_path {
        if let Err(e) = std::fs::write(&path, report.to_json(&tol)) {
            eprintln!("bench_diff: writing {path}: {e}");
            return ExitCode::from(2);
        }
        println!("verdict written to {path}");
    }
    if report.is_clean() {
        println!("verdict: CLEAN");
        ExitCode::SUCCESS
    } else {
        println!("verdict: REGRESSED");
        ExitCode::FAILURE
    }
}
