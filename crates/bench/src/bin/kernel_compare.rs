//! Kernel comparison — blocked vs fused vs bitmap slice evaluation.
//!
//! Sweeps row counts (AdultSim replicated 1×/4×/16×) × candidate counts
//! and times each evaluation kernel on the same level-2 slice sets, then
//! measures the bitmap engine's incremental parent-bitmap reuse on a
//! level-3 set. Before any timing, all kernels are checked for exact
//! `(sizes, errors, max_errors)` agreement at one thread; any divergence
//! exits non-zero, so this binary doubles as the CI parity gate.
//!
//! ```sh
//! cargo run --release -p sliceline-bench --bin kernel_compare -- --stats-json
//! ```
//!
//! `--stats-json` writes the machine-readable results to stdout (tables
//! move to stderr); the committed `BENCH_kernels.json` is that output.

use sliceline::config::EvalKernel;
use sliceline::evaluate::{evaluate_slices_with, EvalEngine};
use sliceline::ScoringContext;
use sliceline_bench::{banner, BenchArgs, TextTable};
use sliceline_datagen::adult_like;
use sliceline_frame::onehot::one_hot_encode;
use sliceline_linalg::{CsrMatrix, ExecContext};
use std::time::Instant;

/// One timed cell of the sweep.
struct Cell {
    rows: usize,
    candidates: usize,
    kernel: &'static str,
    secs: f64,
}

fn kernel_of(name: &str) -> EvalKernel {
    match name {
        "blocked" => EvalKernel::Blocked { block_size: 16 },
        "fused" => EvalKernel::Fused,
        "bitmap" => EvalKernel::Bitmap,
        _ => unreachable!("static kernel list"),
    }
}

/// Level-`arity` candidates drawn from actual rows (guaranteed non-empty
/// conjunctions), deduplicated and capped.
fn candidates_from_rows(x: &CsrMatrix, arity: usize, cap: usize) -> Vec<Vec<u32>> {
    let mut out: Vec<Vec<u32>> = Vec::new();
    // Stride across the whole matrix so the candidate set spans the full
    // column space instead of whatever the first few rows happen to hold.
    let stride = (x.rows() / (cap * 4).max(1)).max(1);
    'rows: for r in (0..x.rows()).step_by(stride) {
        let cols = x.row_cols(r);
        if cols.len() < arity {
            continue;
        }
        // All `arity`-subsets of this row's columns, smallest-first.
        let mut idx: Vec<usize> = (0..arity).collect();
        loop {
            out.push(idx.iter().map(|&i| cols[i]).collect());
            if out.len() >= cap * 4 {
                break 'rows;
            }
            // Next combination of cols.len() choose arity.
            let mut i = arity;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if idx[i] != i + cols.len() - arity {
                    idx[i] += 1;
                    for j in i + 1..arity {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    continue 'rows;
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out.truncate(cap);
    out
}

/// Times repeated evaluation of `slices`, returning seconds per call.
/// One untimed warmup call packs the bitmap (amortized over every level
/// in a real run, like the cluster packs partitions at distribution
/// time) and touches the scratch pools for all kernels equally.
fn time_eval(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    ctx: &ScoringContext,
    kernel: EvalKernel,
    exec: &ExecContext,
) -> f64 {
    let mut engine = EvalEngine::new(0);
    let run = |engine: &mut EvalEngine| {
        evaluate_slices_with(x, errors, slices.to_vec(), level, ctx, kernel, exec, engine)
    };
    run(&mut engine);
    let est_start = Instant::now();
    run(&mut engine);
    let est = est_start.elapsed().as_secs_f64();
    let reps = ((0.25 / est.max(1e-6)) as usize).clamp(1, 40);
    let start = Instant::now();
    for _ in 0..reps {
        run(&mut engine);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Exact one-thread parity across all kernels; returns an error string on
/// the first divergence.
fn check_parity(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    ctx: &ScoringContext,
) -> Result<(), String> {
    let exec = ExecContext::serial();
    let eval = |kernel: EvalKernel| {
        let mut engine = EvalEngine::default();
        evaluate_slices_with(
            x,
            errors,
            slices.to_vec(),
            level,
            ctx,
            kernel,
            &exec,
            &mut engine,
        )
    };
    let base = eval(EvalKernel::Blocked { block_size: 16 });
    for name in ["fused", "bitmap"] {
        let got = eval(kernel_of(name));
        if got.sizes != base.sizes || got.errors != base.errors || got.max_errors != base.max_errors
        {
            return Err(format!(
                "{name} kernel diverged from blocked on {} level-{level} slices at {} rows",
                slices.len(),
                x.rows()
            ));
        }
    }
    Ok(())
}

fn main() {
    let args = BenchArgs::parse();
    // Tables go to stderr under --stats-json so stdout is pure JSON.
    let out = |s: &str| {
        if args.stats_json {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    };
    if !args.stats_json {
        banner("Kernel comparison: blocked vs fused vs bitmap", &args);
    }
    let base = adult_like(&args.gen_config());
    let threads = args.resolved_threads();
    let exec = ExecContext::new(threads);
    let kernels = ["blocked", "fused", "bitmap"];
    let candidate_counts = [64usize, 256, 1024];
    let mut cells: Vec<Cell> = Vec::new();
    let mut parity_checked = 0usize;
    for factor in [1usize, 4, 16] {
        let x0 = base.x0.replicate_rows(factor);
        let errors: Vec<f64> = (0..factor)
            .flat_map(|_| base.errors.iter().copied())
            .collect();
        let x = one_hot_encode(&x0);
        let ctx = ScoringContext::new(&errors, 0.95);
        for &count in &candidate_counts {
            let slices = candidates_from_rows(&x, 2, count);
            if let Err(msg) = check_parity(&x, &errors, &slices, 2, &ctx) {
                eprintln!("PARITY FAILURE: {msg}");
                std::process::exit(1);
            }
            parity_checked += slices.len();
            for name in kernels {
                let secs = time_eval(&x, &errors, &slices, 2, &ctx, kernel_of(name), &exec);
                cells.push(Cell {
                    rows: x.rows(),
                    candidates: slices.len(),
                    kernel: name,
                    secs,
                });
            }
        }
    }
    out(&format!(
        "parity: blocked/fused/bitmap agree exactly on {parity_checked} slice evaluations\n"
    ));

    out("level-2 evaluation time per call (lower is better)");
    let mut table = TextTable::new(&[
        "rows",
        "candidates",
        "blocked",
        "fused",
        "bitmap",
        "bitmap speedup vs fused",
    ]);
    for chunk in cells.chunks(kernels.len()) {
        let by = |name: &str| chunk.iter().find(|c| c.kernel == name).unwrap().secs;
        table.row(&[
            chunk[0].rows.to_string(),
            chunk[0].candidates.to_string(),
            format!("{:.2}ms", by("blocked") * 1e3),
            format!("{:.2}ms", by("fused") * 1e3),
            format!("{:.2}ms", by("bitmap") * 1e3),
            format!("{:.1}x", by("fused") / by("bitmap").max(1e-12)),
        ]);
    }
    out(&table.render());

    // Incremental reuse: evaluate a level-4 set cold (every child is a
    // four-column AND chain from scratch) vs warm (the engine just walked
    // levels 2 and 3 under a budget, so each child can be one fused
    // parent-AND-column pass against a cached level-3 bitmap). The warm
    // priming is untimed — in a real run every level is evaluated anyway.
    // On row-derived candidate sets the cold AND chains re-read a few
    // dozen distinct column bitmaps that stay CPU-cache-hot, while every
    // cached parent is unique and streams from memory once, so blind
    // caching used to lose (0.36x). The engine's cost model now observes
    // both rates live and stops admitting parents once hits measure
    // slower than recompute, so warm converges to >= ~1.0x; both sides
    // are timed min-of-reps so the warm number reflects the calibrated
    // steady state rather than the bootstrap rep that feeds the model.
    let x = one_hot_encode(&base.x0);
    let errors = base.errors.clone();
    let ctx = ScoringContext::new(&errors, 0.95);
    let quads = candidates_from_rows(&x, 4, 512);
    let subsets = |sets: &[Vec<u32>]| {
        let mut out: Vec<Vec<u32>> = sets
            .iter()
            .flat_map(|s| {
                (0..s.len()).map(|drop| {
                    let mut p = s.clone();
                    p.remove(drop);
                    p
                })
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    let triples = subsets(&quads);
    let pairs = subsets(&triples);
    let eval = |engine: &mut EvalEngine, slices: &[Vec<u32>], level: usize| {
        let start = Instant::now();
        evaluate_slices_with(
            &x,
            &errors,
            slices.to_vec(),
            level,
            &ctx,
            EvalKernel::Bitmap,
            &exec,
            engine,
        );
        start.elapsed().as_secs_f64()
    };
    const INC_REPS: usize = 4;
    // Both engines walk the full level chain each rep (a real run
    // evaluates every level either way); only the level-4 timing is
    // compared, so the sole difference is the caching policy. Cold:
    // packing amortized by one warmup, no parent cache. Warm: budgeted
    // cache behind the cost model — rep 1 bootstrap-admits and feeds the
    // model; the min over later reps is the calibrated steady state.
    let mut cold_engine = EvalEngine::new(0);
    eval(&mut cold_engine, &quads, 4);
    let mut cold = f64::INFINITY;
    let mut warm_engine = EvalEngine::new(EvalEngine::DEFAULT_CACHE_BYTES);
    let mut warm = f64::INFINITY;
    // Under --warm-gate, a sub-1.0 reading retries the measurement (the
    // engines stay calibrated, so retries sample pure steady state) —
    // min-of-mins separates "admission genuinely loses" from timer noise
    // on two otherwise identical code paths.
    let attempts = if args.warm_gate { 3 } else { 1 };
    for attempt in 0..attempts {
        for _ in 0..INC_REPS {
            eval(&mut cold_engine, &pairs, 2);
            eval(&mut cold_engine, &triples, 3);
            cold = cold.min(eval(&mut cold_engine, &quads, 4));
            eval(&mut warm_engine, &pairs, 2);
            eval(&mut warm_engine, &triples, 3);
            warm = warm.min(eval(&mut warm_engine, &quads, 4));
        }
        if cold / warm.max(1e-12) >= 1.0 {
            break;
        }
        if attempt + 1 < attempts {
            eprintln!(
                "warm gate: {:.3}x after attempt {}, retrying",
                cold / warm.max(1e-12),
                attempt + 1
            );
        }
    }
    out(&format!(
        "incremental parent-bitmap reuse (level-4 set, {} rows)",
        x.rows()
    ));
    let mut inc = TextTable::new(&["candidates", "cold", "warm (cached parents)", "speedup"]);
    inc.row(&[
        quads.len().to_string(),
        format!("{:.2}ms", cold * 1e3),
        format!("{:.2}ms", warm * 1e3),
        format!("{:.2}x", cold / warm.max(1e-12)),
    ]);
    out(&inc.render());

    // The acceptance headline: bitmap vs fused at the largest cell.
    let largest: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.rows == cells.last().unwrap().rows)
        .filter(|c| c.candidates == cells.last().unwrap().candidates)
        .collect();
    let at = |name: &str| largest.iter().find(|c| c.kernel == name).unwrap().secs;
    let headline = at("fused") / at("bitmap").max(1e-12);
    out(&format!(
        "largest cell ({} rows, {} candidates): bitmap {:.1}x faster than fused",
        largest[0].rows, largest[0].candidates, headline
    ));

    if args.stats_json {
        let mut json = String::from("{\n  \"bench\": \"kernel_compare\",\n");
        json.push_str(&format!(
            "  \"threads\": {threads},\n  \"scale\": {},\n  \"seed\": {},\n",
            args.scale, args.seed
        ));
        json.push_str(&format!("  \"parity_checked_slices\": {parity_checked},\n"));
        json.push_str("  \"parity\": \"ok\",\n  \"level2\": [\n");
        for (i, c) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"rows\": {}, \"candidates\": {}, \"kernel\": \"{}\", \"secs_per_eval\": {:.6e}}}{}\n",
                c.rows,
                c.candidates,
                c.kernel,
                c.secs,
                if i + 1 == cells.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"incremental\": {{\"rows\": {}, \"candidates\": {}, \"cold_secs\": {:.6e}, \"warm_secs\": {:.6e}, \"warm_speedup\": {:.3}}},\n",
            x.rows(),
            quads.len(),
            cold,
            warm,
            cold / warm.max(1e-12)
        ));
        json.push_str(&format!(
            "  \"largest_cell\": {{\"rows\": {}, \"candidates\": {}, \"fused_secs\": {:.6e}, \"bitmap_secs\": {:.6e}, \"bitmap_speedup_vs_fused\": {:.3}}}\n}}\n",
            largest[0].rows,
            largest[0].candidates,
            at("fused"),
            at("bitmap"),
            headline
        ));
        print!("{json}");
    }

    if args.warm_gate {
        let speedup = cold / warm.max(1e-12);
        if speedup < 1.0 {
            eprintln!(
                "WARM GATE FAILURE: cost-model cache admission lost to recompute \
                 ({speedup:.3}x, need >= 1.0x)"
            );
            std::process::exit(1);
        }
        out(&format!("warm gate: ok ({speedup:.3}x >= 1.0x)"));
    }
}
