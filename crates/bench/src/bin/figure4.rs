//! Figure 4 — slice enumeration characteristics per dataset.
//!
//! With all pruning enabled (α = 0.95, σ = ⌈n/100⌉), the paper reports
//! the number of *candidate* slices handed to evaluation and the number
//! of *valid* slices (still ≥ σ with positive error) per lattice level:
//! Adult terminates early (level 12 of 14); KDD98/USCensus/Covtype have
//! thousands of candidates per level and are capped at ⌈L⌉ = 3–4 due to
//! correlations. Candidates closely tracking valid slices is the paper's
//! evidence that pruning is nearly perfect.

use sliceline::{MinSupport, SliceLine, SliceLineConfig};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_datagen::{adult_like, census_like, covtype_like, kdd98_like};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 4: Dataset Slice Enumeration (# slices per level)",
        &args,
    );
    let cfg = args.gen_config();
    // (dataset, max_level) — the paper caps correlated datasets at 3-4.
    let runs = vec![
        (adult_like(&cfg), usize::MAX),
        (kdd98_like(&cfg), 3),
        (census_like(&cfg), 3),
        // The paper caps Covtype at L=4 on a 112-vcore node; the
        // correlated indicator clique makes L4 combinatorially wide, so
        // the laptop default stops at L=3 (raise via --paper hardware).
        (covtype_like(&cfg), 3),
    ];
    for (dataset, max_level) in runs {
        let config = SliceLineConfig::builder()
            .k(4)
            .alpha(0.95)
            .max_level(max_level)
            .threads(args.resolved_threads())
            .build()
            .expect("static config");
        let mut config = config;
        config.min_support = MinSupport::Fraction(0.01);
        let result = SliceLine::new(config)
            .find_slices(&dataset.x0, &dataset.errors)
            .expect("generated input is valid");
        println!(
            "--- {} (n={}, m={}, l={}, sigma={}, L<= {}) total {} ---",
            dataset.name,
            dataset.n(),
            dataset.m(),
            dataset.l(),
            result.stats.sigma,
            if max_level == usize::MAX {
                "inf".to_string()
            } else {
                max_level.to_string()
            },
            fmt_secs(result.stats.total_elapsed),
        );
        let mut table = TextTable::new(&["level", "candidates", "valid", "elapsed"]);
        for l in &result.stats.levels {
            table.row(&[
                l.level.to_string(),
                l.candidates.to_string(),
                l.valid.to_string(),
                fmt_secs(l.elapsed),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "expected shape (paper Fig. 4): candidates closely match valid slices \
         at every level (pruning is effective); Adult terminates early, the \
         correlated datasets stay wide within their level caps."
    );
}
