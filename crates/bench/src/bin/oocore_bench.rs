//! Out-of-core slice finding — chunked bounded-memory execution at
//! Criteo scale.
//!
//! Three sections:
//!
//! 1. **Parity gate** (always runs; `--parity-gate` stops after it):
//!    the chunk-streamed driver must return bit-for-bit identical top-K
//!    slices and level counts to the in-memory path on materialized
//!    `CriteoStream` data, across evaluation kernels, chunk sizes, and a
//!    forced-spill budget. Any divergence exits non-zero, so CI gates on
//!    this binary (the `oocore-smoke` job).
//!
//! 2. **Spill cell**: a mid-size stream under a budget small enough that
//!    projected chunks overflow to the spill file, with level-3 replay —
//!    checked bit-for-bit against the in-memory oracle, with the spill
//!    gauges and peak RSS reported.
//!
//! 3. **Scale cell**: a Criteo-scale row stream (default 100M rows,
//!    `--scale` multiplies) driven end-to-end under a fixed memory
//!    budget the fully-materialized path cannot meet (the one-hot
//!    footprint estimate is ~60 GB at 100M rows vs a 1 GiB budget), with
//!    measured peak RSS from the `obs.mem.rss_peak_bytes` gauge.
//!
//! ```sh
//! cargo run --release -p sliceline-bench --bin oocore_bench -- --stats-json
//! ```
//!
//! `--stats-json` writes machine-readable results to stdout (tables move
//! to stderr); the committed `BENCH_oocore.json` is that output.

use sliceline::config::{EvalKernel, MinSupport, SliceLineConfig};
use sliceline::oocore::{
    OOCORE_CHUNKS_GAUGE, OOCORE_CHUNK_ROWS_GAUGE, OOCORE_SPILLED_BYTES_GAUGE,
    OOCORE_SPILLED_CHUNKS_GAUGE,
};
use sliceline::{find_slices_streamed_in, SliceLine, SliceLineResult};
use sliceline_bench::{banner, BenchArgs, TextTable};
use sliceline_datagen::CriteoStream;
use sliceline_obs::mem::RSS_PEAK_GAUGE;
use std::time::Instant;

/// One top-K entry: predicates plus exact score/size/error/max_error bits.
type SliceBits = (Vec<(usize, u32)>, u64, u64, u64, u64);

/// Comparable fingerprint: exact top-K bits plus enumerated level count.
fn fingerprint(r: &SliceLineResult) -> (Vec<SliceBits>, usize) {
    (
        r.top_k
            .iter()
            .map(|s| {
                (
                    s.predicates.clone(),
                    s.score.to_bits(),
                    s.size.to_bits(),
                    s.error.to_bits(),
                    s.max_error.to_bits(),
                )
            })
            .collect(),
        r.stats.levels.len(),
    )
}

fn config(sigma: f64, max_level: usize, threads: usize, eval: EvalKernel) -> SliceLineConfig {
    let mut cfg = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .max_level(max_level)
        .threads(threads)
        .build()
        .unwrap();
    cfg.min_support = MinSupport::Fraction(sigma);
    cfg.eval = eval;
    cfg
}

/// Streams `source` under `cfg`, returning the result plus the gauge
/// snapshot the run left behind.
struct StreamRun {
    result: SliceLineResult,
    elapsed_secs: f64,
    chunk_rows: f64,
    chunks: f64,
    spilled_chunks: f64,
    spilled_bytes: f64,
    rss_peak_bytes: f64,
}

fn stream(source: &mut CriteoStream, cfg: &SliceLineConfig) -> StreamRun {
    let exec = cfg.exec_context();
    let start = Instant::now();
    let result = find_slices_streamed_in(source, cfg, &exec).expect("streamed run failed");
    let elapsed_secs = start.elapsed().as_secs_f64();
    let metrics = exec.metrics();
    StreamRun {
        result,
        elapsed_secs,
        chunk_rows: metrics.gauge(OOCORE_CHUNK_ROWS_GAUGE).value(),
        chunks: metrics.gauge(OOCORE_CHUNKS_GAUGE).value(),
        spilled_chunks: metrics.gauge(OOCORE_SPILLED_CHUNKS_GAUGE).value(),
        spilled_bytes: metrics.gauge(OOCORE_SPILLED_BYTES_GAUGE).value(),
        rss_peak_bytes: metrics.gauge(RSS_PEAK_GAUGE).value(),
    }
}

/// Estimated bytes of the fully-materialized path at `n` rows: integer
/// codes, one-hot CSR (u32 col + f64 value per nonzero, u64 row_ptr),
/// and the error vector.
fn materialized_estimate(n: usize, m: usize) -> u64 {
    (n as u64) * ((m as u64) * (4 + 12) + 8 + 8)
}

fn mb(bytes: f64) -> f64 {
    bytes / (1u64 << 20) as f64
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parity_gate = raw.iter().any(|a| a == "--parity-gate");
    let args = BenchArgs::parse_from(raw.into_iter().filter(|a| a != "--parity-gate"));
    let threads = args.resolved_threads();
    let out = |s: &str| {
        if args.stats_json {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    };
    if !args.stats_json {
        banner("Out-of-core: chunked bounded-memory execution", &args);
    }

    // --- Parity gate ---------------------------------------------------
    // sigma 0.01 keeps the planted slices (2% of rows) above support, so
    // the gate also checks recovery through the streamed path.
    let gate_rows = ((60_000.0 * args.scale) as usize).clamp(5_000, 240_000);
    let oracle_stream = CriteoStream::new(args.seed, gate_rows);
    let (x0, errors) = oracle_stream.materialize();
    let mut cells = 0usize;
    for eval in [EvalKernel::default(), EvalKernel::Bitmap] {
        let base = fingerprint(
            &SliceLine::new(config(0.01, 3, 1, eval))
                .find_slices(&x0, &errors)
                .expect("in-memory oracle failed"),
        );
        for chunk_rows in [gate_rows / 7 + 1, gate_rows, 2 * gate_rows] {
            let mut cfg = config(0.01, 3, 1, eval);
            cfg.chunk_rows = chunk_rows;
            let mut src = CriteoStream::new(args.seed, gate_rows);
            let got = fingerprint(&stream(&mut src, &cfg).result);
            if got != base {
                eprintln!("PARITY FAILURE: streamed {eval:?} chunk={chunk_rows} diverged");
                std::process::exit(1);
            }
            cells += 1;
        }
        // Forced spill: a budget far below one projected chunk pushes
        // every level-2 chunk through the temp file.
        let mut cfg = config(0.01, 3, 1, eval);
        cfg.chunk_rows = gate_rows / 5 + 1;
        cfg.mem_budget_bytes = 1 << 20;
        let mut src = CriteoStream::new(args.seed, gate_rows);
        let run = stream(&mut src, &cfg);
        if fingerprint(&run.result) != base {
            eprintln!("PARITY FAILURE: forced-spill {eval:?} diverged");
            std::process::exit(1);
        }
        if run.spilled_chunks == 0.0 {
            eprintln!("GATE FAILURE: 1 MiB budget did not trigger the spill path");
            std::process::exit(1);
        }
        cells += 1;
    }
    out(&format!(
        "parity: streamed == in-memory bit-for-bit over {cells} kernel x chunk x budget cells \
         ({gate_rows} rows)\n"
    ));
    if parity_gate {
        if args.stats_json {
            println!(
                "{{\"bench\": \"oocore_bench\", \"parity_cells\": {cells}, \"parity\": \"ok\"}}"
            );
        } else {
            println!("parity gate passed ({cells} cells)");
        }
        return;
    }

    // --- Spill cell ----------------------------------------------------
    // Mid-size stream with level-3 replay under a budget that forces the
    // chunk cache onto disk, checked against the in-memory oracle.
    let spill_rows = ((1_000_000.0 * args.scale) as usize).max(100_000);
    let spill_budget = 64usize << 20;
    let spill_cfg = {
        let mut c = config(0.05, 3, threads, EvalKernel::default());
        c.mem_budget_bytes = spill_budget;
        c
    };
    let mut src = CriteoStream::new(args.seed, spill_rows);
    let spill_run = stream(&mut src, &spill_cfg);
    let (sx0, serrors) = CriteoStream::new(args.seed, spill_rows).materialize();
    let spill_oracle = fingerprint(
        &SliceLine::new(config(0.05, 3, threads, EvalKernel::default()))
            .find_slices(&sx0, &serrors)
            .expect("spill oracle failed"),
    );
    drop((sx0, serrors));
    if fingerprint(&spill_run.result) != spill_oracle {
        eprintln!("PARITY FAILURE: spill cell diverged from the in-memory oracle");
        std::process::exit(1);
    }
    let mut table = TextTable::new(&["cell", "rows", "budget", "chunks", "spilled", "rss_peak"]);
    table.row(&[
        "spill".into(),
        spill_rows.to_string(),
        format!("{:.0} MiB", mb(spill_budget as f64)),
        format!("{:.0}", spill_run.chunks),
        format!(
            "{:.0} ({:.1} MiB)",
            spill_run.spilled_chunks,
            mb(spill_run.spilled_bytes)
        ),
        format!("{:.0} MiB", mb(spill_run.rss_peak_bytes)),
    ]);

    // --- Scale cell ----------------------------------------------------
    // The headline: a Criteo-scale stream under a budget the one-hot
    // materialization exceeds by ~60x. max_level 2 keeps the generator
    // at exactly two passes (pass A + the level-2 stream); deeper levels
    // are the spill cell's job.
    let scale_rows = ((100_000_000.0 * args.scale) as usize).max(1_000_000);
    let scale_budget = 1024usize << 20;
    let scale_cfg = {
        let mut c = config(0.05, 2, threads, EvalKernel::Bitmap);
        c.mem_budget_bytes = scale_budget;
        c
    };
    let mut src = CriteoStream::new(args.seed, scale_rows);
    let scale_run = stream(&mut src, &scale_cfg);
    let est = materialized_estimate(scale_rows, 39);
    let top1 = scale_run
        .result
        .top_k
        .first()
        .map(|s| format!("{:?}", s.predicates))
        .unwrap_or_else(|| "none".to_string());
    table.row(&[
        "scale".into(),
        scale_rows.to_string(),
        format!("{:.0} MiB", mb(scale_budget as f64)),
        format!("{:.0}", scale_run.chunks),
        "0 (max_level 2)".into(),
        format!("{:.0} MiB", mb(scale_run.rss_peak_bytes)),
    ]);
    out(&table.render());
    out(&format!(
        "scale: {scale_rows} rows in {:.1}s ({:.2}M rows/s), chunk_rows {:.0}, peak RSS \
         {:.0} MiB under a {:.0} MiB budget; materialized estimate {:.0} MiB ({:.0}x budget); \
         top-1 {top1}\n",
        scale_run.elapsed_secs,
        scale_rows as f64 / scale_run.elapsed_secs / 1e6,
        scale_run.chunk_rows,
        mb(scale_run.rss_peak_bytes),
        mb(scale_budget as f64),
        mb(est as f64),
        est as f64 / scale_budget as f64,
    ));
    if scale_run.rss_peak_bytes > 0.0 && scale_run.rss_peak_bytes as u64 > 4 * scale_budget as u64 {
        // The RSS gauge counts the whole process (allocator slack, code,
        // test scaffolding), so the gate is deliberately loose — it
        // catches accidental O(n) materialization, not allocator noise.
        eprintln!("GATE FAILURE: peak RSS far above the configured budget");
        std::process::exit(1);
    }

    if args.stats_json {
        let mut json = String::from("{\n  \"bench\": \"oocore_bench\",\n");
        json.push_str(&format!(
            "  \"threads\": {threads},\n  \"scale\": {},\n  \"seed\": {},\n",
            args.scale, args.seed
        ));
        json.push_str(&format!(
            "  \"parity_cells\": {cells},\n  \"parity\": \"ok\",\n"
        ));
        json.push_str(&format!(
            "  \"spill\": {{\"rows\": {spill_rows}, \"budget_mb\": {:.0}, \"chunks\": {:.0}, \
             \"spilled_chunks\": {:.0}, \"spilled_mb\": {:.1}, \"rss_peak_mb\": {:.0}, \
             \"elapsed_secs\": {:.3}, \"parity\": \"ok\"}},\n",
            mb(spill_budget as f64),
            spill_run.chunks,
            spill_run.spilled_chunks,
            mb(spill_run.spilled_bytes),
            mb(spill_run.rss_peak_bytes),
            spill_run.elapsed_secs,
        ));
        json.push_str(&format!(
            "  \"stream\": {{\"rows\": {scale_rows}, \"features\": 39, \"onehot_cols\": 738210, \
             \"budget_mb\": {:.0}, \"chunk_rows\": {:.0}, \"chunks\": {:.0}, \
             \"elapsed_secs\": {:.3}, \"rows_per_sec\": {:.0}, \"rss_peak_mb\": {:.0}, \
             \"materialized_est_mb\": {:.0}, \"top1_predicates\": \"{}\"}}\n}}\n",
            mb(scale_budget as f64),
            scale_run.chunk_rows,
            scale_run.chunks,
            scale_run.elapsed_secs,
            scale_rows as f64 / scale_run.elapsed_secs,
            mb(scale_run.rss_peak_bytes),
            mb(est as f64),
            top1.replace('"', ""),
        ));
        print!("{json}");
    }
}
