//! Diagnostic: times each α cell of the Fig. 5 sweep on one dataset
//! (selected via `PROBE_DATASET` ∈ {adult, kdd98, census}; default adult).
//! Used to validate that every cell of the figure5 harness terminates and
//! to observe the score/size monotonicity directly.
use std::time::Instant;

fn main() {
    let name = std::env::var("PROBE_DATASET").unwrap_or_else(|_| "adult".to_string());
    let cfg = sliceline_datagen::GenConfig {
        seed: 42,
        scale: 1.0,
    };
    let d = match name.as_str() {
        "census" => sliceline_datagen::census_like(&cfg),
        "kdd98" => sliceline_datagen::kdd98_like(&cfg),
        _ => sliceline_datagen::adult_like(&cfg),
    };
    for alpha in [0.36, 0.68, 0.84, 0.92, 0.96, 0.98, 0.99] {
        let mut config = sliceline::SliceLineConfig::builder()
            .k(4)
            .alpha(alpha)
            .max_level(3)
            .eval(sliceline::EvalKernel::Auto {
                block_size: 16,
                fused_above: 4096,
            })
            .threads(4)
            .build()
            .unwrap();
        config.min_support = sliceline::MinSupport::Fraction(0.01);
        let t = Instant::now();
        let r = sliceline::SliceLine::new(config)
            .find_slices(&d.x0, &d.errors)
            .unwrap();
        println!(
            "alpha={alpha}: {:?}, evaluated {}, top1 {:?}",
            t.elapsed(),
            r.stats.total_evaluated(),
            r.top_k.first().map(|s| (s.score, s.size))
        );
    }
    println!("SWEEP_DONE");
}
