//! Observability overhead gate: telemetry + tracing must cost < 2% wall
//! time (satellite budget of the tracing subsystem) and must not change
//! the top-K.
//!
//! Runs the AdultSim workload three ways through fresh execution
//! contexts — everything off, `--stats` telemetry on, telemetry + tracer
//! on — taking the min of N runs per variant (min, not mean: the floor is
//! the honest estimate of achievable cost under scheduler noise). Exits 1
//! when the traced variant exceeds `--max-overhead` percent over the
//! baseline, so CI can gate regressions in span granularity.

use sliceline::{SliceLine, SliceLineConfig, SliceLineResult};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_datagen::adult_like;
use sliceline_frame::IntMatrix;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const RUNS: usize = 5;

fn run_variant(
    config: &SliceLineConfig,
    x0: &IntMatrix,
    errors: &[f64],
    stats: bool,
    trace: bool,
) -> (Duration, SliceLineResult, usize) {
    let exec = config.exec_context();
    exec.enable_stats(stats);
    exec.tracer().set_enabled(trace);
    let finder = SliceLine::new(config.clone());
    let mut best = Duration::MAX;
    let mut result = None;
    for _ in 0..RUNS {
        exec.tracer().reset();
        let start = Instant::now();
        let r = finder
            .find_slices_in(x0, errors, &exec)
            .expect("workload is valid");
        best = best.min(start.elapsed());
        result = Some(r);
    }
    let events = if trace {
        exec.tracer().drain().len()
    } else {
        0
    };
    (best, result.expect("RUNS > 0"), events)
}

fn main() -> ExitCode {
    // BenchArgs rejects unknown flags, so the gate threshold rides in
    // front: `obs_overhead [--max-overhead PCT] [bench args...]`.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut max_overhead = 2.0f64;
    if let Some(pos) = raw.iter().position(|a| a == "--max-overhead") {
        raw.remove(pos);
        max_overhead = raw
            .get(pos)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--max-overhead needs a percentage");
                std::process::exit(2);
            });
        raw.remove(pos);
    }
    let args = BenchArgs::parse_from(raw);
    banner("observability overhead (telemetry + tracing vs off)", &args);

    let d = adult_like(&args.gen_config());
    let sigma = (d.n() / 100).max(1);
    let config = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .min_support(sigma)
        .threads(args.resolved_threads())
        .build()
        .expect("static config is valid");

    let (off, base_result, _) = run_variant(&config, &d.x0, &d.errors, false, false);
    let (stats_on, stats_result, _) = run_variant(&config, &d.x0, &d.errors, true, false);
    let (traced, traced_result, events) = run_variant(&config, &d.x0, &d.errors, true, true);

    let pct = |on: Duration| (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
    let mut table = TextTable::new(&["variant", "best-of-5", "overhead %", "events"]);
    table.row(&["off".into(), fmt_secs(off), "—".into(), "0".into()]);
    table.row(&[
        "stats".into(),
        fmt_secs(stats_on),
        format!("{:+.2}", pct(stats_on)),
        "0".into(),
    ]);
    table.row(&[
        "stats+trace".into(),
        fmt_secs(traced),
        format!("{:+.2}", pct(traced)),
        events.to_string(),
    ]);
    print!("{}", table.render());

    for (name, r) in [("stats", &stats_result), ("stats+trace", &traced_result)] {
        let same = r.top_k.len() == base_result.top_k.len()
            && r.top_k
                .iter()
                .zip(&base_result.top_k)
                .all(|(a, b)| a.predicates == b.predicates && a.score == b.score);
        if !same {
            eprintln!("FAIL: '{name}' changed the top-K — observation must not perturb");
            return ExitCode::FAILURE;
        }
    }
    let overhead = pct(traced);
    if overhead > max_overhead {
        eprintln!("FAIL: tracing overhead {overhead:+.2}% exceeds the {max_overhead}% budget");
        return ExitCode::FAILURE;
    }
    println!("ok: tracing overhead {overhead:+.2}% within the {max_overhead}% budget");
    ExitCode::SUCCESS
}
