//! Enumeration-engine comparison — serial vs sharded candidate generation.
//!
//! Builds genuine level states (data preparation → basic slices → level-2
//! evaluation) on AdultSim and the wide KDD98Sim (the many-features regime
//! where the level-2 join dominates end-to-end time, paper §5.2/Fig. 4b)
//! and times `get_pair_candidates` under both engines on identical inputs.
//! Before any timing, the engines are checked for identical candidate sets
//! (up to ordering) and identical `EnumStats` counters on every cell; any
//! divergence exits non-zero, so this binary doubles as the CI parity
//! gate.
//!
//! ```sh
//! cargo run --release -p sliceline-bench --bin enum_compare -- --stats-json
//! ```
//!
//! `--stats-json` writes the machine-readable results to stdout (tables
//! move to stderr); the committed `BENCH_enum.json` is that output.

use sliceline::config::{EnumKernel, EvalKernel, PruningConfig};
use sliceline::enumerate::{get_pair_candidates, EnumStats};
use sliceline::evaluate::evaluate_slices;
use sliceline::init::{create_and_score_basic_slices, LevelState};
use sliceline::prepare::prepare;
use sliceline::topk::TopK;
use sliceline::{MinSupport, ScoringContext, SliceLineConfig};
use sliceline_bench::{banner, BenchArgs, TextTable};
use sliceline_datagen::{adult_like, kdd98_like, Dataset};
use sliceline_linalg::ExecContext;
use std::time::Instant;

/// One benchmark cell: a (dataset, level) join problem.
struct Cell {
    dataset: &'static str,
    level: usize,
    parents: usize,
    pairs: usize,
    survivors: usize,
    serial_secs: f64,
    serial_join: f64,
    serial_dedup: f64,
    sharded_secs: f64,
    sharded_join: f64,
    sharded_dedup: f64,
}

/// A prepared join problem: the level state plus everything
/// `get_pair_candidates` reads.
struct JoinProblem {
    prev: LevelState,
    level: usize,
    col_feature: Vec<u32>,
    num_cols: usize,
    ctx: ScoringContext,
    sigma: usize,
    topk: TopK,
}

impl JoinProblem {
    fn run(&self, kernel: EnumKernel, exec: &ExecContext) -> (Vec<Vec<u32>>, EnumStats) {
        get_pair_candidates(
            &self.prev,
            self.level,
            &self.col_feature,
            self.num_cols,
            &self.ctx,
            self.sigma,
            &PruningConfig::all(),
            &self.topk,
            kernel,
            exec,
        )
    }

    /// Seconds per call (repetition-averaged after one untimed warmup)
    /// plus the last call's join/dedup phase split.
    fn time(&self, kernel: EnumKernel, exec: &ExecContext) -> (f64, EnumStats) {
        self.run(kernel, exec);
        let est_start = Instant::now();
        self.run(kernel, exec);
        let est = est_start.elapsed().as_secs_f64();
        let reps = ((0.5 / est.max(1e-6)) as usize).clamp(1, 20);
        let start = Instant::now();
        let mut stats = EnumStats::default();
        for _ in 0..reps {
            stats = self.run(kernel, exec).1;
        }
        (start.elapsed().as_secs_f64() / reps as f64, stats)
    }
}

/// Builds the level-(L−1) join problems for one dataset: always the
/// level-2 join over basic slices, plus (when `with_level3`) the level-3
/// join over the bitmap-evaluated level-2 survivors.
fn problems(d: &Dataset, sigma: usize, with_level3: bool, exec: &ExecContext) -> Vec<JoinProblem> {
    let config = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .build()
        .expect("static config");
    let mut config = config;
    config.min_support = MinSupport::Absolute(sigma);
    let prepared = prepare(&d.x0, &d.errors, &config, exec).expect("generated data is valid");
    let (proj, level1) = create_and_score_basic_slices(&prepared, exec);
    let mut topk = TopK::new(4, prepared.sigma);
    topk.update(&level1);
    let mut out = Vec::new();
    let base = JoinProblem {
        prev: level1,
        level: 2,
        col_feature: proj.col_feature.clone(),
        num_cols: proj.x.cols(),
        ctx: prepared.ctx,
        sigma: prepared.sigma,
        topk,
    };
    if with_level3 {
        // Evaluate the level-2 survivors to get a real level-2 state.
        let (cands, _) = base.run(EnumKernel::Serial, exec);
        let level2 = evaluate_slices(
            &proj.x,
            &prepared.errors,
            cands,
            2,
            &prepared.ctx,
            EvalKernel::Bitmap,
            exec,
        );
        let mut topk3 = TopK::new(4, prepared.sigma);
        topk3.update(&level2);
        out.push(JoinProblem {
            prev: level2,
            level: 3,
            col_feature: base.col_feature.clone(),
            num_cols: base.num_cols,
            ctx: base.ctx,
            sigma: base.sigma,
            topk: topk3,
        });
    }
    out.insert(0, base);
    out
}

fn main() {
    let args = BenchArgs::parse();
    let out = |s: &str| {
        if args.stats_json {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    };
    if !args.stats_json {
        banner("Enumeration comparison: serial vs sharded", &args);
    }
    let threads = args.resolved_threads();
    let exec = ExecContext::new(threads);
    let serial_exec = ExecContext::serial();
    let gen = args.gen_config();
    // (dataset, sigma, level-3 too?). KDD98Sim is the wide regime the
    // sharded engine targets (8,378 one-hot columns -> a huge level-2
    // join); its level-2 survivor set is too large to evaluate in a bench,
    // so only AdultSim exercises the level-3 join.
    let specs: [(&'static str, Dataset, usize, bool); 2] = [
        ("adult", adult_like(&gen), 32, true),
        ("kdd98", kdd98_like(&gen), 32, false),
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for (name, dataset, sigma, with_level3) in &specs {
        for problem in problems(dataset, *sigma, *with_level3, &exec) {
            // Parity gate before any timing: identical sets and counters
            // across engines, thread counts, and shard counts.
            let (mut serial, serial_stats) = problem.run(EnumKernel::Serial, &serial_exec);
            serial.sort_unstable();
            for (shards, ex) in [(0usize, &exec), (7, &exec), (3, &serial_exec)] {
                let (mut sharded, sharded_stats) = problem.run(EnumKernel::Sharded { shards }, ex);
                sharded.sort_unstable();
                if sharded != serial || !sharded_stats.same_counters(&serial_stats) {
                    eprintln!(
                        "PARITY FAILURE: {name} level {} shards {shards}: engines diverged\n\
                         serial  {serial_stats:?}\nsharded {sharded_stats:?}",
                        problem.level
                    );
                    std::process::exit(1);
                }
            }
            let (serial_secs, s_split) = problem.time(EnumKernel::Serial, &exec);
            let (sharded_secs, sh_split) = problem.time(EnumKernel::Sharded { shards: 0 }, &exec);
            cells.push(Cell {
                dataset: name,
                level: problem.level,
                parents: serial_stats.parents,
                pairs: serial_stats.pairs,
                survivors: serial_stats.survivors,
                serial_secs,
                serial_join: s_split.join_time.as_secs_f64(),
                serial_dedup: s_split.dedup_time.as_secs_f64(),
                sharded_secs,
                sharded_join: sh_split.join_time.as_secs_f64(),
                sharded_dedup: sh_split.dedup_time.as_secs_f64(),
            });
        }
    }
    out("parity: serial and sharded engines agree on every cell\n");
    out("candidate-generation time per call (lower is better)");
    let mut table = TextTable::new(&[
        "dataset",
        "level",
        "parents",
        "pairs",
        "survivors",
        "serial (join+dedup)",
        "sharded (join+dedup)",
        "speedup",
    ]);
    for c in &cells {
        table.row(&[
            c.dataset.to_string(),
            c.level.to_string(),
            c.parents.to_string(),
            c.pairs.to_string(),
            c.survivors.to_string(),
            format!(
                "{:.2}ms ({:.1}+{:.1})",
                c.serial_secs * 1e3,
                c.serial_join * 1e3,
                c.serial_dedup * 1e3
            ),
            format!(
                "{:.2}ms ({:.1}+{:.1})",
                c.sharded_secs * 1e3,
                c.sharded_join * 1e3,
                c.sharded_dedup * 1e3
            ),
            format!("{:.2}x", c.serial_secs / c.sharded_secs.max(1e-12)),
        ]);
    }
    out(&table.render());

    // The acceptance headline: the largest cell by pair count.
    let largest = cells
        .iter()
        .max_by_key(|c| c.pairs)
        .expect("at least one cell");
    out(&format!(
        "largest cell ({} level {}, {} pairs): sharded {:.2}x faster than serial at {threads} threads",
        largest.dataset,
        largest.level,
        largest.pairs,
        largest.serial_secs / largest.sharded_secs.max(1e-12)
    ));

    if args.stats_json {
        let mut json = String::from("{\n  \"bench\": \"enum_compare\",\n");
        json.push_str(&format!(
            "  \"threads\": {threads},\n  \"scale\": {},\n  \"seed\": {},\n",
            args.scale, args.seed
        ));
        json.push_str("  \"parity\": \"ok\",\n  \"cells\": [\n");
        for (i, c) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"level\": {}, \"parents\": {}, \"pairs\": {}, \"survivors\": {}, \"serial_secs\": {:.6e}, \"serial_join_secs\": {:.6e}, \"serial_dedup_secs\": {:.6e}, \"sharded_secs\": {:.6e}, \"sharded_join_secs\": {:.6e}, \"sharded_dedup_secs\": {:.6e}, \"sharded_speedup\": {:.3}}}{}\n",
                c.dataset,
                c.level,
                c.parents,
                c.pairs,
                c.survivors,
                c.serial_secs,
                c.serial_join,
                c.serial_dedup,
                c.sharded_secs,
                c.sharded_join,
                c.sharded_dedup,
                c.serial_secs / c.sharded_secs.max(1e-12),
                if i + 1 == cells.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"largest_cell\": {{\"dataset\": \"{}\", \"level\": {}, \"pairs\": {}, \"serial_secs\": {:.6e}, \"sharded_secs\": {:.6e}, \"sharded_speedup\": {:.3}}}\n}}\n",
            largest.dataset,
            largest.level,
            largest.pairs,
            largest.serial_secs,
            largest.sharded_secs,
            largest.serial_secs / largest.sharded_secs.max(1e-12)
        ));
        print!("{json}");
    }
}
