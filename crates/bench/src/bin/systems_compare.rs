//! §5.4 ML-systems comparison.
//!
//! The paper reports, on Adult with the same configuration (⌈L⌉ = 3):
//! R implementation 200.4s, SystemDS DML 5.6s (efficient sparse linear
//! algebra), and the original SliceFinder's hand-crafted lattice search
//! at >100s. This binary reproduces the comparison structurally:
//!
//! * **optimized backend** — the fused sparse kernels (the SystemDS
//!   analog),
//! * **reference backend** — the generic unfused linear-algebra pipeline
//!   (`spgemm` + materialized intermediates; the R analog),
//! * **SliceFinder baseline** — the heuristic level-wise search.
//!
//! The two SliceLine backends return identical top-K slices; SliceFinder
//! returns its (heuristic) recommendations for qualitative comparison.

use slicefinder_baseline::{SliceFinder, SliceFinderConfig};
use sliceline::lagraph::find_slices_reference;
use sliceline::{MinSupport, SliceLine, SliceLineConfig};
use sliceline_bench::{banner, fmt_secs, BenchArgs, TextTable};
use sliceline_datagen::adult_like;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    banner("ML Systems Comparison (Adult, L<=3)", &args);
    let d = adult_like(&args.gen_config());
    let mut config = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .max_level(3)
        .threads(args.resolved_threads())
        .build()
        .expect("static config");
    config.min_support = MinSupport::Fraction(0.01);

    let mut table = TextTable::new(&["system", "runtime", "top-1", "exact?"]);

    let t = Instant::now();
    let optimized = SliceLine::new(config.clone())
        .find_slices(&d.x0, &d.errors)
        .expect("valid input");
    let opt_time = t.elapsed();
    table.row(&[
        "SliceLine (optimized sparse)".to_string(),
        fmt_secs(opt_time),
        describe_top(&optimized.top_k),
        "yes".to_string(),
    ]);

    let t = Instant::now();
    let reference = find_slices_reference(&d.x0, &d.errors, &config).expect("valid input");
    let ref_time = t.elapsed();
    table.row(&[
        "SliceLine (generic LA reference)".to_string(),
        fmt_secs(ref_time),
        describe_top(&reference.top_k),
        "yes".to_string(),
    ]);

    let t = Instant::now();
    let sf = SliceFinder::new(SliceFinderConfig {
        k: 4,
        min_size: (d.n() / 100).max(1),
        max_level: 3,
        threads: args.resolved_threads(),
        ..Default::default()
    })
    .find_slices(&d.x0, &d.errors);
    let sf_time = t.elapsed();
    table.row(&[
        "SliceFinder baseline (heuristic)".to_string(),
        fmt_secs(sf_time),
        sf.recommended
            .first()
            .map(|s| format!("{:?}", s.predicates))
            .unwrap_or_else(|| "-".to_string()),
        "no".to_string(),
    ]);

    println!("{}", table.render());
    assert_eq!(
        optimized.top_k, reference.top_k,
        "backends must agree on the exact top-K"
    );
    println!(
        "backends agree on the exact top-K; speedup of fused sparse kernels \
         over the generic LA pipeline: {:.1}x \
         (paper: SystemDS 5.6s vs R 200.4s = 36x on real Adult)",
        ref_time.as_secs_f64() / opt_time.as_secs_f64().max(1e-9)
    );
}

fn describe_top(top: &[sliceline::SliceInfo]) -> String {
    top.first()
        .map(|t| format!("{:?} sc={:.3}", t.predicates, t.score))
        .unwrap_or_else(|| "-".to_string())
}
