//! Table 1 — dataset characteristics (n rows, m columns before one-hot
//! encoding, l columns after, ML task).
//!
//! Paper reference values (at full scale): Adult 32,561×14 (l=162),
//! Covtype 581,012×54 (l=188), KDD 98 95,412×469 (l=8,378), US Census
//! 2,458,285×68 (l=378), CriteoD21 192,215,183×39 (l=75,573,541),
//! Salaries 397×5 (l=27). The simulated generators match m and l exactly
//! (Criteo's l scales with n) and n up to the `--scale` factor.

use sliceline_bench::{all_datasets, banner, BenchArgs, TextTable};
use sliceline_datagen::salaries_encoded;

fn main() {
    let args = BenchArgs::parse();
    banner("Table 1: Dataset Characteristics", &args);
    let mut table = TextTable::new(&[
        "Dataset",
        "n (nrow X0)",
        "m (ncol X0)",
        "l (ncol X)",
        "ML Alg.",
    ]);
    for d in all_datasets(&args.gen_config()) {
        table.row(&[
            d.name.clone(),
            d.n().to_string(),
            d.m().to_string(),
            d.l().to_string(),
            d.task.label(),
        ]);
    }
    let sal = salaries_encoded();
    table.row(&[
        "Salaries".to_string(),
        sal.x0.rows().to_string(),
        sal.x0.cols().to_string(),
        sal.x0.onehot_cols().to_string(),
        "Reg.".to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "(paper full-scale reference: Adult 32,561/14/162; Covtype 581,012/54/188; \
         KDD98 95,412/469/8,378; USCensus 2,458,285/68/378; CriteoD21 192M/39/75.6M; \
         Salaries 397/5/27)"
    );
}
