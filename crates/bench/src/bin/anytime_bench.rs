//! Anytime best-first slice finding — parity gate, frontier speedup,
//! and the quality-vs-budget curve.
//!
//! Four sections:
//!
//! 1. **Parity gate** (always runs; `--parity-gate` stops after it): at
//!    unlimited budget the batched bitmap frontier must return
//!    bit-for-bit identical top-K slices to the level-wise oracle,
//!    across evaluation kernels, thread counts, and batch sizes, on two
//!    differently-shaped datasets. Any divergence exits non-zero, so CI
//!    gates on this binary (the `anytime-smoke` job) — timing below is
//!    meaningless if the engine is wrong, so parity runs first.
//!
//! 2. **Frontier speedup**: the batched-bitmap frontier vs the retired
//!    serial priority loop (`find_slices_serial`: one node at a time,
//!    sorted `Vec<u32>` row intersections, no SIMD, no parallelism), both
//!    exact at unlimited budget.
//!
//! 3. **Gap staircase** (deterministic): `max_evals` budgets at growing
//!    fractions of the exact candidate count; the certified gap must
//!    shrink monotonically to zero. Candidate-count budgets make this
//!    machine-independent, so it is asserted at every scale.
//!
//! 4. **Quality-vs-budget curve** (the headline): wall-clock `budget_ms`
//!    deadlines at 2/5/10/25% of the exact level-wise wall time on the
//!    largest cell, reporting the exact-top-K score recall and the
//!    certified gap at each. The ≥0.95-recall-at-≤25% gate only fires at
//!    `--scale >= 1` (the committed run) — at smoke scales the exact run
//!    is milliseconds and deadline granularity dominates.
//!
//! ```sh
//! cargo run --release -p sliceline-bench --bin anytime_bench -- --stats-json
//! ```
//!
//! `--stats-json` writes machine-readable results to stdout (tables move
//! to stderr); the committed `BENCH_anytime.json` is that output.

use sliceline::config::{EvalKernel, MinSupport, SliceLineConfig};
use sliceline::{PrioritySliceLine, SliceLine, SliceLineResult};
use sliceline_bench::{banner, BenchArgs, TextTable};
use sliceline_datagen::{adult_like, kdd98_like, Dataset, GenConfig};
use std::time::Instant;

/// One top-K entry: predicates plus exact score/size/error/max_error bits.
type SliceBits = (Vec<(usize, u32)>, u64, u64, u64, u64);

fn fingerprint(r: &SliceLineResult) -> Vec<SliceBits> {
    r.top_k
        .iter()
        .map(|s| {
            (
                s.predicates.clone(),
                s.score.to_bits(),
                s.size.to_bits(),
                s.error.to_bits(),
                s.max_error.to_bits(),
            )
        })
        .collect()
}

fn config(threads: usize) -> SliceLineConfig {
    let mut cfg = SliceLineConfig::builder()
        .k(10)
        .alpha(0.95)
        .max_level(5)
        .threads(threads)
        .build()
        .unwrap();
    cfg.min_support = MinSupport::Fraction(0.01);
    cfg
}

fn priority_config(threads: usize, batch: usize) -> SliceLineConfig {
    let mut cfg = config(threads);
    cfg.priority = true;
    cfg.priority_batch = batch;
    cfg
}

/// Fraction of the exact top-K scores (by bits) present in `got`.
fn score_recall(exact: &SliceLineResult, got: &SliceLineResult) -> f64 {
    if exact.top_k.is_empty() {
        return 1.0;
    }
    let got_bits: Vec<u64> = got.top_k.iter().map(|s| s.score.to_bits()).collect();
    let hit = exact
        .top_k
        .iter()
        .filter(|s| got_bits.contains(&s.score.to_bits()))
        .count();
    hit as f64 / exact.top_k.len() as f64
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parity_gate = raw.iter().any(|a| a == "--parity-gate");
    let args = BenchArgs::parse_from(raw.into_iter().filter(|a| a != "--parity-gate"));
    let threads = args.resolved_threads().max(1);
    let out = |s: &str| {
        if args.stats_json {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    };
    if !args.stats_json {
        banner(
            "Anytime best-first: parity, speedup, quality-vs-budget",
            &args,
        );
    }

    // --- 1. Parity gate ------------------------------------------------
    // Small, differently-shaped cells: AdultSim (shallow, few columns)
    // and KDD98Sim (wide, heavy pruning). Full fingerprints — predicates
    // and every statistic, bit-for-bit.
    let gate_cfg = GenConfig {
        seed: args.seed,
        scale: args.scale.min(1.0),
    };
    let mut cells = 0usize;
    for data in [adult_like(&gate_cfg), kdd98_like(&gate_cfg)] {
        for eval in [EvalKernel::default(), EvalKernel::Bitmap] {
            let mut cfg = config(1);
            cfg.eval = eval;
            let oracle = fingerprint(
                &SliceLine::new(cfg)
                    .find_slices(&data.x0, &data.errors)
                    .expect("level-wise oracle failed"),
            );
            for (thr, batch) in [(1usize, 1usize), (1, 64), (threads, 64), (threads, 7)] {
                let run = PrioritySliceLine::new(priority_config(thr, batch))
                    .find_slices(&data.x0, &data.errors)
                    .expect("priority run failed");
                if !run.exact || run.gap != 0.0 {
                    eprintln!(
                        "GATE FAILURE: unlimited budget not exact on {} (threads={thr}, batch={batch})",
                        data.name
                    );
                    std::process::exit(1);
                }
                if fingerprint(&run.result) != oracle {
                    eprintln!(
                        "PARITY FAILURE: priority {eval:?} threads={thr} batch={batch} diverged \
                         from level-wise on {}",
                        data.name
                    );
                    std::process::exit(1);
                }
                cells += 1;
            }
        }
    }
    out(&format!(
        "parity: priority == level-wise bit-for-bit over {cells} dataset x kernel x thread x \
         batch cells\n"
    ));
    if parity_gate {
        if args.stats_json {
            println!(
                "{{\"bench\": \"anytime_bench\", \"parity_cells\": {cells}, \"parity\": \"ok\"}}"
            );
        } else {
            println!("parity gate passed ({cells} cells)");
        }
        return;
    }

    // --- 2. Frontier speedup -------------------------------------------
    // Largest cell: KDD98Sim at full scale — the paper's heavy-pruning
    // regime, where the frontier stays narrow and deep.
    let data: Dataset = kdd98_like(&args.gen_config());
    let serial_engine = PrioritySliceLine::new(priority_config(1, 1));
    let t0 = Instant::now();
    let serial = serial_engine
        .find_slices_serial(&data.x0, &data.errors)
        .expect("serial reference failed");
    let serial_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let batched = PrioritySliceLine::new(priority_config(threads, 64))
        .find_slices(&data.x0, &data.errors)
        .expect("batched frontier failed");
    let batched_secs = t0.elapsed().as_secs_f64();
    if fingerprint(&batched.result) != fingerprint(&serial.result) {
        eprintln!("PARITY FAILURE: batched frontier diverged from the serial reference");
        std::process::exit(1);
    }
    let speedup = serial_secs / batched_secs.max(1e-9);
    out(&format!(
        "speedup: serial {serial_secs:.3}s -> batched {batched_secs:.3}s ({speedup:.1}x, \
         {} rows, {} evaluated)\n",
        data.n(),
        batched.evaluated
    ));
    if args.scale >= 1.0 && speedup < 1.5 {
        // The committed run shows >=3x; in-CI runs on noisy two-core
        // machines only gate that batching is not a pessimization.
        eprintln!("GATE FAILURE: batched frontier slower than the serial loop ({speedup:.2}x)");
        std::process::exit(1);
    }

    // --- 3. Gap staircase (deterministic) ------------------------------
    // Candidate-count budgets are machine-independent, so the
    // monotonicity of the certificate is asserted at every scale.
    let total_evals = batched.evaluated.max(1);
    let mut staircase = Vec::new();
    let mut prev_gap = f64::INFINITY;
    for frac in [0.01f64, 0.05, 0.25, 1.0] {
        let mut cfg = priority_config(threads, 64);
        cfg.max_evals = ((total_evals as f64 * frac) as usize).max(1);
        let run = PrioritySliceLine::new(cfg.clone())
            .find_slices(&data.x0, &data.errors)
            .expect("budgeted run failed");
        if run.gap > prev_gap + 1e-12 {
            eprintln!(
                "GATE FAILURE: certified gap grew with budget ({prev_gap} -> {} at {frac})",
                run.gap
            );
            std::process::exit(1);
        }
        prev_gap = run.gap;
        staircase.push((frac, cfg.max_evals, run.gap, run.exact));
    }
    if !staircase.last().map(|s| s.3).unwrap_or(false) {
        eprintln!("GATE FAILURE: full-candidate budget did not certify exactness");
        std::process::exit(1);
    }

    // --- 4. Quality-vs-budget curve ------------------------------------
    let exact_cfg = {
        let mut c = config(threads);
        c.eval = EvalKernel::Bitmap;
        c
    };
    let t0 = Instant::now();
    let exact = SliceLine::new(exact_cfg)
        .find_slices(&data.x0, &data.errors)
        .expect("exact run failed");
    let exact_secs = t0.elapsed().as_secs_f64();
    let mut curve = Vec::new();
    let mut table = TextTable::new(&["budget", "budget_ms", "elapsed", "recall", "gap", "exact"]);
    for frac in [0.02f64, 0.05, 0.10, 0.25] {
        let mut cfg = priority_config(threads, 64);
        cfg.budget_ms = ((exact_secs * 1e3 * frac) as u64).max(1);
        let t0 = Instant::now();
        let run = PrioritySliceLine::new(cfg.clone())
            .find_slices(&data.x0, &data.errors)
            .expect("deadline run failed");
        let elapsed = t0.elapsed().as_secs_f64();
        let recall = score_recall(&exact, &run.result);
        table.row(&[
            format!("{:.0}%", frac * 100.0),
            cfg.budget_ms.to_string(),
            format!("{elapsed:.3}s"),
            format!("{recall:.2}"),
            format!("{:.4}", run.gap),
            run.exact.to_string(),
        ]);
        curve.push((frac, cfg.budget_ms, elapsed, recall, run.gap, run.exact));
    }
    out(&table.render());
    let headline = curve.last().expect("curve is non-empty");
    out(&format!(
        "quality-vs-budget: exact {exact_secs:.3}s; at {:.0}% budget recall {:.2} with \
         certified gap {:.4}\n",
        headline.0 * 100.0,
        headline.3,
        headline.4
    ));
    if args.scale >= 1.0 && headline.3 < 0.95 {
        eprintln!(
            "GATE FAILURE: recall {:.2} < 0.95 at a 25% wall-clock budget",
            headline.3
        );
        std::process::exit(1);
    }

    if args.stats_json {
        let mut json = String::from("{\n  \"bench\": \"anytime_bench\",\n");
        json.push_str(&format!(
            "  \"threads\": {threads},\n  \"scale\": {},\n  \"seed\": {},\n",
            args.scale, args.seed
        ));
        json.push_str(&format!(
            "  \"parity_cells\": {cells},\n  \"parity\": \"ok\",\n"
        ));
        json.push_str(&format!(
            "  \"frontier\": {{\"dataset\": \"{}\", \"rows\": {}, \"evaluated\": {}, \
             \"serial_secs\": {serial_secs:.4}, \"batched_secs\": {batched_secs:.4}, \
             \"batched_speedup\": {speedup:.2}, \"parity\": \"ok\"}},\n",
            data.name,
            data.n(),
            batched.evaluated,
        ));
        json.push_str("  \"gap_staircase\": [\n");
        for (i, (frac, evals, gap, exact)) in staircase.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"cell\": \"evals_{:.0}pct\", \"budget_frac\": {frac}, \
                 \"max_evals\": {evals}, \"gap\": {gap:.6}, \"exact\": {exact}}}{}\n",
                frac * 100.0,
                if i + 1 < staircase.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!("  \"exact_secs\": {exact_secs:.4},\n"));
        json.push_str("  \"curve\": [\n");
        for (i, (frac, ms, elapsed, recall, gap, exact)) in curve.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"cell\": \"budget_{:.0}pct\", \"budget_frac\": {frac}, \
                 \"budget_ms\": {ms}, \"elapsed_secs\": {elapsed:.4}, \"recall\": {recall:.3}, \
                 \"gap\": {gap:.6}, \"exact\": {exact}}}{}\n",
                frac * 100.0,
                if i + 1 < curve.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        print!("{json}");
    }
}
