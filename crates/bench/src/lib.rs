//! # sliceline-bench
//!
//! Benchmark harness regenerating every table and figure of the SliceLine
//! paper's evaluation (§5). One runnable binary per experiment:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — dataset characteristics |
//! | `figure3` | Fig. 3 — pruning ablation on Salaries 2×2 |
//! | `figure4` | Fig. 4 — slices per level on the real datasets |
//! | `figure5` | Fig. 5 — α sweep (+ the §5.3 σ sweep) |
//! | `figure6` | Fig. 6 — local end-to-end runtime and block-size sweep |
//! | `figure7` | Fig. 7 — row scalability and parallelization strategies |
//! | `table2` | Table 2 — CriteoSim enumeration statistics |
//! | `systems_compare` | §5.4 — optimized vs reference backend vs SliceFinder |
//! | `bench_diff` | perf-regression gate: fresh run vs committed `BENCH_*.json` ([`diff`]) |
//!
//! All binaries accept `--scale <f64>` (row-count multiplier, default 1),
//! `--seed <u64>`, `--threads <usize>`, and `--paper` (a preset raising
//! scales toward the paper's sizes). Criterion micro-benchmarks live in
//! `benches/`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod diff;

pub use diff::{diff, DiffReport, MetricKind, Regression, Tolerances};

use sliceline_datagen::{
    adult_like, census_like, covtype_like, criteo_like, kdd98_like, Dataset, GenConfig,
};
use std::time::Duration;

/// Parsed command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchArgs {
    /// Row-count scale multiplier applied to every generator.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Paper-sized preset (an order of magnitude above the defaults).
    pub paper: bool,
    /// Dump per-level execution telemetry as JSON (binaries that support
    /// it run with stats collection enabled).
    pub stats_json: bool,
    /// `kernel_compare` only: exit non-zero if the warm parent-reuse
    /// measurement (cost-model cache admission) is slower than cold
    /// recompute (warm speedup < 1.0x).
    pub warm_gate: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 1.0,
            seed: 42,
            threads: 0,
            paper: false,
            stats_json: false,
            warm_gate: false,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`; unknown flags abort with usage help.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    out.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a float"));
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--threads" => {
                    out.threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs an integer"));
                }
                "--paper" => out.paper = true,
                "--stats-json" => out.stats_json = true,
                "--warm-gate" => out.warm_gate = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        if out.paper {
            out.scale *= 10.0;
        }
        out
    }

    /// The generator config for this run.
    pub fn gen_config(&self) -> GenConfig {
        GenConfig {
            seed: self.seed,
            scale: self.scale,
        }
    }

    /// The generator config at an explicitly overridden scale.
    pub fn gen_config_scaled(&self, scale: f64) -> GenConfig {
        GenConfig {
            seed: self.seed,
            scale,
        }
    }

    /// Resolved thread count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--scale F] [--seed N] [--threads N] [--paper] [--stats-json] [--warm-gate]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// The four medium datasets used by Figures 4–6 (Criteo and Salaries have
/// dedicated binaries).
pub fn standard_datasets(config: &GenConfig) -> Vec<Dataset> {
    vec![
        adult_like(config),
        kdd98_like(config),
        census_like(config),
        covtype_like(config),
    ]
}

/// All six Table-1 datasets.
pub fn all_datasets(config: &GenConfig) -> Vec<Dataset> {
    let mut d = standard_datasets(config);
    d.push(criteo_like(config));
    d
}

/// Formats a duration as seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// A minimal fixed-width text table writer for experiment output.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table with per-column width alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, args: &BenchArgs) {
    println!("== {title} ==");
    println!(
        "scale={} seed={} threads={}{}\n",
        args.scale,
        args.seed,
        args.resolved_threads(),
        if args.paper { " (paper preset)" } else { "" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let a = BenchArgs::parse_from(Vec::<String>::new());
        assert_eq!(a, BenchArgs::default());
    }

    #[test]
    fn parse_flags() {
        let a = BenchArgs::parse_from(
            ["--scale", "0.5", "--seed", "7", "--threads", "3"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, 3);
        assert_eq!(a.resolved_threads(), 3);
        assert!(!a.stats_json);
    }

    #[test]
    fn parse_stats_json_flag() {
        let a = BenchArgs::parse_from(["--stats-json".to_string()]);
        assert!(a.stats_json);
    }

    #[test]
    fn parse_warm_gate_flag() {
        let a = BenchArgs::parse_from(["--warm-gate".to_string()]);
        assert!(a.warm_gate);
        assert!(!BenchArgs::default().warm_gate);
    }

    #[test]
    fn paper_preset_multiplies_scale() {
        let a = BenchArgs::parse_from(["--scale", "0.2", "--paper"].iter().map(|s| s.to_string()));
        assert!((a.scale - 2.0).abs() < 1e-12);
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["long-name".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
    }

    #[test]
    fn datasets_constructed_at_tiny_scale() {
        let cfg = GenConfig {
            seed: 1,
            scale: 0.005,
        };
        let d = standard_datasets(&cfg);
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|x| x.n() >= 16));
    }

    #[test]
    fn fmt_secs_format() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500s");
    }
}
