//! Bench-baseline comparison: the perf-regression harness behind
//! `bench_diff`.
//!
//! Every experiment binary emits a `BENCH_*.json` document (`--stats-json`
//! or the committed baselines at the repo root). This module diffs a
//! fresh run against such a baseline with per-metric tolerances and
//! produces a machine-readable verdict, so CI can fail on real slowdowns
//! without flaking on scheduler noise.
//!
//! Metrics are classified by key suffix:
//!
//! * **lower-better** — keys ending in `secs`, `secs_per_eval`, or
//!   `bytes` (wall times, per-evaluation latencies, spill volumes). A
//!   regression is `current > max(baseline, floor) * (1 + time_pct)`.
//!   The floor guards sub-millisecond cells whose relative jitter is
//!   unbounded on shared runners.
//! * **higher-better** — keys ending in `speedup` or `jobs_per_sec`
//!   (warm/delta speedups, queue throughput). A regression is
//!   `current < baseline * (1 - rate_pct)`.
//! * **parity** — the `parity` string must be `"ok"` in the current run;
//!   anything else is a correctness failure regardless of tolerance.
//!
//! Everything else (`rows`, `threads`, `kernel`, ...) is identity, not
//! performance: arrays of objects are matched by those fields so cells
//! can be reordered between runs without spurious diffs. A classified
//! metric present in the baseline but absent from the current run is
//! reported as schema drift (`missing`) and fails the diff.

use sliceline_obs::json::Json;

/// Per-metric tolerances for [`diff`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Allowed relative slowdown for lower-better metrics (0.5 = +50%).
    pub time: f64,
    /// Allowed relative drop for higher-better metrics (0.25 = −25%).
    pub rate: f64,
    /// Absolute floor (in the metric's own unit) below which lower-better
    /// baselines are not trusted as a denominator.
    pub floor: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        // Generous defaults: committed baselines come from a different
        // machine than CI, so only order-of-magnitude slowdowns should
        // fail a build.
        Tolerances {
            time: 0.5,
            rate: 0.25,
            floor: 1e-3,
        }
    }
}

/// How a metric key is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Smaller is better (times, bytes).
    LowerBetter,
    /// Larger is better (speedups, throughput).
    HigherBetter,
    /// String equality against `"ok"`.
    Parity,
}

/// Classifies a JSON key by suffix; `None` = identity/informational.
pub fn classify(key: &str) -> Option<MetricKind> {
    if key == "parity" {
        Some(MetricKind::Parity)
    } else if key.ends_with("secs") || key.ends_with("secs_per_eval") || key.ends_with("bytes") {
        Some(MetricKind::LowerBetter)
    } else if key.ends_with("speedup") || key.ends_with("jobs_per_sec") {
        Some(MetricKind::HigherBetter)
    } else {
        None
    }
}

/// One metric that moved outside its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Dotted path with array identities, e.g.
    /// `level2[rows=32561,kernel=bitmap].secs_per_eval`.
    pub path: String,
    /// Which comparison failed.
    pub kind: MetricKind,
    /// Baseline value (0 for parity failures).
    pub baseline: f64,
    /// Current value (0 for parity failures).
    pub current: f64,
    /// `current / baseline` (guarded denominator), 0 for parity.
    pub ratio: f64,
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Classified metrics compared.
    pub compared: usize,
    /// Metrics outside tolerance, worst ratio first.
    pub regressions: Vec<Regression>,
    /// Metrics that improved beyond the same tolerance (informational).
    pub improved: usize,
    /// Classified baseline metrics missing from the current run.
    pub missing: Vec<String>,
}

impl DiffReport {
    /// `true` when nothing regressed and no metric disappeared.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Machine-readable verdict consumed by CI.
    pub fn to_json(&self, tol: &Tolerances) -> String {
        let regs: Vec<String> = self
            .regressions
            .iter()
            .map(|r| {
                format!(
                    "{{\"path\":\"{}\",\"kind\":\"{}\",\"baseline\":{},\"current\":{},\
                     \"ratio\":{:.4}}}",
                    escape(&r.path),
                    match r.kind {
                        MetricKind::LowerBetter => "time",
                        MetricKind::HigherBetter => "rate",
                        MetricKind::Parity => "parity",
                    },
                    r.baseline,
                    r.current,
                    r.ratio,
                )
            })
            .collect();
        let missing: Vec<String> = self
            .missing
            .iter()
            .map(|p| format!("\"{}\"", escape(p)))
            .collect();
        format!(
            "{{\"clean\":{},\"compared\":{},\"improved\":{},\
             \"tolerances\":{{\"time\":{},\"rate\":{},\"floor\":{}}},\
             \"regressions\":[{}],\"missing\":[{}]}}",
            self.is_clean(),
            self.compared,
            self.improved,
            tol.time,
            tol.rate,
            tol.floor,
            regs.join(","),
            missing.join(","),
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Compares a current bench document against a committed baseline.
pub fn diff(baseline: &Json, current: &Json, tol: &Tolerances) -> DiffReport {
    let mut report = DiffReport::default();
    walk("", baseline, current, tol, &mut report);
    report.regressions.sort_by(|a, b| {
        severity(b)
            .partial_cmp(&severity(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    report
}

/// Sort key: parity first, then by how far outside tolerance.
fn severity(r: &Regression) -> f64 {
    match r.kind {
        MetricKind::Parity => f64::INFINITY,
        MetricKind::LowerBetter => r.ratio,
        MetricKind::HigherBetter => {
            if r.ratio > 0.0 {
                1.0 / r.ratio
            } else {
                f64::INFINITY
            }
        }
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn walk(path: &str, base: &Json, cur: &Json, tol: &Tolerances, report: &mut DiffReport) {
    if let (Some(bobj), Some(cobj)) = (base.as_obj(), cur.as_obj()) {
        for (key, bval) in bobj {
            let child = join(path, key);
            let cval = cobj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            match (classify(key), cval) {
                (Some(kind), Some(cval)) => compare(&child, kind, bval, cval, tol, report),
                (Some(_), None) => report.missing.push(child),
                (None, Some(cval)) => walk(&child, bval, cval, tol, report),
                (None, None) => {}
            }
        }
    } else if let (Some(barr), Some(carr)) = (base.as_arr(), cur.as_arr()) {
        for (i, bval) in barr.iter().enumerate() {
            let id = identity(bval);
            let (label, cval) = if id.is_empty() {
                // Scalar or identity-free elements pair up positionally.
                (format!("{path}[{i}]"), carr.get(i))
            } else {
                (
                    format!("{path}[{id}]"),
                    carr.iter().find(|c| identity(c) == id),
                )
            };
            match cval {
                Some(cval) => walk(&label, bval, cval, tol, report),
                None => {
                    if has_metrics(bval) {
                        report.missing.push(label);
                    }
                }
            }
        }
    }
}

/// Identity signature of an array element: its string fields plus the
/// integer cell coordinates (`level`, `candidates`, `rows`, `parents`),
/// so cells survive reordering between runs.
fn identity(v: &Json) -> String {
    let Some(obj) = v.as_obj() else {
        return String::new();
    };
    let mut parts = Vec::new();
    for (k, val) in obj {
        if let Some(s) = val.as_str() {
            parts.push(format!("{k}={s}"));
        } else if matches!(k.as_str(), "level" | "candidates" | "rows" | "parents") {
            if let Some(n) = val.as_f64() {
                parts.push(format!("{k}={n}"));
            }
        }
    }
    parts.join(",")
}

/// `true` if the subtree holds any classified metric (drives whether a
/// vanished array element counts as schema drift).
fn has_metrics(v: &Json) -> bool {
    match (v.as_obj(), v.as_arr()) {
        (Some(obj), _) => obj
            .iter()
            .any(|(k, val)| classify(k).is_some() || has_metrics(val)),
        (None, Some(arr)) => arr.iter().any(has_metrics),
        _ => false,
    }
}

fn compare(
    path: &str,
    kind: MetricKind,
    base: &Json,
    cur: &Json,
    tol: &Tolerances,
    report: &mut DiffReport,
) {
    if kind == MetricKind::Parity {
        report.compared += 1;
        if cur.as_str() != Some("ok") {
            report.regressions.push(Regression {
                path: path.to_string(),
                kind,
                baseline: 0.0,
                current: 0.0,
                ratio: 0.0,
            });
        }
        return;
    }
    let (Some(b), Some(c)) = (base.as_f64(), cur.as_f64()) else {
        report.missing.push(path.to_string());
        return;
    };
    report.compared += 1;
    match kind {
        MetricKind::LowerBetter => {
            let denom = b.max(tol.floor);
            let ratio = c / denom;
            if c > denom * (1.0 + tol.time) {
                report.regressions.push(Regression {
                    path: path.to_string(),
                    kind,
                    baseline: b,
                    current: c,
                    ratio,
                });
            } else if c < b * (1.0 - tol.time) {
                report.improved += 1;
            }
        }
        MetricKind::HigherBetter => {
            let ratio = if b > 0.0 { c / b } else { 1.0 };
            if b > 0.0 && c < b * (1.0 - tol.rate) {
                report.regressions.push(Regression {
                    path: path.to_string(),
                    kind,
                    baseline: b,
                    current: c,
                    ratio,
                });
            } else if b > 0.0 && c > b * (1.0 + tol.rate) {
                report.improved += 1;
            }
        }
        MetricKind::Parity => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliceline_obs::json::parse;

    const SAMPLE: &str = r#"{
      "bench": "kernel_compare",
      "threads": 4,
      "parity": "ok",
      "warm_speedup": 1.5,
      "queue": {"jobs": 32, "wall_secs": 0.16, "jobs_per_sec": 195.0},
      "level2": [
        {"rows": 32561, "candidates": 64, "kernel": "blocked", "secs_per_eval": 0.011},
        {"rows": 32561, "candidates": 64, "kernel": "bitmap", "secs_per_eval": 0.0004},
        {"rows": 130244, "candidates": 256, "kernel": "bitmap", "secs_per_eval": 0.0055}
      ]
    }"#;

    fn doc(s: &str) -> Json {
        parse(s).expect("valid test json")
    }

    #[test]
    fn self_diff_is_clean() {
        let d = doc(SAMPLE);
        let report = diff(&d, &d, &Tolerances::default());
        assert!(report.is_clean(), "{report:?}");
        // parity + warm_speedup + wall_secs + jobs_per_sec + 3 cells.
        assert_eq!(report.compared, 7);
        assert_eq!(report.improved, 0);
        let verdict = report.to_json(&Tolerances::default());
        assert!(verdict.contains("\"clean\":true"), "{verdict}");
        doc(&verdict); // round-trips as JSON
    }

    #[test]
    fn injected_time_regression_is_flagged() {
        let base = doc(SAMPLE);
        let cur = doc(&SAMPLE.replace("\"secs_per_eval\": 0.011", "\"secs_per_eval\": 0.033"));
        let report = diff(&base, &cur, &Tolerances::default());
        assert_eq!(report.regressions.len(), 1, "{report:?}");
        let r = &report.regressions[0];
        assert_eq!(r.kind, MetricKind::LowerBetter);
        assert!(r.path.contains("kernel=blocked"), "{}", r.path);
        assert!((r.ratio - 3.0).abs() < 1e-9);
        assert!(!report.is_clean());
        let verdict = report.to_json(&Tolerances::default());
        assert!(verdict.contains("\"clean\":false"));
        assert!(verdict.contains("\"kind\":\"time\""));
    }

    #[test]
    fn rate_drop_and_parity_failures_are_flagged() {
        let base = doc(SAMPLE);
        let cur = doc(&SAMPLE
            .replace("\"jobs_per_sec\": 195.0", "\"jobs_per_sec\": 60.0")
            .replace("\"parity\": \"ok\"", "\"parity\": \"MISMATCH\""));
        let report = diff(&base, &cur, &Tolerances::default());
        assert_eq!(report.regressions.len(), 2, "{report:?}");
        // Parity sorts first (correctness beats any slowdown).
        assert_eq!(report.regressions[0].kind, MetricKind::Parity);
        assert_eq!(report.regressions[1].kind, MetricKind::HigherBetter);
    }

    #[test]
    fn sub_floor_jitter_is_ignored_but_real_blowups_are_not() {
        let base = doc(r#"{"tiny_secs": 0.0001}"#);
        // 4x jitter on a 0.1ms cell stays under the 1ms floor: ignored.
        let cur = doc(r#"{"tiny_secs": 0.0004}"#);
        assert!(diff(&base, &cur, &Tolerances::default()).is_clean());
        // A jump past floor*(1+tol) is real even from a tiny baseline.
        let cur = doc(r#"{"tiny_secs": 0.05}"#);
        assert!(!diff(&base, &cur, &Tolerances::default()).is_clean());
    }

    #[test]
    fn reordered_cells_match_by_identity_and_vanished_cells_are_drift() {
        let base = doc(SAMPLE);
        // Shuffle the array and improve one cell: still clean.
        let shuffled = doc(&SAMPLE.replace(
            "{\"rows\": 32561, \"candidates\": 64, \"kernel\": \"blocked\", \"secs_per_eval\": 0.011},\n        {\"rows\": 32561, \"candidates\": 64, \"kernel\": \"bitmap\", \"secs_per_eval\": 0.0004},",
            "{\"rows\": 32561, \"candidates\": 64, \"kernel\": \"bitmap\", \"secs_per_eval\": 0.0004},\n        {\"rows\": 32561, \"candidates\": 64, \"kernel\": \"blocked\", \"secs_per_eval\": 0.002},",
        ));
        let report = diff(&base, &shuffled, &Tolerances::default());
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.improved, 1);
        // Dropping a measured cell is schema drift, not a pass.
        let truncated = doc(
            &SAMPLE.replace(
                ",\n        {\"rows\": 130244, \"candidates\": 256, \"kernel\": \"bitmap\", \"secs_per_eval\": 0.0055}",
                "",
            ),
        );
        let report = diff(&base, &truncated, &Tolerances::default());
        assert!(!report.is_clean());
        assert_eq!(report.missing.len(), 1);
        assert!(report.missing[0].contains("rows=130244"), "{report:?}");
    }

    #[test]
    fn missing_metric_key_is_drift() {
        let base = doc(r#"{"cold_secs": 0.01, "warm_speedup": 1.2}"#);
        let cur = doc(r#"{"cold_secs": 0.01}"#);
        let report = diff(&base, &cur, &Tolerances::default());
        assert_eq!(report.missing, vec!["warm_speedup".to_string()]);
        assert!(!report.is_clean());
    }

    #[test]
    fn classify_by_suffix() {
        assert_eq!(classify("cold_secs"), Some(MetricKind::LowerBetter));
        assert_eq!(classify("secs_per_eval"), Some(MetricKind::LowerBetter));
        assert_eq!(classify("spilled_bytes"), Some(MetricKind::LowerBetter));
        assert_eq!(classify("sharded_speedup"), Some(MetricKind::HigherBetter));
        assert_eq!(classify("jobs_per_sec"), Some(MetricKind::HigherBetter));
        assert_eq!(classify("parity"), Some(MetricKind::Parity));
        assert_eq!(classify("rows"), None);
        assert_eq!(classify("threads"), None);
    }
}
