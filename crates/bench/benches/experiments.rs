//! Criterion versions of the paper's experiments at CI-friendly scales.
//!
//! One benchmark (group) per table/figure of §5 so `cargo bench` exercises
//! the complete experiment suite; the `src/bin/*` binaries print the full
//! paper-style tables at larger scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slicefinder_baseline::{SliceFinder, SliceFinderConfig};
use sliceline::lagraph::find_slices_reference;
use sliceline::{MinSupport, PruningConfig, SliceLine, SliceLineConfig};
use sliceline_datagen::{
    adult_like, census_like, covtype_like, criteo_like, kdd98_like, salaries_encoded, Dataset,
    GenConfig,
};
use sliceline_dist::{ClusterConfig, DistSliceLine, Strategy};
use std::time::Duration;

const SCALE: f64 = 0.02;

fn gen(seed: u64) -> GenConfig {
    GenConfig { seed, scale: SCALE }
}

fn config(max_level: usize) -> SliceLineConfig {
    let mut c = SliceLineConfig::builder()
        .k(4)
        .alpha(0.95)
        .max_level(max_level)
        .threads(2)
        .build()
        .unwrap();
    c.min_support = MinSupport::Fraction(0.01);
    c
}

fn run(d: &Dataset, c: SliceLineConfig) {
    SliceLine::new(c)
        .find_slices(&d.x0, &d.errors)
        .expect("valid generated input");
}

/// Table 1 is pure generation; benchmark the generators themselves.
fn bench_table1_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_generators");
    group.bench_function("adult", |b| b.iter(|| adult_like(&gen(1))));
    group.bench_function("covtype", |b| b.iter(|| covtype_like(&gen(1))));
    group.bench_function("kdd98", |b| b.iter(|| kdd98_like(&gen(1))));
    group.bench_function("census", |b| b.iter(|| census_like(&gen(1))));
    group.bench_function("criteo", |b| b.iter(|| criteo_like(&gen(1))));
    group.finish();
}

/// Figure 3: the pruning-ablation configurations on Salaries 2×2.
fn bench_figure3_pruning_ablation(c: &mut Criterion) {
    let enc = salaries_encoded();
    let x0 = enc.x0.replicate_rows(2).replicate_cols(2);
    let labels = enc.labels.unwrap();
    let labels2: Vec<f64> = labels.iter().chain(labels.iter()).copied().collect();
    let mean = labels2.iter().sum::<f64>() / labels2.len() as f64;
    let errors: Vec<f64> = labels2
        .iter()
        .map(|&y| (y - mean) * (y - mean) * 1e-8)
        .collect();
    let mut group = c.benchmark_group("figure3_pruning");
    let configs = [
        ("all", PruningConfig::all(), 6),
        ("no_parent", PruningConfig::no_parent_handling(), 6),
        ("no_score", PruningConfig::no_score_pruning(), 5),
        ("no_size", PruningConfig::no_size_pruning(), 4),
        ("none", PruningConfig::none(), 3),
    ];
    for (name, pruning, cap) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = config(cap);
                cfg.pruning = pruning;
                cfg.min_support = MinSupport::Absolute((x0.rows() / 100).max(1));
                SliceLine::new(cfg).find_slices(&x0, &errors).unwrap()
            })
        });
    }
    group.finish();
}

/// Figure 4: per-dataset enumeration with all pruning on.
fn bench_figure4_datasets(c: &mut Criterion) {
    // KDD98Sim needs enough rows for its threshold-setting spike slices
    // to clear sigma = n/100, so it runs at full scale (its base is small).
    let datasets = [
        ("adult", adult_like(&gen(2)), usize::MAX),
        (
            "kdd98",
            kdd98_like(&GenConfig {
                seed: 2,
                scale: 1.0,
            }),
            2,
        ),
        ("census", census_like(&gen(2)), 3),
        ("covtype", covtype_like(&gen(2)), 3),
    ];
    let mut group = c.benchmark_group("figure4_enumeration");
    group.sample_size(10);
    for (name, d, cap) in datasets {
        group.bench_function(name, |b| b.iter(|| run(&d, config(cap))));
    }
    group.finish();
}

/// Figure 5: α and σ sensitivity.
fn bench_figure5_parameters(c: &mut Criterion) {
    let d = adult_like(&gen(3));
    let mut group = c.benchmark_group("figure5_parameters");
    for &alpha in &[0.36, 0.92, 0.99] {
        group.bench_with_input(
            BenchmarkId::new("alpha", alpha.to_string()),
            &alpha,
            |b, &a| {
                b.iter(|| {
                    let mut cfg = config(3);
                    cfg.alpha = a;
                    run(&d, cfg)
                })
            },
        );
    }
    for &frac in &[1e-3, 1e-2, 1e-1] {
        group.bench_with_input(
            BenchmarkId::new("sigma", frac.to_string()),
            &frac,
            |b, &f| {
                b.iter(|| {
                    let mut cfg = config(3);
                    cfg.min_support = MinSupport::Fraction(f);
                    run(&d, cfg)
                })
            },
        );
    }
    group.finish();
}

/// Figure 6: end-to-end runtime (a) and block-size sweep (b).
fn bench_figure6_runtime(c: &mut Criterion) {
    let d = adult_like(&gen(4));
    let mut group = c.benchmark_group("figure6_blocksize");
    group.sample_size(10);
    for &b in &[1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &bs| {
            bench.iter(|| {
                let mut cfg = config(3);
                cfg.eval = sliceline::EvalKernel::Blocked { block_size: bs };
                run(&d, cfg)
            })
        });
    }
    group.finish();
}

/// Figure 7a: replication scalability; 7b: strategies.
fn bench_figure7_scalability(c: &mut Criterion) {
    let d = census_like(&gen(5));
    let mut group = c.benchmark_group("figure7");
    group.sample_size(10);
    for &factor in &[1usize, 2, 4] {
        let x0 = d.x0.replicate_rows(factor);
        let errors: Vec<f64> = (0..factor).flat_map(|_| d.errors.iter().copied()).collect();
        group.bench_with_input(BenchmarkId::new("replication", factor), &factor, |b, _| {
            b.iter(|| SliceLine::new(config(2)).find_slices(&x0, &errors).unwrap())
        });
    }
    let strategies: Vec<(&str, Strategy)> = vec![
        (
            "mt_ops",
            Strategy::MtOps {
                threads: 2,
                block_size: 4,
            },
        ),
        (
            "mt_parfor",
            Strategy::MtParfor {
                threads: 2,
                block_size: 4,
            },
        ),
        (
            "dist_parfor",
            Strategy::DistParfor(ClusterConfig {
                nodes: 3,
                threads_per_node: 1,
                broadcast_latency: Duration::from_micros(100),
                broadcast_per_nnz: Duration::from_nanos(10),
                aggregate_latency: Duration::from_micros(50),
                bitmap_kernel: false,
            }),
        ),
    ];
    for (name, strategy) in strategies {
        group.bench_function(BenchmarkId::new("strategy", name), |b| {
            b.iter(|| {
                DistSliceLine::new(config(2), strategy)
                    .find_slices(&d.x0, &d.errors)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Table 2: the ultra-sparse Criteo enumeration.
fn bench_table2_criteo(c: &mut Criterion) {
    let d = criteo_like(&gen(6));
    let mut group = c.benchmark_group("table2_criteo");
    group.sample_size(10);
    group.bench_function("enumerate_l4", |b| b.iter(|| run(&d, config(4))));
    group.finish();
}

/// §5.4 systems comparison: optimized vs reference vs SliceFinder.
fn bench_systems_compare(c: &mut Criterion) {
    let d = adult_like(&gen(7));
    let mut group = c.benchmark_group("systems_compare");
    group.sample_size(10);
    group.bench_function("sliceline_optimized", |b| b.iter(|| run(&d, config(2))));
    group.bench_function("sliceline_reference_la", |b| {
        b.iter(|| find_slices_reference(&d.x0, &d.errors, &config(2)).unwrap())
    });
    group.bench_function("slicefinder_baseline", |b| {
        b.iter(|| {
            SliceFinder::new(SliceFinderConfig {
                k: 4,
                min_size: (d.n() / 100).max(1),
                max_level: 2,
                threads: 2,
                ..Default::default()
            })
            .find_slices(&d.x0, &d.errors)
        })
    });
    group.finish();
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets =
        bench_table1_generators,
        bench_figure3_pruning_ablation,
        bench_figure4_datasets,
        bench_figure5_parameters,
        bench_figure6_runtime,
        bench_figure7_scalability,
        bench_table2_criteo,
        bench_systems_compare
);
criterion_main!(experiments);
