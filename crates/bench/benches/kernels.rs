//! Criterion micro-benchmarks for the hot kernels of the SliceLine
//! pipeline: one-hot encoding, the evaluation product `X·Sᵀ` (blocked vs
//! fused), the pair self-join, general spgemm, and score computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sliceline::config::EvalKernel;
use sliceline::evaluate::evaluate_slices;
use sliceline::ScoringContext;
use sliceline_datagen::{adult_like, GenConfig};
use sliceline_frame::onehot::one_hot_encode;
use sliceline_linalg::spgemm::{self_overlap_pairs_eq, spgemm};
use sliceline_linalg::{CsrMatrix, ExecContext};

fn fixture() -> (CsrMatrix, Vec<f64>, Vec<Vec<u32>>) {
    let d = adult_like(&GenConfig {
        seed: 7,
        scale: 0.1,
    });
    let x = one_hot_encode(&d.x0);
    // Build a realistic level-2 slice set from frequent column pairs.
    let sums = sliceline_linalg::agg::col_sums_csr(&x);
    let frequent: Vec<u32> = (0..x.cols() as u32)
        .filter(|&c| sums[c as usize] >= (x.rows() / 100) as f64)
        .collect();
    let mut slices = Vec::new();
    for (i, &a) in frequent.iter().enumerate() {
        for &b in frequent.iter().skip(i + 1) {
            if slices.len() >= 256 {
                break;
            }
            slices.push(vec![a.min(b), a.max(b)]);
        }
    }
    (x, d.errors.clone(), slices)
}

fn bench_onehot(c: &mut Criterion) {
    let d = adult_like(&GenConfig {
        seed: 7,
        scale: 0.1,
    });
    c.bench_function("onehot/adult_0.1", |b| {
        b.iter(|| one_hot_encode(std::hint::black_box(&d.x0)))
    });
}

fn bench_eval_kernels(c: &mut Criterion) {
    let (x, e, slices) = fixture();
    let ctx = ScoringContext::new(&e, 0.95);
    let mut group = c.benchmark_group("eval");
    for &b in &[1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::new("blocked", b), &b, |bench, &b| {
            bench.iter(|| {
                evaluate_slices(
                    &x,
                    &e,
                    slices.clone(),
                    2,
                    &ctx,
                    EvalKernel::Blocked { block_size: b },
                    &ExecContext::new(2),
                )
            })
        });
    }
    group.bench_function("fused", |bench| {
        bench.iter(|| {
            evaluate_slices(
                &x,
                &e,
                slices.clone(),
                2,
                &ctx,
                EvalKernel::Fused,
                &ExecContext::new(2),
            )
        })
    });
    group.finish();
}

fn bench_pair_join(c: &mut Criterion) {
    let (_, _, slices) = fixture();
    let cols = slices
        .iter()
        .flat_map(|s| s.iter().copied())
        .max()
        .unwrap_or(0) as usize
        + 1;
    let s = CsrMatrix::from_binary_rows(cols, &slices).unwrap();
    c.bench_function("pair_join/overlap_eq", |b| {
        b.iter(|| self_overlap_pairs_eq(std::hint::black_box(&s), 1).unwrap())
    });
    c.bench_function("pair_join/spgemm_sst", |b| {
        b.iter(|| spgemm(std::hint::black_box(&s), &s.transpose()).unwrap())
    });
}

fn bench_scoring(c: &mut Criterion) {
    let ctx = ScoringContext {
        n: 100_000.0,
        total_error: 12_000.0,
        avg_error: 0.12,
        alpha: 0.95,
    };
    c.bench_function("score/upper_bound", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..1000u32 {
                acc += ctx.score_upper_bound(
                    std::hint::black_box(5_000.0 + i as f64),
                    800.0,
                    1.0,
                    1_000,
                );
            }
            acc
        })
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_onehot, bench_eval_kernels, bench_pair_join, bench_scoring
);
criterion_main!(kernels);
