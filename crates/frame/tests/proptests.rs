//! Property tests for the encoding pipeline: CSV round-trips, one-hot
//! equivalence between the fast path and the paper's `table()`
//! formulation, and binning invariants.

use proptest::prelude::*;
use sliceline_frame::csv::read_csv;
use sliceline_frame::onehot::{one_hot_encode, one_hot_via_table};
use sliceline_frame::{BinningStrategy, Column, DataFrame, DatasetEncoder, FeatureKind, IntMatrix};

fn int_matrix_strategy() -> impl Strategy<Value = IntMatrix> {
    (1usize..=5, 1usize..=30).prop_flat_map(|(m, n)| {
        proptest::collection::vec(2u32..=6, m).prop_flat_map(move |domains| {
            let rows = proptest::collection::vec(
                domains
                    .iter()
                    .map(|&d| 1u32..=d)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .fold(Just(Vec::new()).boxed(), |acc, r| {
                        (acc, r)
                            .prop_map(|(mut v, x)| {
                                v.push(x);
                                v
                            })
                            .boxed()
                    }),
                n,
            );
            rows.prop_map(|rows| IntMatrix::from_rows(&rows).unwrap())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fast one-hot path equals the paper's table() formulation.
    #[test]
    fn onehot_paths_agree(x0 in int_matrix_strategy()) {
        let fast = one_hot_encode(&x0);
        let table = one_hot_via_table(&x0).unwrap();
        prop_assert_eq!(fast.clone(), table);
        // Structure: n rows, one 1 per feature per row.
        prop_assert_eq!(fast.rows(), x0.rows());
        prop_assert_eq!(fast.cols(), x0.onehot_cols());
        for r in 0..fast.rows() {
            prop_assert_eq!(fast.row_nnz(r), x0.cols());
        }
        prop_assert!(fast.is_binary());
    }

    /// One-hot column sums count code frequencies exactly.
    #[test]
    fn onehot_column_sums_are_code_counts(x0 in int_matrix_strategy()) {
        let x = one_hot_encode(&x0);
        let sums = sliceline_linalg::agg::col_sums_csr(&x);
        let mut offset = 0usize;
        for j in 0..x0.cols() {
            for code in 1..=x0.domains()[j] {
                let direct = (0..x0.rows()).filter(|&r| x0.get(r, j) == code).count();
                prop_assert_eq!(sums[offset + code as usize - 1], direct as f64);
            }
            offset += x0.domains()[j] as usize;
        }
    }

    /// Equi-width binning: every code is in range, bin edges honor the
    /// recorded min/width, and values land in the bin that contains them.
    #[test]
    fn equi_width_binning_is_consistent(
        values in proptest::collection::vec(-1000.0f64..1000.0, 2..60),
        bins in 2u32..12,
    ) {
        let mut df = DataFrame::new();
        df.add_column("v", Column::Numeric(values.clone())).unwrap();
        let enc = DatasetEncoder {
            binning: BinningStrategy::EquiWidth(bins),
            recode_threshold: 0,
            drop_columns: vec![],
            label_column: None,
        };
        let out = enc.encode(&df).unwrap();
        let meta = out.features.feature(0);
        let FeatureKind::Binned { min, width, bins: b, has_missing } = &meta.kind else {
            panic!("expected binned feature");
        };
        prop_assert_eq!(*b, bins);
        prop_assert!(!has_missing);
        prop_assert!(*width > 0.0);
        for (r, &v) in values.iter().enumerate() {
            let code = out.x0.get(r, 0);
            prop_assert!(code >= 1 && code <= bins);
            // The value lies within (or clamps to) its bin.
            let lo = min + width * (code as f64 - 1.0);
            let hi = lo + width;
            let in_bin = v >= lo - 1e-9 && v <= hi + 1e-9;
            let clamped = code == bins && v >= hi - 1e-9 || code == 1 && v <= lo + 1e-9;
            prop_assert!(in_bin || clamped, "v={v} code={code} bin=[{lo},{hi})");
        }
    }

    /// Categorical recode + describe round-trip: the description of a
    /// row's code contains the original string.
    #[test]
    fn categorical_describe_roundtrip(
        labels in proptest::collection::vec("[a-z]{1,6}", 2..20),
    ) {
        let mut df = DataFrame::new();
        df.add_column("cat", Column::categorical_from_strings(&labels)).unwrap();
        let out = DatasetEncoder::default().encode(&df).unwrap();
        for (r, original) in labels.iter().enumerate() {
            let code = out.x0.get(r, 0);
            let desc = out.features.feature(0).describe(code);
            prop_assert!(desc.ends_with(original), "{desc} vs {original}");
        }
    }

    /// CSV write-read round-trip for integer matrices (via the generate
    /// format: f0..fm headers).
    #[test]
    fn csv_roundtrip_for_integer_codes(x0 in int_matrix_strategy()) {
        let mut csv = (0..x0.cols())
            .map(|j| format!("f{j}"))
            .collect::<Vec<_>>()
            .join(",");
        csv.push('\n');
        for r in 0..x0.rows() {
            let row: Vec<String> = x0.row(r).iter().map(|c| c.to_string()).collect();
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let df = read_csv(&csv, ',', true).unwrap();
        prop_assert_eq!(df.nrows(), x0.rows());
        prop_assert_eq!(df.ncols(), x0.cols());
        for j in 0..x0.cols() {
            match df.column_at(j) {
                Column::Numeric(v) => {
                    for (r, &val) in v.iter().enumerate() {
                        prop_assert_eq!(val as u32, x0.get(r, j));
                    }
                }
                _ => prop_assert!(false, "integer column must parse numeric"),
            }
        }
    }

    /// Splits cover all rows disjointly at any fraction.
    #[test]
    fn train_test_split_partition(n in 1usize..200, frac in 0.0f64..1.0, seed in 0u64..100) {
        let s = sliceline_frame::train_test_split(n, frac, seed);
        let mut all: Vec<usize> = s.train.iter().chain(s.test.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
