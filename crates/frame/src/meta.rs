//! Feature metadata: how integer codes map back to human-readable
//! predicates.
//!
//! SliceLine reports slices as conjunctions like
//! `education = Masters AND hours-per-week ∈ [40, 48)`. The encoder records
//! per-feature provenance here so decoded top-K slices stay interpretable.

/// How a feature was encoded.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureKind {
    /// Recode of a categorical column; `labels[code-1]` is the category.
    Categorical {
        /// Category labels indexed by `code - 1`.
        labels: Vec<String>,
    },
    /// Equi-width binning of a continuous column.
    Binned {
        /// Lower edge of the first bin.
        min: f64,
        /// Bin width (> 0).
        width: f64,
        /// Number of regular bins (codes `1..=bins`).
        bins: u32,
        /// Whether an extra code `bins + 1` holds missing (NaN) values.
        has_missing: bool,
    },
    /// Recode of distinct numeric values; `values[code-1]` is the value.
    IntegerRecode {
        /// Distinct values in ascending order, indexed by `code - 1`.
        values: Vec<f64>,
    },
    /// Codes used as-is (already 1-based integers with no provenance).
    Opaque,
}

/// Metadata for a single encoded feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMeta {
    /// Feature (column) name.
    pub name: String,
    /// Encoding provenance.
    pub kind: FeatureKind,
    /// Domain size `d_j` (number of valid codes).
    pub domain: u32,
}

impl FeatureMeta {
    /// An opaque feature with the given name and domain.
    pub fn opaque(name: impl Into<String>, domain: u32) -> Self {
        FeatureMeta {
            name: name.into(),
            kind: FeatureKind::Opaque,
            domain,
        }
    }

    /// Renders the predicate `feature = code` as a human-readable string.
    pub fn describe(&self, code: u32) -> String {
        debug_assert!(code >= 1 && code <= self.domain);
        match &self.kind {
            FeatureKind::Categorical { labels } => {
                let label = labels
                    .get(code as usize - 1)
                    .map(|s| s.as_str())
                    .unwrap_or("<unknown>");
                format!("{} = {}", self.name, label)
            }
            FeatureKind::Binned {
                min,
                width,
                bins,
                has_missing,
            } => {
                if *has_missing && code == bins + 1 {
                    format!("{} is missing", self.name)
                } else {
                    let lo = min + width * (code as f64 - 1.0);
                    let hi = lo + width;
                    format!("{} in [{:.4}, {:.4})", self.name, lo, hi)
                }
            }
            FeatureKind::IntegerRecode { values } => {
                let v = values.get(code as usize - 1).copied().unwrap_or(f64::NAN);
                format!("{} = {}", self.name, v)
            }
            FeatureKind::Opaque => format!("{} = {}", self.name, code),
        }
    }
}

/// Ordered collection of feature metadata for an encoded dataset, with the
/// one-hot offset bookkeeping of Algorithm 1 (`fb`, `fe`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureSet {
    features: Vec<FeatureMeta>,
}

impl FeatureSet {
    /// Builds from a list of features.
    pub fn new(features: Vec<FeatureMeta>) -> Self {
        FeatureSet { features }
    }

    /// Builds an opaque feature set from domain sizes only (used by
    /// synthetic generators).
    pub fn opaque_from_domains(domains: &[u32]) -> Self {
        FeatureSet {
            features: domains
                .iter()
                .enumerate()
                .map(|(j, &d)| FeatureMeta::opaque(format!("f{j}"), d))
                .collect(),
        }
    }

    /// Number of features `m`.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if there are no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Borrow feature `j`.
    pub fn feature(&self, j: usize) -> &FeatureMeta {
        &self.features[j]
    }

    /// Iterate over the features.
    pub fn iter(&self) -> impl Iterator<Item = &FeatureMeta> {
        self.features.iter()
    }

    /// Per-feature domain sizes.
    pub fn domains(&self) -> Vec<u32> {
        self.features.iter().map(|f| f.domain).collect()
    }

    /// Start offsets `fb` of each feature in the one-hot layout
    /// (`fb = cumsum(fdom) - fdom`, Algorithm 1 line 3), 0-based.
    pub fn onehot_begin(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.features.len());
        let mut acc = 0usize;
        for f in &self.features {
            out.push(acc);
            acc += f.domain as usize;
        }
        out
    }

    /// Exclusive end offsets `fe` of each feature in the one-hot layout
    /// (`fe = cumsum(fdom)`, Algorithm 1 line 4), 0-based exclusive.
    pub fn onehot_end(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.features.len());
        let mut acc = 0usize;
        for f in &self.features {
            acc += f.domain as usize;
            out.push(acc);
        }
        out
    }

    /// Total one-hot width `l`.
    pub fn onehot_cols(&self) -> usize {
        self.features.iter().map(|f| f.domain as usize).sum()
    }

    /// Maps a 0-based one-hot column back to `(feature index, code)`.
    pub fn column_to_predicate(&self, col: usize) -> Option<(usize, u32)> {
        let begins = self.onehot_begin();
        let ends = self.onehot_end();
        for j in 0..self.features.len() {
            if col >= begins[j] && col < ends[j] {
                return Some((j, (col - begins[j]) as u32 + 1));
            }
        }
        None
    }

    /// Renders the predicate for a 0-based one-hot column.
    pub fn describe_column(&self, col: usize) -> String {
        match self.column_to_predicate(col) {
            Some((j, code)) => self.features[j].describe(code),
            None => format!("<col {col} out of range>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureSet {
        FeatureSet::new(vec![
            FeatureMeta {
                name: "color".into(),
                kind: FeatureKind::Categorical {
                    labels: vec!["red".into(), "blue".into()],
                },
                domain: 2,
            },
            FeatureMeta {
                name: "age".into(),
                kind: FeatureKind::Binned {
                    min: 0.0,
                    width: 10.0,
                    bins: 3,
                    has_missing: true,
                },
                domain: 4,
            },
            FeatureMeta {
                name: "children".into(),
                kind: FeatureKind::IntegerRecode {
                    values: vec![0.0, 1.0, 2.0],
                },
                domain: 3,
            },
        ])
    }

    #[test]
    fn describe_categorical() {
        let fs = sample();
        assert_eq!(fs.feature(0).describe(1), "color = red");
        assert_eq!(fs.feature(0).describe(2), "color = blue");
    }

    #[test]
    fn describe_binned_and_missing() {
        let fs = sample();
        assert_eq!(fs.feature(1).describe(1), "age in [0.0000, 10.0000)");
        assert_eq!(fs.feature(1).describe(3), "age in [20.0000, 30.0000)");
        assert_eq!(fs.feature(1).describe(4), "age is missing");
    }

    #[test]
    fn describe_integer_recode_and_opaque() {
        let fs = sample();
        assert_eq!(fs.feature(2).describe(2), "children = 1");
        let op = FeatureMeta::opaque("f", 5);
        assert_eq!(op.describe(3), "f = 3");
    }

    #[test]
    fn onehot_offsets() {
        let fs = sample();
        assert_eq!(fs.onehot_begin(), vec![0, 2, 6]);
        assert_eq!(fs.onehot_end(), vec![2, 6, 9]);
        assert_eq!(fs.onehot_cols(), 9);
        assert_eq!(fs.domains(), vec![2, 4, 3]);
    }

    #[test]
    fn column_to_predicate_roundtrip() {
        let fs = sample();
        assert_eq!(fs.column_to_predicate(0), Some((0, 1)));
        assert_eq!(fs.column_to_predicate(1), Some((0, 2)));
        assert_eq!(fs.column_to_predicate(2), Some((1, 1)));
        assert_eq!(fs.column_to_predicate(8), Some((2, 3)));
        assert_eq!(fs.column_to_predicate(9), None);
        assert_eq!(fs.describe_column(0), "color = red");
        assert!(fs.describe_column(99).contains("out of range"));
    }

    #[test]
    fn opaque_from_domains() {
        let fs = FeatureSet::opaque_from_domains(&[2, 3]);
        assert_eq!(fs.len(), 2);
        assert!(!fs.is_empty());
        assert_eq!(fs.feature(1).name, "f1");
        assert_eq!(fs.onehot_cols(), 5);
        assert_eq!(fs.iter().count(), 2);
    }
}
