//! Chunked row-block access for out-of-core slice finding.
//!
//! The paper's headline scaling experiment (§5.4) runs SliceLine on
//! ~192M Criteo rows on a cluster; a single process cannot materialize
//! the full one-hot matrix `X` at that scale. This module provides the
//! streaming building blocks: a [`RowBlockSource`] yields fixed-size row
//! blocks of integer-coded features plus their error values, and a
//! [`ChunkProjector`] one-hot encodes each block directly into the
//! *kept-column* projected space (Algorithm 1 lines 3–5) so the
//! full-width `X` is never resident. [`ChunkedCsr`] collects projected
//! blocks when they do fit, preserving ascending row order.

use crate::column::FrameError;
use crate::intmatrix::IntMatrix;
use sliceline_linalg::CsrMatrix;

/// One block of rows: integer-coded features and row-aligned errors.
#[derive(Debug, Clone)]
pub struct RowBlock {
    /// Integer-encoded feature codes for this block's rows.
    pub x0: IntMatrix,
    /// Model errors, row-aligned with `x0`.
    pub errors: Vec<f64>,
}

impl RowBlock {
    /// Number of rows in the block.
    pub fn rows(&self) -> usize {
        self.x0.rows()
    }
}

/// A resettable source of row blocks in a fixed ascending row order.
///
/// Implementations must yield the same rows in the same order on every
/// pass (after [`reset`](RowBlockSource::reset)) regardless of the block
/// sizes requested — this is what makes per-chunk partial stats merge
/// bit-for-bit with the in-memory path.
pub trait RowBlockSource {
    /// Per-feature domain sizes `d_j` (1-based codes in `1..=d_j`).
    fn domains(&self) -> &[u32];

    /// Total number of rows the source yields per pass.
    fn total_rows(&self) -> usize;

    /// Yields the next block of at most `max_rows` rows, or `None` when
    /// the pass is exhausted. `max_rows` must be ≥ 1.
    fn next_block(&mut self, max_rows: usize) -> Option<RowBlock>;

    /// Rewinds the source to the first row.
    fn reset(&mut self);
}

/// In-memory [`RowBlockSource`] over a materialized `(X₀, e)` pair — the
/// parity oracle for the streamed path and the adapter that lets the
/// chunked driver run on ordinary in-RAM datasets.
#[derive(Debug, Clone)]
pub struct MemorySource {
    x0: IntMatrix,
    errors: Vec<f64>,
    pos: usize,
}

impl MemorySource {
    /// Wraps a materialized dataset. Errors if the error vector is not
    /// row-aligned with `x0`.
    pub fn new(x0: IntMatrix, errors: Vec<f64>) -> Result<Self, FrameError> {
        if errors.len() != x0.rows() {
            return Err(FrameError::LengthMismatch {
                column: "errors".to_string(),
                len: errors.len(),
                expected: x0.rows(),
            });
        }
        Ok(MemorySource { x0, errors, pos: 0 })
    }

    /// Borrow the full underlying matrix (for oracles / diagnostics).
    pub fn x0(&self) -> &IntMatrix {
        &self.x0
    }

    /// Borrow the full underlying error vector.
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }
}

impl RowBlockSource for MemorySource {
    fn domains(&self) -> &[u32] {
        self.x0.domains()
    }

    fn total_rows(&self) -> usize {
        self.x0.rows()
    }

    fn next_block(&mut self, max_rows: usize) -> Option<RowBlock> {
        assert!(max_rows >= 1, "next_block needs max_rows >= 1");
        let n = self.x0.rows();
        if self.pos >= n {
            return None;
        }
        let end = (self.pos + max_rows).min(n);
        let m = self.x0.cols();
        let mut data = Vec::with_capacity((end - self.pos) * m);
        for r in self.pos..end {
            data.extend_from_slice(self.x0.row(r));
        }
        let x0 = IntMatrix::new(end - self.pos, m, data, self.x0.domains().to_vec())
            .expect("block codes are within domains");
        let errors = self.errors[self.pos..end].to_vec();
        self.pos = end;
        Some(RowBlock { x0, errors })
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

/// One-hot encodes row blocks directly into the kept-column projected
/// space.
///
/// Built from the kept columns' `(feature, code)` pairs (ascending in
/// one-hot column order, as produced by data preparation), it maps each
/// row's code for feature `j` to its projected column id via a per-feature
/// sorted lookup — no full-width `l`-sized remap table, which matters when
/// `l` is hundreds of millions of one-hot columns.
#[derive(Debug, Clone)]
pub struct ChunkProjector {
    /// Per feature: kept `(code, projected column)` pairs sorted by code.
    kept: Vec<Vec<(u32, u32)>>,
    /// Projected width = number of kept columns.
    cols: usize,
}

impl ChunkProjector {
    /// Builds a projector for `m` features from parallel `(feature, code)`
    /// arrays describing the kept one-hot columns in ascending projected
    /// order (projected column `c` is `(col_feature[c], col_code[c])`).
    pub fn new(m: usize, col_feature: &[u32], col_code: &[u32]) -> Self {
        assert_eq!(col_feature.len(), col_code.len());
        let mut kept = vec![Vec::new(); m];
        for (c, (&j, &code)) in col_feature.iter().zip(col_code.iter()).enumerate() {
            kept[j as usize].push((code, c as u32));
        }
        // Data prep emits columns in ascending (feature, code) order, so
        // each per-feature list is already sorted by code; sort anyway to
        // keep the lookup correct for any caller.
        for list in &mut kept {
            list.sort_unstable_by_key(|&(code, _)| code);
        }
        ChunkProjector {
            kept,
            cols: col_feature.len(),
        }
    }

    /// Projected (kept-column) width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Projected column id for `(feature, code)`, if that column is kept.
    #[inline]
    pub fn lookup(&self, feature: usize, code: u32) -> Option<u32> {
        let list = &self.kept[feature];
        list.binary_search_by_key(&code, |&(c, _)| c)
            .ok()
            .map(|i| list[i].1)
    }

    /// One-hot encodes a block into the projected space: an
    /// `x0.rows() × self.cols()` binary CSR with one entry per kept
    /// `(feature, code)` hit, columns strictly increasing per row.
    pub fn project(&self, x0: &IntMatrix) -> CsrMatrix {
        let n = x0.rows();
        let m = x0.cols();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<u32> = Vec::with_capacity(n * m);
        for r in 0..n {
            let codes = x0.row(r);
            for (j, &code) in codes.iter().enumerate().take(m) {
                if let Some(c) = self.lookup(j, code) {
                    col_idx.push(c);
                }
            }
            row_ptr.push(col_idx.len());
        }
        let values = vec![1.0f64; col_idx.len()];
        // Projected ids ascend in (feature, code) order and each row
        // contributes at most one code per feature, so per-row columns are
        // strictly increasing by construction.
        CsrMatrix::from_raw_parts(n, self.cols, row_ptr, col_idx, values)
            .expect("projected block satisfies CSR invariants")
    }
}

/// A row-partitioned CSR matrix: ascending, contiguous row chunks that
/// together form one logical `rows() × cols()` matrix without ever being
/// concatenated.
#[derive(Debug, Clone, Default)]
pub struct ChunkedCsr {
    chunks: Vec<CsrMatrix>,
    rows: usize,
    cols: usize,
}

impl ChunkedCsr {
    /// An empty chunked matrix of the given width.
    pub fn new(cols: usize) -> Self {
        ChunkedCsr {
            chunks: Vec::new(),
            rows: 0,
            cols,
        }
    }

    /// Appends the next row chunk. Panics on width mismatch.
    pub fn push(&mut self, chunk: CsrMatrix) {
        assert_eq!(chunk.cols(), self.cols, "chunk width mismatch");
        self.rows += chunk.rows();
        self.chunks.push(chunk);
    }

    /// Total logical rows across all chunks.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.chunks.iter().map(|c| c.nnz()).sum()
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Iterates the chunks in ascending row order.
    pub fn iter(&self) -> impl Iterator<Item = &CsrMatrix> {
        self.chunks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onehot::one_hot_encode;

    fn sample() -> (IntMatrix, Vec<f64>) {
        let x0 =
            IntMatrix::from_rows(&[vec![1, 2], vec![2, 1], vec![1, 1], vec![2, 3], vec![1, 3]])
                .unwrap();
        let errors = vec![1.0, 0.0, 0.5, 0.25, 0.0];
        (x0, errors)
    }

    #[test]
    fn memory_source_blocks_cover_all_rows_in_order() {
        let (x0, errors) = sample();
        let mut src = MemorySource::new(x0.clone(), errors.clone()).unwrap();
        for block_rows in [1usize, 2, 3, 5, 16] {
            src.reset();
            let mut seen_rows = 0usize;
            let mut seen_errors = Vec::new();
            while let Some(block) = src.next_block(block_rows) {
                assert!(block.rows() <= block_rows);
                for r in 0..block.rows() {
                    assert_eq!(block.x0.row(r), x0.row(seen_rows + r));
                }
                seen_errors.extend_from_slice(&block.errors);
                seen_rows += block.rows();
            }
            assert_eq!(seen_rows, 5);
            assert_eq!(seen_errors, errors);
        }
    }

    #[test]
    fn memory_source_rejects_misaligned_errors() {
        let (x0, _) = sample();
        assert!(MemorySource::new(x0, vec![0.0; 3]).is_err());
    }

    #[test]
    fn projector_matches_full_encode_with_column_selection() {
        let (x0, _) = sample();
        let full = one_hot_encode(&x0);
        // Keep a subset of one-hot columns: drop feature 0 code 2 and
        // feature 1 code 2. Kept columns in ascending one-hot order:
        // (0,1)=col0, (1,1)=col2, (1,3)=col4.
        let col_feature = vec![0u32, 1, 1];
        let col_code = vec![1u32, 1, 3];
        let keep = vec![0usize, 2, 4];
        let expected = full.select_cols(&keep).unwrap();
        let proj = ChunkProjector::new(x0.cols(), &col_feature, &col_code);
        assert_eq!(proj.cols(), 3);
        let got = proj.project(&x0);
        assert_eq!(got, expected);
    }

    #[test]
    fn projector_chunked_equals_whole() {
        let (x0, errors) = sample();
        let col_feature = vec![0u32, 0, 1, 1, 1];
        let col_code = vec![1u32, 2, 1, 2, 3];
        let proj = ChunkProjector::new(x0.cols(), &col_feature, &col_code);
        let whole = proj.project(&x0);
        assert_eq!(whole, one_hot_encode(&x0));
        let mut src = MemorySource::new(x0, errors).unwrap();
        let mut chunked = ChunkedCsr::new(proj.cols());
        while let Some(block) = src.next_block(2) {
            chunked.push(proj.project(&block.x0));
        }
        assert_eq!(chunked.rows(), whole.rows());
        assert_eq!(chunked.nnz(), whole.nnz());
        assert_eq!(chunked.num_chunks(), 3);
        let mut row = 0usize;
        for chunk in chunked.iter() {
            for r in 0..chunk.rows() {
                assert_eq!(chunk.row_cols(r), whole.row_cols(row));
                row += 1;
            }
        }
    }

    #[test]
    fn lookup_misses_dropped_columns() {
        let proj = ChunkProjector::new(2, &[0, 1], &[2, 1]);
        assert_eq!(proj.lookup(0, 2), Some(0));
        assert_eq!(proj.lookup(1, 1), Some(1));
        assert_eq!(proj.lookup(0, 1), None);
        assert_eq!(proj.lookup(1, 3), None);
    }
}
