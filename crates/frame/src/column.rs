//! Typed columns and the [`DataFrame`] container.

use std::collections::HashMap;
use std::fmt;

/// Errors produced by frame operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Columns of differing lengths were combined into one frame.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Its length.
        len: usize,
        /// The expected frame length.
        expected: usize,
    },
    /// A column name was not found.
    UnknownColumn(String),
    /// A column already exists under this name.
    DuplicateColumn(String),
    /// CSV or value parsing failed.
    Parse {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// Description of the failure.
        reason: String,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::LengthMismatch {
                column,
                len,
                expected,
            } => write!(f, "column '{column}' has {len} rows, expected {expected}"),
            FrameError::UnknownColumn(name) => write!(f, "unknown column '{name}'"),
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column '{name}'"),
            FrameError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Convenience alias for frame results.
pub type Result<T> = std::result::Result<T, FrameError>;

/// A single typed column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Continuous numeric values (NaN marks missing values).
    Numeric(Vec<f64>),
    /// Categorical values stored as 0-based codes into `labels`.
    Categorical {
        /// Per-row code, an index into `labels`.
        codes: Vec<u32>,
        /// Distinct category labels in first-appearance order.
        labels: Vec<String>,
    },
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds a categorical column from string values, assigning codes in
    /// first-appearance order.
    pub fn categorical_from_strings<S: AsRef<str>>(values: &[S]) -> Column {
        let mut labels: Vec<String> = Vec::new();
        let mut index: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let s = v.as_ref();
            let code = match index.get(s) {
                Some(&c) => c,
                None => {
                    let c = labels.len() as u32;
                    labels.push(s.to_string());
                    index.insert(s.to_string(), c);
                    c
                }
            };
            codes.push(code);
        }
        Column::Categorical { codes, labels }
    }

    /// Number of distinct values (categories for categorical columns,
    /// distinct finite values for numeric ones).
    pub fn cardinality(&self) -> usize {
        match self {
            Column::Categorical { labels, .. } => labels.len(),
            Column::Numeric(v) => {
                let mut sorted: Vec<f64> = v.iter().cloned().filter(|x| x.is_finite()).collect();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                sorted.dedup();
                sorted.len()
            }
        }
    }

    /// Renders row `i` as a display string.
    pub fn display_value(&self, i: usize) -> String {
        match self {
            Column::Numeric(v) => format!("{}", v[i]),
            Column::Categorical { codes, labels } => labels[codes[i] as usize].clone(),
        }
    }
}

/// A named collection of equal-length columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
    nrows: usize,
}

impl DataFrame {
    /// Creates an empty frame.
    pub fn new() -> Self {
        DataFrame::default()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Adds a column; the first column fixes the row count.
    pub fn add_column(&mut self, name: impl Into<String>, column: Column) -> Result<()> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(FrameError::DuplicateColumn(name));
        }
        if self.columns.is_empty() {
            self.nrows = column.len();
        } else if column.len() != self.nrows {
            return Err(FrameError::LengthMismatch {
                column: name,
                len: column.len(),
                expected: self.nrows,
            });
        }
        self.names.push(name);
        self.columns.push(column);
        Ok(())
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Borrow a column by position.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Position of a named column.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| FrameError::UnknownColumn(name.to_string()))
    }

    /// Removes a column by name and returns it (used to split off labels or
    /// drop ID columns, as the paper does).
    pub fn remove_column(&mut self, name: &str) -> Result<Column> {
        let i = self.index_of(name)?;
        self.names.remove(i);
        let col = self.columns.remove(i);
        if self.columns.is_empty() {
            self.nrows = 0;
        }
        Ok(col)
    }

    /// Iterate over `(name, column)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.names
            .iter()
            .map(|n| n.as_str())
            .zip(self.columns.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_from_strings_first_appearance_order() {
        let c = Column::categorical_from_strings(&["b", "a", "b", "c"]);
        match &c {
            Column::Categorical { codes, labels } => {
                assert_eq!(labels, &["b", "a", "c"]);
                assert_eq!(codes, &[0, 1, 0, 2]);
            }
            _ => panic!("expected categorical"),
        }
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.display_value(3), "c");
    }

    #[test]
    fn numeric_cardinality_ignores_nan() {
        let c = Column::Numeric(vec![1.0, 2.0, 2.0, f64::NAN]);
        assert_eq!(c.cardinality(), 2);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn frame_add_and_lookup() {
        let mut df = DataFrame::new();
        df.add_column("x", Column::Numeric(vec![1.0, 2.0])).unwrap();
        df.add_column("y", Column::categorical_from_strings(&["a", "b"]))
            .unwrap();
        assert_eq!(df.nrows(), 2);
        assert_eq!(df.ncols(), 2);
        assert_eq!(df.names(), &["x".to_string(), "y".to_string()]);
        assert!(df.column("x").is_ok());
        assert!(df.column("z").is_err());
        assert_eq!(df.index_of("y").unwrap(), 1);
    }

    #[test]
    fn frame_rejects_mismatched_lengths_and_duplicates() {
        let mut df = DataFrame::new();
        df.add_column("x", Column::Numeric(vec![1.0, 2.0])).unwrap();
        assert!(matches!(
            df.add_column("y", Column::Numeric(vec![1.0])),
            Err(FrameError::LengthMismatch { .. })
        ));
        assert!(matches!(
            df.add_column("x", Column::Numeric(vec![1.0, 2.0])),
            Err(FrameError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn remove_column_splits_labels() {
        let mut df = DataFrame::new();
        df.add_column("feature", Column::Numeric(vec![1.0]))
            .unwrap();
        df.add_column("label", Column::Numeric(vec![9.0])).unwrap();
        let label = df.remove_column("label").unwrap();
        assert_eq!(label, Column::Numeric(vec![9.0]));
        assert_eq!(df.ncols(), 1);
        assert!(df.remove_column("label").is_err());
    }

    #[test]
    fn iter_pairs() {
        let mut df = DataFrame::new();
        df.add_column("a", Column::Numeric(vec![1.0])).unwrap();
        df.add_column("b", Column::Numeric(vec![2.0])).unwrap();
        let names: Vec<&str> = df.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            FrameError::UnknownColumn("q".into()).to_string(),
            "unknown column 'q'"
        );
        assert_eq!(
            FrameError::Parse {
                line: 3,
                reason: "bad".into()
            }
            .to_string(),
            "parse error at line 3: bad"
        );
    }
}
