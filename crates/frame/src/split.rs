//! Train/validation/test splitting.
//!
//! §2.1 of the paper: "The same definitions apply to train, validation,
//! and test splits of X and y (M always created on the train dataset),
//! which provides users with sufficient flexibility of model debugging."
//! These helpers produce deterministic, seeded row-index splits that the
//! examples use to debug models on held-out data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-way split of row indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Training row indexes (sorted).
    pub train: Vec<usize>,
    /// Test row indexes (sorted).
    pub test: Vec<usize>,
}

/// Splits `0..n` into train/test with the given test fraction, seeded and
/// deterministic. `test_fraction` is clamped to `[0, 1]`; each side is
/// sorted for cache-friendly row selection.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> TrainTestSplit {
    let test_fraction = test_fraction.clamp(0.0, 1.0);
    let mut indexes: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates shuffle.
    for i in (1..indexes.len()).rev() {
        let j = rng.gen_range(0..=i);
        indexes.swap(i, j);
    }
    let test_len = ((n as f64) * test_fraction).round() as usize;
    let mut test: Vec<usize> = indexes[..test_len].to_vec();
    let mut train: Vec<usize> = indexes[test_len..].to_vec();
    test.sort_unstable();
    train.sort_unstable();
    TrainTestSplit { train, test }
}

/// K-fold split of `0..n`: returns `k` sorted, disjoint folds covering all
/// rows, sizes differing by at most one. `k` is clamped to `[1, n]` (for
/// `n > 0`).
pub fn k_fold_split(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new(); k.max(1)];
    }
    let k = k.clamp(1, n);
    let mut indexes: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..indexes.len()).rev() {
        let j = rng.gen_range(0..=i);
        indexes.swap(i, j);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
    for (i, ix) in indexes.into_iter().enumerate() {
        folds[i % k].push(ix);
    }
    for f in &mut folds {
        f.sort_unstable();
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_all_rows_disjointly() {
        let s = train_test_split(100, 0.2, 7);
        assert_eq!(s.test.len(), 20);
        assert_eq!(s.train.len(), 80);
        let mut all: Vec<usize> = s.train.iter().chain(s.test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.3, 1), train_test_split(50, 0.3, 1));
        assert_ne!(
            train_test_split(50, 0.3, 1).test,
            train_test_split(50, 0.3, 2).test
        );
    }

    #[test]
    fn split_fraction_clamped() {
        let s = train_test_split(10, 1.5, 0);
        assert_eq!(s.test.len(), 10);
        assert!(s.train.is_empty());
        let s = train_test_split(10, -0.5, 0);
        assert!(s.test.is_empty());
    }

    #[test]
    fn split_indexes_sorted() {
        let s = train_test_split(40, 0.25, 3);
        assert!(s.train.windows(2).all(|w| w[0] < w[1]));
        assert!(s.test.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn k_fold_partitions() {
        let folds = k_fold_split(23, 5, 11);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // Sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn k_fold_clamps_k() {
        let folds = k_fold_split(3, 10, 0);
        assert_eq!(folds.len(), 3);
        let folds = k_fold_split(3, 0, 0);
        assert_eq!(folds.len(), 1);
        assert_eq!(folds[0].len(), 3);
        let empty = k_fold_split(0, 4, 0);
        assert!(empty.iter().all(|f| f.is_empty()));
    }
}
