//! The integer-encoded feature matrix `X₀`.
//!
//! Algorithm 1 of the paper expects its input "in an integer-encoded form
//! (1-based, continuous integer range), representing categories and bins".
//! [`IntMatrix`] stores exactly that: an `n × m` row-major matrix of `u32`
//! codes with `1 ≤ code ≤ domain(j)` for every feature `j`.

use crate::column::{FrameError, Result};

/// Row-major `n × m` matrix of 1-based integer feature codes.
///
/// Invariant: every stored code `v` in column `j` satisfies
/// `1 ≤ v ≤ domains[j]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u32>,
    domains: Vec<u32>,
}

impl IntMatrix {
    /// Builds from row-major data and per-feature domain sizes, validating
    /// the 1-based range invariant.
    pub fn new(rows: usize, cols: usize, data: Vec<u32>, domains: Vec<u32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(FrameError::Parse {
                line: 0,
                reason: format!(
                    "expected {} codes for {}x{}, got {}",
                    rows * cols,
                    rows,
                    cols,
                    data.len()
                ),
            });
        }
        if domains.len() != cols {
            return Err(FrameError::Parse {
                line: 0,
                reason: format!("expected {cols} domains, got {}", domains.len()),
            });
        }
        for (i, &v) in data.iter().enumerate() {
            let j = i % cols;
            if v == 0 || v > domains[j] {
                return Err(FrameError::Parse {
                    line: i / cols + 1,
                    reason: format!("code {v} out of range [1, {}] for feature {j}", domains[j]),
                });
            }
        }
        Ok(IntMatrix {
            rows,
            cols,
            data,
            domains,
        })
    }

    /// Builds from row-major data, deriving domains as the per-column
    /// maximum (the paper's `fdom = colMaxs(X₀)`).
    pub fn from_data(rows: usize, cols: usize, data: Vec<u32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(FrameError::Parse {
                line: 0,
                reason: format!(
                    "expected {} codes for {}x{}, got {}",
                    rows * cols,
                    rows,
                    cols,
                    data.len()
                ),
            });
        }
        let mut domains = vec![0u32; cols];
        for (i, &v) in data.iter().enumerate() {
            if v == 0 {
                return Err(FrameError::Parse {
                    line: i / cols + 1,
                    reason: "codes must be 1-based (found 0)".to_string(),
                });
            }
            let j = i % cols;
            if v > domains[j] {
                domains[j] = v;
            }
        }
        Ok(IntMatrix {
            rows,
            cols,
            data,
            domains,
        })
    }

    /// Builds from per-row code vectors.
    pub fn from_rows(rows: &[Vec<u32>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(FrameError::Parse {
                    line: i + 1,
                    reason: format!("row has {} codes, expected {ncols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        IntMatrix::from_data(nrows, ncols, data)
    }

    /// Number of rows `n`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features `m`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-feature domain sizes `d_j`.
    #[inline]
    pub fn domains(&self) -> &[u32] {
        &self.domains
    }

    /// Total number of one-hot columns `l = Σ d_j`.
    pub fn onehot_cols(&self) -> usize {
        self.domains.iter().map(|&d| d as usize).sum()
    }

    /// The code at `(r, j)`.
    #[inline]
    pub fn get(&self, r: usize, j: usize) -> u32 {
        self.data[r * self.cols + j]
    }

    /// Borrow row `r` as a slice of codes.
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Replicates the rows `factor` times (the paper's row-wise replication
    /// used for the scalability experiment, Fig. 7a).
    pub fn replicate_rows(&self, factor: usize) -> IntMatrix {
        let mut data = Vec::with_capacity(self.data.len() * factor);
        for _ in 0..factor {
            data.extend_from_slice(&self.data);
        }
        IntMatrix {
            rows: self.rows * factor,
            cols: self.cols,
            data,
            domains: self.domains.clone(),
        }
    }

    /// Replicates the columns `factor` times (duplicated features create
    /// perfectly correlated column groups — the paper's Salaries 2×2 setup
    /// for the pruning ablation, Fig. 3).
    pub fn replicate_cols(&self, factor: usize) -> IntMatrix {
        let new_cols = self.cols * factor;
        let mut data = Vec::with_capacity(self.rows * new_cols);
        for r in 0..self.rows {
            for _ in 0..factor {
                data.extend_from_slice(self.row(r));
            }
        }
        let mut domains = Vec::with_capacity(new_cols);
        for _ in 0..factor {
            domains.extend_from_slice(&self.domains);
        }
        IntMatrix {
            rows: self.rows,
            cols: new_cols,
            data,
            domains,
        }
    }

    /// Selects a subset of rows (in order).
    pub fn select_rows(&self, indices: &[usize]) -> Result<IntMatrix> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            if r >= self.rows {
                return Err(FrameError::Parse {
                    line: 0,
                    reason: format!("row index {r} out of bounds ({} rows)", self.rows),
                });
            }
            data.extend_from_slice(self.row(r));
        }
        Ok(IntMatrix {
            rows: indices.len(),
            cols: self.cols,
            data,
            domains: self.domains.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IntMatrix {
        IntMatrix::from_rows(&[vec![1, 2], vec![2, 1], vec![1, 3]]).unwrap()
    }

    #[test]
    fn from_data_derives_domains() {
        let m = sample();
        assert_eq!(m.domains(), &[2, 3]);
        assert_eq!(m.onehot_cols(), 5);
        assert_eq!(m.get(2, 1), 3);
        assert_eq!(m.row(1), &[2, 1]);
    }

    #[test]
    fn new_validates_range() {
        assert!(IntMatrix::new(1, 2, vec![1, 4], vec![2, 3]).is_err());
        assert!(IntMatrix::new(1, 2, vec![0, 1], vec![2, 3]).is_err());
        assert!(IntMatrix::new(1, 2, vec![1, 1], vec![2]).is_err());
        assert!(IntMatrix::new(1, 2, vec![1], vec![2, 3]).is_err());
        assert!(IntMatrix::new(1, 2, vec![2, 3], vec![2, 3]).is_ok());
    }

    #[test]
    fn zero_code_rejected() {
        assert!(IntMatrix::from_data(1, 1, vec![0]).is_err());
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(IntMatrix::from_rows(&[vec![1], vec![1, 2]]).is_err());
    }

    #[test]
    fn replicate_rows_preserves_domains() {
        let m = sample().replicate_rows(3);
        assert_eq!(m.rows(), 9);
        assert_eq!(m.domains(), &[2, 3]);
        assert_eq!(m.row(3), m.row(0));
        assert_eq!(m.row(8), m.row(2));
    }

    #[test]
    fn replicate_cols_duplicates_features() {
        let m = sample().replicate_cols(2);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.domains(), &[2, 3, 2, 3]);
        assert_eq!(m.row(0), &[1, 2, 1, 2]);
    }

    #[test]
    fn select_rows_subsets() {
        let m = sample().select_rows(&[2, 0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[1, 3]);
        assert!(sample().select_rows(&[9]).is_err());
    }
}
