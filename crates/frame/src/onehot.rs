//! One-hot encoding of the integer matrix `X₀` into the sparse 0/1 matrix
//! `X` (Algorithm 1, lines 1–5).
//!
//! Two implementations are provided:
//!
//! * [`one_hot_encode`] — the direct fast path building CSR rows in place
//!   (each row of `X₀` yields exactly `m` sorted one-hot columns),
//! * [`one_hot_via_table`] — the paper's literal formulation using
//!   `table(rix, cix)` on flattened index vectors, kept as an executable
//!   reference that the fast path is tested against.

use crate::column::{FrameError, Result};
use crate::intmatrix::IntMatrix;
use sliceline_linalg::table::table_from_pairs;
use sliceline_linalg::CsrMatrix;

/// One-hot encodes `X₀` into an `n × l` binary CSR matrix with
/// `l = Σ_j d_j`; row `i` has ones at columns `fb_j + X₀[i,j] - 1`.
pub fn one_hot_encode(x0: &IntMatrix) -> CsrMatrix {
    let n = x0.rows();
    let m = x0.cols();
    let l = x0.onehot_cols();
    // fb offsets: cumulative domain starts.
    let mut fb = Vec::with_capacity(m);
    let mut acc = 0u32;
    for &d in x0.domains() {
        fb.push(acc);
        acc += d;
    }
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(n * m);
    for r in 0..n {
        let row = x0.row(r);
        for (j, &code) in row.iter().enumerate() {
            col_idx.push(fb[j] + code - 1);
        }
        row_ptr.push(col_idx.len());
    }
    let values = vec![1.0; col_idx.len()];
    CsrMatrix::from_raw_parts(n, l, row_ptr, col_idx, values)
        .expect("one-hot construction preserves CSR invariants")
}

/// The paper's `table(rix, cix)` formulation of one-hot encoding:
/// flattens `X₀ + fb` into a column-index vector aligned with repeated row
/// indexes and counts pairs. Semantically identical to
/// [`one_hot_encode`]; kept as a reference implementation.
pub fn one_hot_via_table(x0: &IntMatrix) -> Result<CsrMatrix> {
    let n = x0.rows();
    let m = x0.cols();
    let l = x0.onehot_cols();
    let mut fb = Vec::with_capacity(m);
    let mut acc = 0usize;
    for &d in x0.domains() {
        fb.push(acc);
        acc += d as usize;
    }
    let mut rix = Vec::with_capacity(n * m);
    let mut cix = Vec::with_capacity(n * m);
    for r in 0..n {
        for (j, &code) in x0.row(r).iter().enumerate() {
            rix.push(r);
            cix.push(fb[j] + code as usize - 1);
        }
    }
    table_from_pairs(&rix, &cix, n, l).map_err(|e| FrameError::Parse {
        line: 0,
        reason: format!("table construction failed: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IntMatrix {
        // domains [2, 3]: row0 = (1, 2), row1 = (2, 3), row2 = (1, 1)
        IntMatrix::from_rows(&[vec![1, 2], vec![2, 3], vec![1, 1]]).unwrap()
    }

    #[test]
    fn onehot_layout() {
        let x = one_hot_encode(&sample());
        assert_eq!(x.shape(), (3, 5));
        assert_eq!(x.nnz(), 6);
        assert!(x.is_binary());
        // Row 0: feature0 code1 -> col 0, feature1 code2 -> col 2+1=3.
        assert_eq!(x.row_cols(0), &[0, 3]);
        assert_eq!(x.row_cols(1), &[1, 4]);
        assert_eq!(x.row_cols(2), &[0, 2]);
    }

    #[test]
    fn table_formulation_matches_fast_path() {
        let x0 = sample();
        let fast = one_hot_encode(&x0);
        let table = one_hot_via_table(&x0).unwrap();
        assert_eq!(fast, table);
    }

    #[test]
    fn every_row_has_m_ones() {
        let x0 = IntMatrix::from_rows(&[vec![1, 1, 1], vec![2, 3, 1], vec![1, 2, 2]]).unwrap();
        let x = one_hot_encode(&x0);
        for r in 0..x.rows() {
            assert_eq!(x.row_nnz(r), 3);
        }
        // Column sums count code frequencies.
        let sums = sliceline_linalg::agg::col_sums_csr(&x);
        let total: f64 = sums.iter().sum();
        assert_eq!(total, 9.0);
    }

    #[test]
    fn empty_matrix() {
        let x0 = IntMatrix::from_data(0, 0, vec![]).unwrap();
        let x = one_hot_encode(&x0);
        assert_eq!(x.shape(), (0, 0));
    }
}
