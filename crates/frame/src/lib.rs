//! # sliceline-frame
//!
//! Data-frame substrate for the SliceLine reproduction: CSV input, column
//! typing, categorical recoding, equi-width binning, and the
//! integer-encoded feature matrix `X₀` plus one-hot expansion that
//! Algorithm 1 of the paper consumes.
//!
//! The paper's preprocessing (§5.1) recodes categorical features to
//! 1-based contiguous integer codes, bins continuous features into 10
//! equi-width bins, drops ID columns, and materializes the integer
//! feature matrix `X₀`. [`encode::DatasetEncoder`] reproduces that
//! pipeline, and [`onehot::one_hot_encode`] implements the
//! `X = table(rix, cix)` expansion of Algorithm 1 lines 1–5.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chunk;
pub mod column;
pub mod csv;
pub mod encode;
pub mod intmatrix;
pub mod meta;
pub mod onehot;
pub mod split;

pub use chunk::{ChunkProjector, ChunkedCsr, MemorySource, RowBlock, RowBlockSource};
pub use column::{Column, DataFrame};
pub use encode::{BinningStrategy, DatasetEncoder, EncodedDataset};
pub use intmatrix::IntMatrix;
pub use meta::{FeatureKind, FeatureMeta, FeatureSet};
pub use split::{k_fold_split, train_test_split, TrainTestSplit};
