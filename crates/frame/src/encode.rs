//! Dataset encoding: the paper's §5.1 preprocessing pipeline.
//!
//! "We pre-process these datasets by recoding categorical features,
//! binning continuous features (except labels) into 10 equi-width bins,
//! and dropping ID columns." [`DatasetEncoder`] reproduces exactly that,
//! producing the 1-based integer matrix `X₀` plus [`FeatureSet`] metadata
//! for decoding slices back to predicates.

use crate::column::{Column, DataFrame, FrameError, Result};
use crate::intmatrix::IntMatrix;
use crate::meta::{FeatureKind, FeatureMeta, FeatureSet};

/// How numeric columns are turned into integer codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinningStrategy {
    /// Equi-width binning into the given number of bins (the paper uses 10).
    EquiWidth(u32),
    /// Recode each distinct value to its own code (only sensible for
    /// low-cardinality integer-like columns).
    RecodeDistinct,
}

/// Configuration for [`DatasetEncoder::encode`].
#[derive(Debug, Clone)]
pub struct DatasetEncoder {
    /// Strategy for numeric feature columns.
    pub binning: BinningStrategy,
    /// Numeric columns whose distinct-value count is at most this threshold
    /// are recoded per distinct value instead of binned (0 disables).
    pub recode_threshold: usize,
    /// Columns dropped entirely (IDs etc.).
    pub drop_columns: Vec<String>,
    /// Column split off as the label vector `y` (not encoded as a feature).
    pub label_column: Option<String>,
}

impl Default for DatasetEncoder {
    /// The paper's defaults: 10 equi-width bins, recode numeric columns
    /// with ≤ 10 distinct values, no drops, no label.
    fn default() -> Self {
        DatasetEncoder {
            binning: BinningStrategy::EquiWidth(10),
            recode_threshold: 10,
            drop_columns: Vec::new(),
            label_column: None,
        }
    }
}

/// Result of encoding: `X₀`, feature metadata, and the optional label
/// vector.
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    /// The 1-based integer-encoded feature matrix.
    pub x0: IntMatrix,
    /// Per-feature provenance for decoding.
    pub features: FeatureSet,
    /// Labels split off via [`DatasetEncoder::label_column`], if any.
    /// Categorical labels are recoded to `0, 1, 2, …` class ids.
    pub labels: Option<Vec<f64>>,
}

impl DatasetEncoder {
    /// Encoder with the paper's defaults plus a label column.
    pub fn with_label(label: impl Into<String>) -> Self {
        DatasetEncoder {
            label_column: Some(label.into()),
            ..Default::default()
        }
    }

    /// Runs the encoding pipeline on a frame.
    pub fn encode(&self, df: &DataFrame) -> Result<EncodedDataset> {
        let mut labels = None;
        let mut codes_per_feature: Vec<Vec<u32>> = Vec::new();
        let mut metas: Vec<FeatureMeta> = Vec::new();
        for (name, col) in df.iter() {
            if self.drop_columns.iter().any(|d| d == name) {
                continue;
            }
            if self.label_column.as_deref() == Some(name) {
                labels = Some(label_vector(col));
                continue;
            }
            let (codes, meta) = self.encode_column(name, col)?;
            codes_per_feature.push(codes);
            metas.push(meta);
        }
        if self.label_column.is_some() && labels.is_none() {
            return Err(FrameError::UnknownColumn(
                self.label_column.clone().unwrap(),
            ));
        }
        let m = codes_per_feature.len();
        let n = df.nrows();
        let mut data = Vec::with_capacity(n * m);
        for r in 0..n {
            for codes in &codes_per_feature {
                data.push(codes[r]);
            }
        }
        let domains: Vec<u32> = metas.iter().map(|f| f.domain).collect();
        let x0 = IntMatrix::new(n, m, data, domains)?;
        Ok(EncodedDataset {
            x0,
            features: FeatureSet::new(metas),
            labels,
        })
    }

    fn encode_column(&self, name: &str, col: &Column) -> Result<(Vec<u32>, FeatureMeta)> {
        match col {
            Column::Categorical { codes, labels } => {
                // Recode: the stored codes are already dense 0-based;
                // shift to 1-based.
                let out: Vec<u32> = codes.iter().map(|&c| c + 1).collect();
                Ok((
                    out,
                    FeatureMeta {
                        name: name.to_string(),
                        kind: FeatureKind::Categorical {
                            labels: labels.clone(),
                        },
                        domain: labels.len().max(1) as u32,
                    },
                ))
            }
            Column::Numeric(values) => {
                let distinct = distinct_finite(values);
                let use_recode = matches!(self.binning, BinningStrategy::RecodeDistinct)
                    || (self.recode_threshold > 0 && distinct.len() <= self.recode_threshold);
                if use_recode {
                    self.encode_recode_distinct(name, values, distinct)
                } else {
                    let bins = match self.binning {
                        BinningStrategy::EquiWidth(b) => b.max(1),
                        BinningStrategy::RecodeDistinct => unreachable!(),
                    };
                    self.encode_equi_width(name, values, bins)
                }
            }
        }
    }

    fn encode_recode_distinct(
        &self,
        name: &str,
        values: &[f64],
        distinct: Vec<f64>,
    ) -> Result<(Vec<u32>, FeatureMeta)> {
        if distinct.is_empty() {
            return Err(FrameError::Parse {
                line: 0,
                reason: format!("column '{name}' has no finite values to recode"),
            });
        }
        let has_missing = values.iter().any(|v| !v.is_finite());
        let missing_code = distinct.len() as u32 + 1;
        let codes: Vec<u32> = values
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    let i = distinct
                        .binary_search_by(|p| p.partial_cmp(&v).unwrap())
                        .expect("value must be in distinct set");
                    i as u32 + 1
                } else {
                    missing_code
                }
            })
            .collect();
        let domain = distinct.len() as u32 + u32::from(has_missing);
        Ok((
            codes,
            FeatureMeta {
                name: name.to_string(),
                kind: FeatureKind::IntegerRecode { values: distinct },
                domain,
            },
        ))
    }

    fn encode_equi_width(
        &self,
        name: &str,
        values: &[f64],
        bins: u32,
    ) -> Result<(Vec<u32>, FeatureMeta)> {
        let finite: Vec<f64> = values.iter().cloned().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Err(FrameError::Parse {
                line: 0,
                reason: format!("column '{name}' has no finite values to bin"),
            });
        }
        let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = max - min;
        // Degenerate constant columns get a single bin of unit width.
        let width = if span > 0.0 { span / bins as f64 } else { 1.0 };
        let has_missing = values.iter().any(|v| !v.is_finite());
        let missing_code = bins + 1;
        let codes: Vec<u32> = values
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    let raw = ((v - min) / width).floor() as i64 + 1;
                    raw.clamp(1, bins as i64) as u32
                } else {
                    missing_code
                }
            })
            .collect();
        let domain = bins + u32::from(has_missing);
        Ok((
            codes,
            FeatureMeta {
                name: name.to_string(),
                kind: FeatureKind::Binned {
                    min,
                    width,
                    bins,
                    has_missing,
                },
                domain,
            },
        ))
    }
}

/// Extracts a numeric label vector: numeric columns pass through;
/// categorical columns become 0-based class ids.
fn label_vector(col: &Column) -> Vec<f64> {
    match col {
        Column::Numeric(v) => v.clone(),
        Column::Categorical { codes, .. } => codes.iter().map(|&c| c as f64).collect(),
    }
}

fn distinct_finite(values: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = values.iter().cloned().filter(|v| v.is_finite()).collect();
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> DataFrame {
        let mut df = DataFrame::new();
        df.add_column(
            "color",
            Column::categorical_from_strings(&["red", "blue", "red", "green"]),
        )
        .unwrap();
        df.add_column("height", Column::Numeric(vec![150.0, 160.0, 170.0, 180.0]))
            .unwrap();
        df.add_column("kids", Column::Numeric(vec![0.0, 1.0, 0.0, 2.0]))
            .unwrap();
        df.add_column("id", Column::Numeric(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        df.add_column("y", Column::Numeric(vec![1.5, 2.5, 3.5, 4.5]))
            .unwrap();
        df
    }

    #[test]
    fn full_pipeline() {
        let enc = DatasetEncoder {
            binning: BinningStrategy::EquiWidth(2),
            recode_threshold: 3,
            drop_columns: vec!["id".into()],
            label_column: Some("y".into()),
        };
        let out = enc.encode(&frame()).unwrap();
        assert_eq!(out.x0.cols(), 3); // color, height, kids
        assert_eq!(out.x0.rows(), 4);
        assert_eq!(out.labels, Some(vec![1.5, 2.5, 3.5, 4.5]));
        // color: 3 categories.
        assert_eq!(out.features.feature(0).domain, 3);
        // height: 4 distinct > threshold 3 -> 2 bins.
        assert_eq!(out.features.feature(1).domain, 2);
        // kids: 3 distinct <= 3 -> recode to 3 codes.
        assert_eq!(out.features.feature(2).domain, 3);
        // Codes are 1-based.
        assert_eq!(out.x0.get(0, 0), 1); // red
        assert_eq!(out.x0.get(1, 0), 2); // blue
        assert_eq!(out.x0.get(3, 0), 3); // green
        assert_eq!(out.x0.get(0, 2), 1); // kids=0
        assert_eq!(out.x0.get(3, 2), 3); // kids=2
    }

    #[test]
    fn equi_width_bins_cover_range() {
        let enc = DatasetEncoder {
            binning: BinningStrategy::EquiWidth(10),
            recode_threshold: 0,
            drop_columns: vec![],
            label_column: None,
        };
        let mut df = DataFrame::new();
        df.add_column("v", Column::Numeric((0..100).map(|i| i as f64).collect()))
            .unwrap();
        let out = enc.encode(&df).unwrap();
        assert_eq!(out.features.feature(0).domain, 10);
        // Max value clamps into the last bin.
        assert_eq!(out.x0.get(99, 0), 10);
        assert_eq!(out.x0.get(0, 0), 1);
    }

    #[test]
    fn missing_numeric_gets_own_code() {
        let enc = DatasetEncoder {
            binning: BinningStrategy::EquiWidth(4),
            recode_threshold: 0,
            drop_columns: vec![],
            label_column: None,
        };
        let mut df = DataFrame::new();
        df.add_column("v", Column::Numeric(vec![1.0, 2.0, f64::NAN, 4.0]))
            .unwrap();
        let out = enc.encode(&df).unwrap();
        assert_eq!(out.features.feature(0).domain, 5);
        assert_eq!(out.x0.get(2, 0), 5);
    }

    #[test]
    fn constant_column_single_bin() {
        let enc = DatasetEncoder {
            binning: BinningStrategy::EquiWidth(10),
            recode_threshold: 0,
            drop_columns: vec![],
            label_column: None,
        };
        let mut df = DataFrame::new();
        df.add_column("v", Column::Numeric(vec![5.0; 8])).unwrap();
        let out = enc.encode(&df).unwrap();
        // All rows land in bin 1; domain stays the configured bin count.
        for r in 0..8 {
            assert_eq!(out.x0.get(r, 0), 1);
        }
    }

    #[test]
    fn categorical_label_becomes_class_ids() {
        let mut df = DataFrame::new();
        df.add_column("x", Column::Numeric(vec![1.0, 2.0, 3.0]))
            .unwrap();
        df.add_column(
            "cls",
            Column::categorical_from_strings(&["yes", "no", "yes"]),
        )
        .unwrap();
        let enc = DatasetEncoder::with_label("cls");
        let out = enc.encode(&df).unwrap();
        assert_eq!(out.labels, Some(vec![0.0, 1.0, 0.0]));
    }

    #[test]
    fn missing_label_column_errors() {
        let mut df = DataFrame::new();
        df.add_column("x", Column::Numeric(vec![1.0])).unwrap();
        let enc = DatasetEncoder::with_label("nope");
        assert!(matches!(enc.encode(&df), Err(FrameError::UnknownColumn(_))));
    }

    #[test]
    fn recode_distinct_strategy() {
        let enc = DatasetEncoder {
            binning: BinningStrategy::RecodeDistinct,
            recode_threshold: 0,
            drop_columns: vec![],
            label_column: None,
        };
        let mut df = DataFrame::new();
        df.add_column("v", Column::Numeric(vec![30.0, 10.0, 20.0, 10.0]))
            .unwrap();
        let out = enc.encode(&df).unwrap();
        // Sorted distinct [10,20,30] -> codes by ascending value.
        assert_eq!(out.x0.get(0, 0), 3);
        assert_eq!(out.x0.get(1, 0), 1);
        assert_eq!(out.x0.get(2, 0), 2);
    }
}
