//! A small RFC-4180-style CSV reader with type inference.
//!
//! Hand-rolled rather than depending on an external parser (per the
//! reproduction's dependency policy): handles quoted fields, embedded
//! separators/newlines inside quotes, doubled-quote escapes, and CRLF
//! line endings. Columns whose non-missing values all parse as `f64`
//! become [`Column::Numeric`]; everything else becomes categorical.

use crate::column::{Column, DataFrame, FrameError, Result};

/// Values treated as missing during type inference (case-sensitive,
/// matching common UCI conventions such as Adult's `?`).
const MISSING: &[&str] = &["", "?", "NA", "na", "null", "NULL"];

/// Parses CSV text into rows of string fields.
///
/// Returns an error on unbalanced quotes or ragged rows.
pub fn parse_records(text: &str, sep: char) -> Result<Vec<Vec<String>>> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut field = String::new();
    let mut row: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                '\r' => {} // swallow; LF handles the row break
                '\n' => {
                    line += 1;
                    row.push(std::mem::take(&mut field));
                    if !(row.len() == 1 && row[0].is_empty()) {
                        records.push(std::mem::take(&mut row));
                    } else {
                        row.clear();
                    }
                }
                c if c == sep => row.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Parse {
            line,
            reason: "unterminated quoted field".to_string(),
        });
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        records.push(row);
    }
    // Ragged-row check.
    if let Some(first) = records.first() {
        let width = first.len();
        for (i, r) in records.iter().enumerate() {
            if r.len() != width {
                return Err(FrameError::Parse {
                    line: i + 1,
                    reason: format!("expected {width} fields, found {}", r.len()),
                });
            }
        }
    }
    Ok(records)
}

/// Reads CSV text into a typed [`DataFrame`].
///
/// The first record supplies column names when `has_header` is true;
/// otherwise columns are named `c0, c1, …`. Fields are trimmed of
/// surrounding whitespace before inference.
pub fn read_csv(text: &str, sep: char, has_header: bool) -> Result<DataFrame> {
    let mut records = parse_records(text, sep)?;
    if records.is_empty() {
        return Ok(DataFrame::new());
    }
    let names: Vec<String> = if has_header {
        records
            .remove(0)
            .iter()
            .map(|s| s.trim().to_string())
            .collect()
    } else {
        (0..records[0].len()).map(|i| format!("c{i}")).collect()
    };
    let ncols = names.len();
    let mut df = DataFrame::new();
    for (c, name) in names.into_iter().enumerate() {
        if c >= ncols {
            break;
        }
        let raw: Vec<&str> = records.iter().map(|r| r[c].trim()).collect();
        df.add_column(name, infer_column(&raw))?;
    }
    Ok(df)
}

/// Reads a CSV file from disk via [`read_csv`].
pub fn read_csv_file(path: &std::path::Path, sep: char, has_header: bool) -> Result<DataFrame> {
    let text = std::fs::read_to_string(path).map_err(|e| FrameError::Parse {
        line: 0,
        reason: format!("io error reading {}: {e}", path.display()),
    })?;
    read_csv(&text, sep, has_header)
}

fn is_missing(s: &str) -> bool {
    MISSING.contains(&s)
}

/// Infers a column type from raw string values: numeric if every
/// non-missing value parses as `f64`, else categorical (missing values
/// become their own category label `"?"`, mirroring how the paper's
/// recoding treats them as a distinct value).
fn infer_column(raw: &[&str]) -> Column {
    let mut all_numeric = true;
    let mut any_value = false;
    for &s in raw {
        if is_missing(s) {
            continue;
        }
        any_value = true;
        if s.parse::<f64>().is_err() {
            all_numeric = false;
            break;
        }
    }
    if all_numeric && any_value {
        Column::Numeric(
            raw.iter()
                .map(|&s| {
                    if is_missing(s) {
                        f64::NAN
                    } else {
                        s.parse::<f64>().expect("checked above")
                    }
                })
                .collect(),
        )
    } else {
        let normalized: Vec<&str> = raw
            .iter()
            .map(|&s| if is_missing(s) { "?" } else { s })
            .collect();
        Column::categorical_from_strings(&normalized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let df = read_csv("a,b\n1,x\n2,y\n", ',', true).unwrap();
        assert_eq!(df.nrows(), 2);
        assert_eq!(df.names(), &["a".to_string(), "b".to_string()]);
        assert!(matches!(df.column("a").unwrap(), Column::Numeric(_)));
        assert!(matches!(
            df.column("b").unwrap(),
            Column::Categorical { .. }
        ));
    }

    #[test]
    fn quoted_fields_with_separators_and_newlines() {
        let recs = parse_records("\"a,b\",\"line1\nline2\",\"he said \"\"hi\"\"\"\n", ',').unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0][0], "a,b");
        assert_eq!(recs[0][1], "line1\nline2");
        assert_eq!(recs[0][2], "he said \"hi\"");
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(matches!(
            parse_records("\"oops\n", ','),
            Err(FrameError::Parse { .. })
        ));
    }

    #[test]
    fn ragged_rows_error() {
        assert!(parse_records("a,b\n1\n", ',').is_err());
    }

    #[test]
    fn crlf_and_trailing_newline() {
        let recs = parse_records("a,b\r\n1,2\r\n", ',').unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
        // No trailing newline on the last record.
        let recs = parse_records("a,b\n1,2", ',').unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn no_header_names_columns() {
        let df = read_csv("1,x\n2,y\n", ',', false).unwrap();
        assert_eq!(df.names(), &["c0".to_string(), "c1".to_string()]);
    }

    #[test]
    fn missing_values_in_numeric_become_nan() {
        let df = read_csv("v\n1\n?\n3\n", ',', true).unwrap();
        match df.column("v").unwrap() {
            Column::Numeric(v) => {
                assert_eq!(v[0], 1.0);
                assert!(v[1].is_nan());
            }
            _ => panic!("expected numeric"),
        }
    }

    #[test]
    fn missing_values_in_categorical_become_question_mark() {
        let df = read_csv("v\nred\n\nblue\n", ',', true).unwrap();
        // Note: the empty line row is skipped only when the whole record is
        // empty; a record with one empty field in a 1-col frame is skipped.
        match df.column("v").unwrap() {
            Column::Categorical { labels, .. } => {
                assert!(labels.contains(&"red".to_string()));
                assert!(labels.contains(&"blue".to_string()));
            }
            _ => panic!("expected categorical"),
        }
    }

    #[test]
    fn semicolon_separator() {
        let df = read_csv("a;b\n1;2\n", ';', true).unwrap();
        assert_eq!(df.ncols(), 2);
        assert!(matches!(df.column("b").unwrap(), Column::Numeric(_)));
    }

    #[test]
    fn empty_input() {
        let df = read_csv("", ',', true).unwrap();
        assert_eq!(df.nrows(), 0);
        assert_eq!(df.ncols(), 0);
    }

    #[test]
    fn read_csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("sliceline_frame_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        std::fs::write(&path, "a,b\n1,x\n2,y\n").unwrap();
        let df = read_csv_file(&path, ',', true).unwrap();
        assert_eq!(df.nrows(), 2);
        assert_eq!(df.ncols(), 2);
        std::fs::remove_file(&path).ok();
        // Missing file yields a parse error, not a panic.
        assert!(read_csv_file(&dir.join("nope.csv"), ',', true).is_err());
    }

    #[test]
    fn whitespace_trimmed() {
        let df = read_csv("a, b\n 1 , x \n", ',', true).unwrap();
        assert_eq!(df.names()[1], "b");
        match df.column("b").unwrap() {
            Column::Categorical { labels, .. } => assert_eq!(labels[0], "x"),
            _ => panic!(),
        }
    }
}
