//! Conservation properties of the per-level pruning funnel exported by
//! the observability layer: every stage is bounded by the previous one,
//! the survivor stage equals the evaluated count, and the funnel agrees
//! exactly with the independently-maintained [`EnumStats`] counters that
//! feed the `--stats` table (acceptance criterion of the tracing
//! subsystem).
//!
//! [`EnumStats`]: sliceline::stats::EnumStats

use proptest::prelude::*;
use sliceline::{SliceLine, SliceLineConfig, SliceLineResult};
use sliceline_frame::IntMatrix;

fn dataset() -> impl Strategy<Value = (IntMatrix, Vec<f64>)> {
    (2usize..=4, 10usize..=40).prop_flat_map(|(m, n)| {
        (
            proptest::collection::vec(proptest::collection::vec(1u32..=3, m..=m), n..=n),
            proptest::collection::vec(prop_oneof![Just(0.0f64), Just(0.5), Just(1.0)], n..=n),
        )
            .prop_map(|(rows, errors)| (IntMatrix::from_rows(&rows).unwrap(), errors))
    })
}

/// Runs SliceLine with telemetry on and checks the funnel invariants
/// against the result; returns the result for further assertions.
fn check_funnel_invariants(
    x0: &IntMatrix,
    errors: &[f64],
    config: SliceLineConfig,
) -> SliceLineResult {
    let exec = config.exec_context();
    exec.enable_stats(true);
    let r = SliceLine::new(config)
        .find_slices_in(x0, errors, &exec)
        .unwrap();
    let exec_stats = r.stats.exec.as_ref().expect("telemetry enabled");
    for p in &exec_stats.levels {
        let funnel = p.funnel();
        for w in funnel.windows(2) {
            assert!(
                w[1].1 <= w[0].1,
                "level {}: funnel grows at '{}' ({} > {})",
                p.level,
                w[1].0,
                w[1].1,
                w[0].1
            );
        }
        // Slices are conserved: whatever survives every filter is
        // exactly what the eval kernels saw.
        assert_eq!(
            funnel[4].1, p.evaluated,
            "level {}: survivors != evaluated",
            p.level
        );
        assert!(p.topk_entered <= p.evaluated.max(1));
    }
    // The funnel agrees with the EnumStats counters exactly.
    for lvl in &r.stats.levels {
        let Some(e) = &lvl.enumeration else { continue };
        let p = exec_stats
            .levels
            .iter()
            .find(|p| p.level == lvl.level)
            .expect("profile exists for every enumerated level");
        assert_eq!(p.pairs, e.pairs as u64);
        assert_eq!(p.candidates, e.merged_valid as u64);
        assert_eq!(p.candidates - p.deduped, e.deduped as u64);
        assert_eq!(p.evaluated, e.survivors as u64);
        assert_eq!(
            p.pruned_size + p.pruned_score + p.pruned_parents,
            (e.deduped - e.survivors) as u64
        );
    }
    // Everything in the final top-K entered it at some level.
    let entered: u64 = exec_stats.levels.iter().map(|p| p.topk_entered).sum();
    assert!(entered >= r.top_k.len() as u64);
    r
}

fn config(k: usize, sigma: usize) -> SliceLineConfig {
    SliceLineConfig::builder()
        .k(k)
        .min_support(sigma)
        .alpha(0.95)
        .threads(1)
        .build()
        .unwrap()
}

/// Deterministic anchor for the property below (runs even where proptest
/// generation is unavailable).
#[test]
fn funnel_conserved_on_planted_slice() {
    let rows: Vec<Vec<u32>> = (0..60)
        .map(|i| {
            vec![
                1 + (i % 2) as u32,
                1 + (i % 3) as u32,
                1 + ((i / 2) % 2) as u32,
            ]
        })
        .collect();
    let errors: Vec<f64> = (0..60)
        .map(|i| {
            if i % 2 == 0 && (i / 2) % 2 == 1 {
                0.9
            } else {
                0.05
            }
        })
        .collect();
    let x0 = IntMatrix::from_rows(&rows).unwrap();
    let r = check_funnel_invariants(&x0, &errors, config(3, 4));
    assert!(!r.top_k.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn funnel_is_conserved(
        (x0, errors) in dataset(),
        sigma in 1usize..5,
        k in 1usize..4,
    ) {
        check_funnel_invariants(&x0, &errors, config(k, sigma));
    }

    #[test]
    fn tracing_is_observation_only(
        (x0, errors) in dataset(),
        sigma in 1usize..5,
    ) {
        let off = SliceLine::new(config(3, sigma))
            .find_slices(&x0, &errors)
            .unwrap();
        let exec = config(3, sigma).exec_context();
        exec.tracer().set_enabled(true);
        let on = SliceLine::new(config(3, sigma))
            .find_slices_in(&x0, &errors, &exec)
            .unwrap();
        // Bit-for-bit identical top-K: tracing observes, never perturbs.
        prop_assert_eq!(off.top_k.len(), on.top_k.len());
        for (a, b) in off.top_k.iter().zip(&on.top_k) {
            prop_assert_eq!(&a.predicates, &b.predicates);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            prop_assert_eq!(a.size.to_bits(), b.size.to_bits());
            prop_assert_eq!(a.error.to_bits(), b.error.to_bits());
        }
        prop_assert!(!exec.tracer().drain().is_empty());
    }
}
