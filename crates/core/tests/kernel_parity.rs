//! Property tests for kernel parity: the blocked, fused, and bitmap
//! evaluation kernels must agree **bit-for-bit** on `(sizes, errors,
//! max_errors)` over random one-hot matrices and slice sets.
//!
//! Errors are drawn from a dyadic grid (multiples of 1/64), so every
//! partial sum is exact in f64 and float association cannot mask a real
//! kernel divergence: any mismatch is a bug, not rounding.

use proptest::prelude::*;
use sliceline::config::{EvalKernel, SliceLineConfig};
use sliceline::evaluate::evaluate_slices;
use sliceline::{ScoringContext, SliceLine};
use sliceline_frame::IntMatrix;
use sliceline_linalg::simd;
use sliceline_linalg::{CsrMatrix, ExecContext, SimdKernel};

/// Random one-hot dataset: `m` features with per-feature domains, rows of
/// integer codes, and dyadic per-row errors.
///
/// Returns `(column offsets per feature, rows as one-hot column lists,
/// errors)`.
fn dataset_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<u32>>, Vec<f64>)> {
    (2usize..=4, 8usize..=48).prop_flat_map(|(m, n)| {
        (
            proptest::collection::vec(2usize..=3, m..=m),
            proptest::collection::vec(proptest::collection::vec(0u32..3, m..=m), n..=n),
            proptest::collection::vec((0u32..=64).prop_map(|v| v as f64 / 64.0), n..=n),
        )
            .prop_map(|(domains, codes, errors)| {
                // Feature j occupies columns offsets[j]..offsets[j+1].
                let mut offsets = vec![0usize];
                for &d in &domains {
                    offsets.push(offsets.last().unwrap() + d);
                }
                let rows: Vec<Vec<u32>> = codes
                    .iter()
                    .map(|row| {
                        row.iter()
                            .zip(domains.iter())
                            .enumerate()
                            .map(|(j, (&c, &d))| offsets[j] as u32 + (c % d as u32))
                            .collect()
                    })
                    .collect();
                (offsets, rows, errors)
            })
    })
}

/// All arity-`level` column combinations over the one-hot space, capped —
/// includes "impossible" slices that pick two columns of the same feature
/// (always empty) and columns no row populates.
fn candidates(total_cols: usize, level: usize, cap: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut combo = vec![0u32; level];
    fn rec(
        out: &mut Vec<Vec<u32>>,
        combo: &mut Vec<u32>,
        pos: usize,
        start: u32,
        total: u32,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if pos == combo.len() {
            out.push(combo.clone());
            return;
        }
        for c in start..total {
            combo[pos] = c;
            rec(out, combo, pos + 1, c + 1, total, cap);
        }
    }
    rec(&mut out, &mut combo, 0, 0, total_cols as u32, cap);
    out
}

/// Evaluates `slices` under one kernel/thread-count combination.
fn run(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    ctx: &ScoringContext,
    kernel: EvalKernel,
    threads: usize,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let exec = ExecContext::new(threads);
    let state = evaluate_slices(x, errors, slices.to_vec(), level, ctx, kernel, &exec);
    (state.sizes, state.errors, state.max_errors)
}

/// Deterministic instance of the parity property that runs under plain
/// `cargo test` even where the proptest runner is unavailable.
#[test]
fn kernels_agree_on_fixed_dataset() {
    let offsets = [0usize, 3, 5, 8];
    let total = *offsets.last().unwrap();
    let rows: Vec<Vec<u32>> = (0..40)
        .map(|i| vec![(i % 3) as u32, 3 + (i % 2) as u32, 5 + ((i / 2) % 3) as u32])
        .collect();
    let errors: Vec<f64> = (0..40).map(|i| ((i * 7) % 65) as f64 / 64.0).collect();
    let x = CsrMatrix::from_binary_rows(total, &rows).unwrap();
    let ctx = ScoringContext::new(&errors, 0.95);
    for level in 1..=3usize {
        let slices = candidates(total, level, 64);
        let base = run(
            &x,
            &errors,
            &slices,
            level,
            &ctx,
            EvalKernel::Blocked { block_size: 4 },
            1,
        );
        for kernel in [
            EvalKernel::Blocked { block_size: 4 },
            EvalKernel::Fused,
            EvalKernel::Bitmap,
        ] {
            for threads in [1usize, 2] {
                let got = run(&x, &errors, &slices, level, &ctx, kernel, threads);
                assert_eq!(got, base, "{kernel:?} x{threads} diverged at level {level}");
            }
        }
    }
}

/// Full `find_slices` anchor for the SIMD dispatch: a forced-scalar run
/// and a forced-vector run (whatever `detect()` reports — `Scalar` on
/// plain hardware, making the comparison trivially true there) must
/// return bit-identical top-K slices, scores, and statistics across
/// evaluation kernels and thread counts. This pins the end-to-end
/// contract the per-kernel proptests in `sliceline-linalg` pin word by
/// word: selecting a SIMD level selects a code path, never an answer.
#[test]
fn simd_levels_agree_on_full_find_slices() {
    let rows: Vec<Vec<u32>> = (0..96u32)
        .map(|i| {
            vec![
                1 + (i % 3),
                1 + ((i / 3) % 4),
                1 + ((i / 12) % 2),
                1 + ((i / 24) % 3),
            ]
        })
        .collect();
    let errors: Vec<f64> = (0..96)
        .map(|i| {
            if i % 3 == 0 && (i / 3) % 4 == 1 {
                1.0
            } else {
                ((i * 13) % 65) as f64 / 64.0
            }
        })
        .collect();
    let x0 = IntMatrix::from_rows(&rows).unwrap();
    let run = |simd: SimdKernel, eval: EvalKernel, threads: usize| {
        let mut cfg = SliceLineConfig::builder()
            .k(6)
            .min_support(2)
            .alpha(0.95)
            .threads(threads)
            .simd(simd)
            .build()
            .unwrap();
        cfg.eval = eval;
        let result = SliceLine::new(cfg).find_slices(&x0, &errors).unwrap();
        result
            .top_k
            .iter()
            .map(|s| {
                (
                    s.predicates.clone(),
                    s.score.to_bits(),
                    s.size.to_bits(),
                    s.error.to_bits(),
                    s.max_error.to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    let vec_level = simd::detect();
    for eval in [EvalKernel::Bitmap, EvalKernel::Fused] {
        for threads in [1usize, 2] {
            let scalar = run(SimdKernel::Scalar, eval, threads);
            let forced = run(SimdKernel::Forced(vec_level), eval, threads);
            assert_eq!(
                scalar, forced,
                "scalar vs {vec_level:?} diverged: {eval:?} x{threads}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked, fused, and bitmap agree bit-for-bit at levels 1–3, at one
    /// and two threads, over every slice candidate of that arity.
    #[test]
    fn kernels_agree_bit_for_bit((offsets, rows, errors) in dataset_strategy()) {
        let total = *offsets.last().unwrap();
        let x = CsrMatrix::from_binary_rows(total, &rows).unwrap();
        let ctx = ScoringContext::new(&errors, 0.95);
        let kernels = [
            EvalKernel::Blocked { block_size: 4 },
            EvalKernel::Fused,
            EvalKernel::Bitmap,
        ];
        for level in 1..=3usize {
            let slices = candidates(total, level, 64);
            let base = run(&x, &errors, &slices, level, &ctx,
                           EvalKernel::Blocked { block_size: 4 }, 1);
            for kernel in kernels {
                for threads in [1usize, 2] {
                    let got = run(&x, &errors, &slices, level, &ctx, kernel, threads);
                    prop_assert_eq!(
                        &got.0, &base.0,
                        "sizes diverged: {:?} x{} at level {}", kernel, threads, level
                    );
                    prop_assert_eq!(
                        &got.1, &base.1,
                        "errors diverged: {:?} x{} at level {}", kernel, threads, level
                    );
                    prop_assert_eq!(
                        &got.2, &base.2,
                        "max_errors diverged: {:?} x{} at level {}", kernel, threads, level
                    );
                }
            }
        }
    }

    /// An empty slice set yields empty statistics under every kernel.
    #[test]
    fn empty_slice_set((offsets, rows, errors) in dataset_strategy()) {
        let total = *offsets.last().unwrap();
        let x = CsrMatrix::from_binary_rows(total, &rows).unwrap();
        let ctx = ScoringContext::new(&errors, 0.95);
        for kernel in [
            EvalKernel::Blocked { block_size: 4 },
            EvalKernel::Fused,
            EvalKernel::Bitmap,
        ] {
            let (ss, se, sm) = run(&x, &errors, &[], 2, &ctx, kernel, 2);
            prop_assert!(ss.is_empty() && se.is_empty() && sm.is_empty());
        }
    }
}
