//! Proves the bounded-memory claim of the out-of-core driver: streaming
//! a dataset through `find_slices_streamed` under a memory budget keeps
//! the peak live-heap delta near the budget (± one in-flight chunk and
//! fixed bookkeeping), far below the materialized dataset footprint —
//! and the bound holds across chunk sizes.
//!
//! A counting global allocator tracks the peak live-heap delta across
//! the call, exactly as in `enum_streaming_mem.rs`.

use sliceline::config::SliceLineConfig;
use sliceline::find_slices_streamed;
use sliceline_frame::{IntMatrix, RowBlock, RowBlockSource};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Resets the peak to the current live size, runs `f`, and returns the
/// peak heap growth (in bytes) observed during the call.
fn peak_growth<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let r = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (r, peak.saturating_sub(base))
}

/// Synthesizes rows from their index so the dataset never exists in
/// memory: 4 features, dyadic errors, a planted hot slice on
/// `f0=1 AND f2=1`.
struct SynthSource {
    n: usize,
    domains: Vec<u32>,
    pos: usize,
}

impl SynthSource {
    fn new(n: usize) -> Self {
        SynthSource {
            n,
            domains: vec![3, 3, 2, 2],
            pos: 0,
        }
    }

    fn row(&self, i: usize) -> ([u32; 4], f64) {
        let codes = [
            1 + (i % 3) as u32,
            1 + ((i / 3) % 3) as u32,
            1 + (i % 2) as u32,
            1 + ((i / 2) % 2) as u32,
        ];
        let e = if codes[0] == 1 && codes[2] == 1 {
            1.0
        } else {
            ((i * 7) % 65) as f64 / 64.0
        };
        (codes, e)
    }
}

impl RowBlockSource for SynthSource {
    fn domains(&self) -> &[u32] {
        &self.domains
    }

    fn total_rows(&self) -> usize {
        self.n
    }

    fn next_block(&mut self, max_rows: usize) -> Option<RowBlock> {
        if self.pos >= self.n {
            return None;
        }
        let end = (self.pos + max_rows).min(self.n);
        let rows = end - self.pos;
        let m = self.domains.len();
        let mut data = vec![0u32; rows * m];
        let mut errors = Vec::with_capacity(rows);
        for (i, r) in (self.pos..end).enumerate() {
            let (codes, e) = self.row(r);
            data[i * m..(i + 1) * m].copy_from_slice(&codes);
            errors.push(e);
        }
        self.pos = end;
        let x0 = IntMatrix::new(rows, m, data, self.domains.clone()).unwrap();
        Some(RowBlock { x0, errors })
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

/// One test function (not several) so concurrent test threads cannot
/// pollute each other's allocation counters.
#[test]
fn streamed_peak_allocation_stays_within_budget() {
    const N: usize = 50_000;
    const BUDGET: usize = 256 << 10; // 256 KiB
                                     // Materialized equivalent (the path the budget forbids): integer
                                     // codes + one-hot CSR (u32 col, f64 value, row_ptr) + errors.
    let materialized_bytes = N * 4 * (4 + 12) + N * 16;
    let mut reference = None;
    // Derived chunking (0) and explicit chunk sizes spanning an order of
    // magnitude: the bound must not depend on the chunk schedule.
    for chunk_rows in [0usize, 128, 1024] {
        let mut cfg = SliceLineConfig::builder()
            .k(4)
            .min_support(16)
            .alpha(0.95)
            .max_level(3)
            .threads(1)
            .chunk_rows(chunk_rows)
            .build()
            .unwrap();
        cfg.mem_budget_bytes = BUDGET;
        let mut src = SynthSource::new(N);
        let (result, growth) = peak_growth(|| find_slices_streamed(&mut src, &cfg).unwrap());
        assert!(!result.top_k.is_empty(), "chunk={chunk_rows}: no slices");
        assert_eq!(
            result.top_k[0].predicates,
            vec![(0, 1), (2, 1)],
            "chunk={chunk_rows}: planted slice not recovered"
        );
        // Budget + one in-flight chunk (raw block + projected CSR on
        // either side of the tee) + fixed bookkeeping (stats vectors,
        // spill buffering, top-K) — ~3x budget here — and always far
        // below the ~3.2 MB materialized footprint.
        let chunk = if chunk_rows > 0 { chunk_rows } else { 1024 };
        let chunk_footprint = 2 * chunk * 4 * 16;
        let bound = BUDGET + 2 * chunk_footprint + (128 << 10);
        assert!(
            growth < bound,
            "chunk={chunk_rows}: peak heap growth {growth} B exceeds bound {bound} B"
        );
        assert!(
            growth < materialized_bytes / 2,
            "chunk={chunk_rows}: growth {growth} B not clearly below materialized {materialized_bytes} B"
        );
        // Bit-for-bit invariance across chunk schedules rides along.
        let fp: Vec<_> = result
            .top_k
            .iter()
            .map(|s| (s.predicates.clone(), s.score.to_bits()))
            .collect();
        match &reference {
            None => reference = Some(fp),
            Some(r) => assert_eq!(&fp, r, "chunk={chunk_rows}: result diverged"),
        }
    }
}
