//! Property tests for session parity: a [`DatasetSession`] must answer
//! queries **bit-for-bit** identically to the one-shot
//! [`SliceLine::find_slices`] path — cold (first query after build), warm
//! (repeat query reusing the cached encode/stats/pack), and after
//! [`DatasetSession::swap_errors`] (delta re-slicing vs. a fresh run on
//! the new error vector) — across evaluation kernels, enumeration
//! kernels, compaction policies, and thread counts.
//!
//! Errors are drawn from a dyadic grid (multiples of 1/64), so every
//! partial sum is exact in f64 and float association cannot mask a real
//! divergence: any mismatch is a bug, not rounding.

use proptest::prelude::*;
use sliceline::config::{CompactKernel, EnumKernel, EvalKernel, SliceLineConfig};
use sliceline::{DatasetSession, SliceInfo, SliceLine, SliceQuery};
use sliceline_frame::IntMatrix;
use sliceline_linalg::ExecContext;

/// Random integer-coded dataset plus two error vectors (the second plays
/// the retrained model for `swap_errors` parity).
///
/// Codes are 1-based (`0` = missing is exercised by dedicated tests in
/// the frame crate); per-feature domains of 2–3 keep the lattice small
/// enough to enumerate exhaustively while still producing multi-level
/// winners.
fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<u32>>, Vec<f64>, Vec<f64>)> {
    (2usize..=4, 8usize..=40).prop_flat_map(|(m, n)| {
        (
            proptest::collection::vec(proptest::collection::vec(1u32..=3, m..=m), n..=n),
            proptest::collection::vec((0u32..=64).prop_map(|v| v as f64 / 64.0), n..=n),
            proptest::collection::vec((0u32..=64).prop_map(|v| v as f64 / 64.0), n..=n),
        )
    })
}

/// The kernel/threading grid every parity property sweeps.
fn configs() -> Vec<SliceLineConfig> {
    let mut out = Vec::new();
    for eval in [
        EvalKernel::Blocked { block_size: 16 },
        EvalKernel::Fused,
        EvalKernel::Bitmap,
        EvalKernel::Auto {
            block_size: 16,
            fused_above: 16,
        },
    ] {
        for threads in [1usize, 4] {
            for (enum_kernel, compact) in [
                (EnumKernel::Serial, CompactKernel::Off),
                (EnumKernel::Sharded { shards: 0 }, CompactKernel::On),
            ] {
                let mut cfg = SliceLineConfig::builder()
                    .k(4)
                    .min_support(2)
                    .alpha(0.95)
                    .threads(threads)
                    .build()
                    .unwrap();
                cfg.eval = eval;
                cfg.enum_kernel = enum_kernel;
                cfg.compact = compact;
                out.push(cfg);
            }
        }
    }
    out
}

/// One slice rendered with bit-exact statistics:
/// `(predicates, score bits, size bits, error bits, max bits)`.
type SliceBits = (Vec<(usize, u32)>, u64, u64, u64, u64);

/// Renders top-K with bit-exact scores for mismatch messages and strict
/// comparison.
fn fingerprint(top_k: &[SliceInfo]) -> Vec<SliceBits> {
    top_k
        .iter()
        .map(|s| {
            (
                s.predicates.clone(),
                s.score.to_bits(),
                s.size.to_bits(),
                s.error.to_bits(),
                s.max_error.to_bits(),
            )
        })
        .collect()
}

/// Deterministic instance of the parity property that runs under plain
/// `cargo test` even where the proptest runner is unavailable.
#[test]
fn session_matches_one_shot_on_fixed_dataset() {
    let rows: Vec<Vec<u32>> = (0..36u32)
        .map(|i| vec![1 + (i % 2), 1 + ((i / 2) % 3), 1 + ((i / 6) % 2)])
        .collect();
    let e: Vec<f64> = (0..36)
        .map(|i| {
            if i % 2 == 0 && (i / 2) % 3 == 1 {
                1.0
            } else {
                ((i * 5) % 17) as f64 / 64.0
            }
        })
        .collect();
    let e2: Vec<f64> = (0..36).map(|i| ((i * 11) % 65) as f64 / 64.0).collect();
    let x0 = IntMatrix::from_rows(&rows).unwrap();
    for cfg in configs() {
        let one_shot = SliceLine::new(cfg.clone()).find_slices(&x0, &e).unwrap();
        let fresh2 = SliceLine::new(cfg.clone()).find_slices(&x0, &e2).unwrap();
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        let cold = session.query(&SliceQuery::new(cfg.clone())).unwrap();
        let warm = session.query(&SliceQuery::new(cfg.clone())).unwrap();
        assert_eq!(
            fingerprint(&cold.top_k),
            fingerprint(&one_shot.top_k),
            "cold vs one-shot: {cfg:?}"
        );
        assert_eq!(
            fingerprint(&warm.top_k),
            fingerprint(&cold.top_k),
            "warm vs cold: {cfg:?}"
        );
        session.swap_errors(&e2).unwrap();
        let delta = session.query(&SliceQuery::new(cfg.clone())).unwrap();
        assert_eq!(
            fingerprint(&delta.top_k),
            fingerprint(&fresh2.top_k),
            "swap_errors vs fresh: {cfg:?}"
        );
    }
}

/// A session answering two tenants' worth of alternating queries (same
/// dataset, different k/σ/α) never contaminates one query with another's
/// parameters.
#[test]
fn interleaved_queries_stay_independent() {
    let rows: Vec<Vec<u32>> = (0..30u32)
        .map(|i| vec![1 + (i % 3), 1 + ((i / 3) % 2)])
        .collect();
    let e: Vec<f64> = (0..30).map(|i| ((i * 7) % 65) as f64 / 64.0).collect();
    let x0 = IntMatrix::from_rows(&rows).unwrap();
    let mk = |k: usize, sigma: usize, alpha: f64| {
        SliceLineConfig::builder()
            .k(k)
            .min_support(sigma)
            .alpha(alpha)
            .threads(1)
            .build()
            .unwrap()
    };
    let (a, b) = (mk(2, 2, 0.9), mk(5, 4, 0.99));
    let one_a = SliceLine::new(a.clone()).find_slices(&x0, &e).unwrap();
    let one_b = SliceLine::new(b.clone()).find_slices(&x0, &e).unwrap();
    let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
    for _ in 0..2 {
        let got_a = session.query(&SliceQuery::new(a.clone())).unwrap();
        let got_b = session.query(&SliceQuery::new(b.clone())).unwrap();
        assert_eq!(fingerprint(&got_a.top_k), fingerprint(&one_a.top_k));
        assert_eq!(fingerprint(&got_b.top_k), fingerprint(&one_b.top_k));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold session query == one-shot, warm == cold, and a post-swap
    /// query == a fresh run on the new errors — bit-for-bit across the
    /// kernel/thread grid.
    #[test]
    fn session_parity((rows, e, e2) in dataset_strategy()) {
        let x0 = IntMatrix::from_rows(&rows).unwrap();
        for cfg in configs() {
            let one_shot = SliceLine::new(cfg.clone()).find_slices(&x0, &e).unwrap();
            let fresh2 = SliceLine::new(cfg.clone()).find_slices(&x0, &e2).unwrap();
            let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
            let cold = session.query(&SliceQuery::new(cfg.clone())).unwrap();
            let warm = session.query(&SliceQuery::new(cfg.clone())).unwrap();
            prop_assert_eq!(
                fingerprint(&cold.top_k), fingerprint(&one_shot.top_k),
                "cold vs one-shot: {:?}", cfg
            );
            prop_assert_eq!(
                fingerprint(&warm.top_k), fingerprint(&cold.top_k),
                "warm vs cold: {:?}", cfg
            );
            session.swap_errors(&e2).unwrap();
            let delta = session.query(&SliceQuery::new(cfg.clone())).unwrap();
            prop_assert_eq!(
                fingerprint(&delta.top_k), fingerprint(&fresh2.top_k),
                "swap_errors vs fresh: {:?}", cfg
            );
        }
    }

    /// Session generation counts swaps exactly, and level statistics
    /// (counts of evaluated slices per level) match the one-shot run —
    /// the warm path must not enumerate more or fewer candidates.
    #[test]
    fn session_stats_match_one_shot((rows, e, e2) in dataset_strategy()) {
        let x0 = IntMatrix::from_rows(&rows).unwrap();
        let cfg = SliceLineConfig::builder()
            .k(4)
            .min_support(2)
            .alpha(0.95)
            .threads(1)
            .build()
            .unwrap();
        let one_shot = SliceLine::new(cfg.clone()).find_slices(&x0, &e).unwrap();
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        let cold = session.query(&SliceQuery::new(cfg.clone())).unwrap();
        prop_assert_eq!(cold.stats.levels.len(), one_shot.stats.levels.len());
        for (a, b) in cold.stats.levels.iter().zip(one_shot.stats.levels.iter()) {
            prop_assert_eq!(a.candidates, b.candidates, "candidates diverged");
            prop_assert_eq!(a.valid, b.valid, "valid diverged");
        }
        prop_assert_eq!(session.generation(), 0);
        session.swap_errors(&e2).unwrap();
        prop_assert_eq!(session.generation(), 1);
        session.swap_errors(&e).unwrap();
        prop_assert_eq!(session.generation(), 2);
        let back = session.query(&SliceQuery::new(cfg)).unwrap();
        prop_assert_eq!(fingerprint(&back.top_k), fingerprint(&one_shot.top_k));
    }
}
